//! P-automata: finite automata over pushdown configurations.

use std::collections::{HashMap, HashSet, VecDeque};

/// A P-automaton recognizing a regular set of pushdown configurations
/// `⟨p, w⟩`: the automaton's first `n_controls` states are the PDS's
/// control states; a configuration is accepted when the stack word `w`
/// (top first) is accepted starting from state `p`.
#[derive(Debug, Clone, Default)]
pub struct ConfigAutomaton {
    n_controls: usize,
    n_states: usize,
    /// Transitions `(from, stack symbol) → {to}`.
    trans: HashMap<(u32, u32), HashSet<u32>>,
    finals: HashSet<u32>,
}

impl ConfigAutomaton {
    /// Creates an automaton whose states `0..n_controls` are the PDS
    /// control states.
    pub fn new(n_controls: usize) -> ConfigAutomaton {
        ConfigAutomaton {
            n_controls,
            n_states: n_controls,
            trans: HashMap::new(),
            finals: HashSet::new(),
        }
    }

    /// Number of control states.
    pub fn n_controls(&self) -> usize {
        self.n_controls
    }

    /// Total number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Adds a fresh non-control state.
    pub fn add_state(&mut self) -> u32 {
        let id = u32::try_from(self.n_states).expect("too many states");
        self.n_states += 1;
        id
    }

    /// Marks a state final.
    pub fn set_final(&mut self, q: u32) {
        self.finals.insert(q);
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: u32) -> bool {
        self.finals.contains(&q)
    }

    /// Adds the transition `from --γ--> to`; returns `false` if present.
    pub fn add_transition(&mut self, from: u32, gamma: u32, to: u32) -> bool {
        self.trans.entry((from, gamma)).or_default().insert(to)
    }

    /// Whether the transition exists.
    pub fn has_transition(&self, from: u32, gamma: u32, to: u32) -> bool {
        self.trans
            .get(&(from, gamma))
            .is_some_and(|s| s.contains(&to))
    }

    /// The targets of `from --γ-->`.
    pub fn targets(&self, from: u32, gamma: u32) -> impl Iterator<Item = u32> + '_ {
        self.trans
            .get(&(from, gamma))
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// All transitions, in arbitrary order.
    pub fn transitions(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.trans
            .iter()
            .flat_map(|(&(from, gamma), tos)| tos.iter().map(move |&to| (from, gamma, to)))
    }

    /// Whether the configuration `⟨control, stack⟩` (top of stack first)
    /// is accepted.
    pub fn accepts(&self, control: u32, stack: &[u32]) -> bool {
        let mut current: HashSet<u32> = HashSet::from([control]);
        for &gamma in stack {
            let mut next = HashSet::new();
            for &q in &current {
                next.extend(self.targets(q, gamma));
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.is_final(q))
    }

    /// Whether *any* configuration with the given control is accepted —
    /// i.e. whether the control state is reachable (for saturated
    /// automata).
    pub fn control_nonempty(&self, control: u32) -> bool {
        // BFS from `control` to a final state.
        let mut seen = HashSet::from([control]);
        let mut queue = VecDeque::from([control]);
        while let Some(q) = queue.pop_front() {
            if self.is_final(q) {
                return true;
            }
            for (&(from, _), tos) in &self.trans {
                if from == q {
                    for &to in tos {
                        if seen.insert(to) {
                            queue.push_back(to);
                        }
                    }
                }
            }
        }
        false
    }

    /// Whether some accepted configuration with the given control has
    /// `gamma` on top of the stack.
    pub fn head_reachable(&self, control: u32, gamma: u32) -> bool {
        self.targets(control, gamma).any(|q| self.nonempty_from(q))
    }

    fn nonempty_from(&self, start: u32) -> bool {
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(q) = queue.pop_front() {
            if self.is_final(q) {
                return true;
            }
            for (&(from, _), tos) in &self.trans {
                if from == q {
                    for &to in tos {
                        if seen.insert(to) {
                            queue.push_back(to);
                        }
                    }
                }
            }
        }
        false
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_configurations() {
        let mut a = ConfigAutomaton::new(2);
        let f = a.add_state();
        a.set_final(f);
        a.add_transition(0, 7, f);
        a.add_transition(1, 7, 1);
        a.add_transition(1, 8, f);
        assert!(a.accepts(0, &[7]));
        assert!(!a.accepts(0, &[8]));
        assert!(a.accepts(1, &[7, 7, 8]));
        assert!(!a.accepts(1, &[7]));
    }

    #[test]
    fn control_emptiness() {
        let mut a = ConfigAutomaton::new(2);
        let f = a.add_state();
        a.set_final(f);
        a.add_transition(0, 3, f);
        assert!(a.control_nonempty(0));
        assert!(!a.control_nonempty(1));
        assert!(a.head_reachable(0, 3));
        assert!(!a.head_reachable(0, 4));
    }

    #[test]
    fn final_control_accepts_empty_stack() {
        let mut a = ConfigAutomaton::new(1);
        a.set_final(0);
        assert!(a.accepts(0, &[]));
        assert!(a.control_nonempty(0));
    }
}
