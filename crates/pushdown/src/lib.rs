//! Pushdown systems with `post*`/`pre*` saturation — the direct pushdown
//! model checker used as the MOPS stand-in baseline (paper §8).
//!
//! MOPS models the program as a pushdown automaton (transitions from the
//! CFG, stack recording unreturned call sites) composed with a property
//! FSM, and decides reachability of error configurations. The textbook
//! implementation of that core is *P-automaton saturation*
//! (Bouajjani–Esparza–Maler; Schwoon's algorithms): the set of reachable
//! configurations of a pushdown system is regular, and `post*`/`pre*`
//! saturate a finite automaton that recognizes it.
//!
//! * [`Pds`] — pushdown system rules (pop/swap/push normal form);
//! * [`ConfigAutomaton`] — P-automata over `(control, stack)` configurations;
//! * [`post_star`] / [`pre_star`] — saturation;
//! * [`checker`] — the end-to-end model checker on MiniImp CFGs.
//!
//! # Example
//!
//! ```
//! use rasc_pushdown::{ConfigAutomaton, Pds, post_star};
//!
//! // One control state, stack symbols {a, b}:
//! // ⟨0, a⟩ → ⟨0, a b⟩ (push), so from ⟨0, a⟩ every ⟨0, a bⁿ⟩ is reachable.
//! let mut pds = Pds::new(1, 2);
//! pds.push_rule(0, 0, 0, 0, 1);
//! let mut init = ConfigAutomaton::new(1);
//! let f = init.add_state();
//! init.add_transition(0, 0, f);
//! init.set_final(f);
//! let reach = post_star(&pds, &init);
//! assert!(reach.accepts(0, &[0]));        // ⟨0, a⟩
//! assert!(reach.accepts(0, &[0, 1, 1]));  // ⟨0, a b b⟩
//! assert!(!reach.accepts(0, &[1, 0]));    // ⟨0, b a⟩ is not reachable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
mod pautomaton;
mod pds;
mod saturation;

pub use checker::{PdsChecker, Violation};
pub use pautomaton::ConfigAutomaton;
pub use pds::{Pds, PdsRule};
pub use saturation::{post_star, pre_star};
