//! The end-to-end direct pushdown model checker (the MOPS stand-in).
//!
//! Following §6 of the paper (and MOPS itself): the program is a pushdown
//! automaton whose stack records unreturned call sites, composed with a
//! property FSM; the checker decides whether a configuration whose control
//! component is an accepting (error) property state is reachable.
//!
//! Controls of the [`Pds`] are property-machine states; stack symbols are
//! CFG nodes (current node on top, return addresses below).

use rasc_automata::{Alphabet, Dfa, StateId, SymbolId};
use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};

use crate::pautomaton::ConfigAutomaton;
use crate::pds::Pds;
use crate::saturation::post_star;

/// A reachable error configuration: property state `state` at CFG node
/// `node` (top of stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The CFG node where the property automaton is in an error state.
    pub node: NodeId,
    /// The accepting (error) property state reached.
    pub state: StateId,
}

/// A direct pushdown model checker for a MiniImp CFG and a property DFA.
///
/// # Example
///
/// ```
/// use rasc_automata::PropertySpec;
/// use rasc_cfgir::{Cfg, Program};
/// use rasc_pushdown::PdsChecker;
///
/// let program = Program::parse(
///     "fn main() { event seteuid_zero; event execl; }",
/// ).unwrap();
/// let cfg = Cfg::build(&program).unwrap();
/// let spec = PropertySpec::parse(
///     "start state Unpriv : | seteuid_zero -> Priv;\n\
///      state Priv : | seteuid_nonzero -> Unpriv | execl -> Error;\n\
///      accept state Error;",
/// ).unwrap();
/// let (sigma, dfa) = spec.compile();
/// let checker = PdsChecker::new(&cfg, &sigma, &dfa, "main").unwrap();
/// let violations = checker.run();
/// assert!(!violations.is_empty());
/// ```
#[derive(Debug)]
pub struct PdsChecker {
    pds: Pds,
    accepting: Vec<bool>,
    entry_node: u32,
    start_control: u32,
}

impl PdsChecker {
    /// Builds the checker for `property` (over alphabet `sigma`), starting
    /// at function `entry`.
    ///
    /// Events whose name is not in `sigma` are irrelevant to the property
    /// (plain edges). Event arguments are ignored; use
    /// [`PdsChecker::with_event_map`] for parametric instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if `entry` does not exist.
    pub fn new(
        cfg: &Cfg,
        sigma: &Alphabet,
        property: &Dfa,
        entry: &str,
    ) -> Result<PdsChecker, CfgError> {
        Self::with_event_map(cfg, property, entry, |name, _args| sigma.lookup(name))
    }

    /// Like [`PdsChecker::new`], with a custom mapping from CFG events to
    /// property symbols. Returning `None` makes the event irrelevant.
    ///
    /// Parametric properties (§6.4) are checked by instantiating the map
    /// per parameter value, mirroring MOPS's per-instantiation checking:
    ///
    /// ```ignore
    /// PdsChecker::with_event_map(&cfg, &dfa, "main", |name, args| {
    ///     (args == [label]).then(|| sigma.lookup(name)).flatten()
    /// })
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::MissingEntry`] if `entry` does not exist.
    pub fn with_event_map(
        cfg: &Cfg,
        property: &Dfa,
        entry: &str,
        event_map: impl Fn(&str, &[String]) -> Option<SymbolId>,
    ) -> Result<PdsChecker, CfgError> {
        let machine = property.complete();
        let n_controls = machine.len();
        let n_stack = cfg.num_nodes();
        let mut pds = Pds::new(n_controls, n_stack);

        for (from, to, label) in cfg.edges() {
            let sym = match label {
                EdgeLabel::Plain => None,
                EdgeLabel::Event { name, args } => event_map(name, args),
            };
            for q in 0..n_controls as u32 {
                let q2 = match sym {
                    Some(s) => machine
                        .delta(StateId::from_index(q as usize), s)
                        .expect("complete machine")
                        .index() as u32,
                    None => q,
                };
                pds.swap_rule(q, from.index() as u32, q2, to.index() as u32);
            }
        }
        for site in cfg.call_sites() {
            let callee = &cfg.functions()[site.callee.index()];
            for q in 0..n_controls as u32 {
                pds.push_rule(
                    q,
                    site.call_node.index() as u32,
                    q,
                    callee.entry.index() as u32,
                    site.return_node.index() as u32,
                );
            }
        }
        for f in cfg.functions() {
            for q in 0..n_controls as u32 {
                pds.pop_rule(q, f.exit.index() as u32, q);
            }
        }

        let entry_node = cfg.entry(entry)?.entry.index() as u32;
        let accepting = (0..n_controls)
            .map(|i| machine.is_accepting(StateId::from_index(i)))
            .collect();
        let start_control = machine
            .start()
            .expect("complete machine has a start")
            .index() as u32;
        Ok(PdsChecker {
            pds,
            accepting,
            entry_node,
            start_control,
        })
    }

    /// Saturates `post*` from the initial configuration and returns every
    /// reachable error configuration head.
    pub fn run(&self) -> Vec<Violation> {
        let mut init = ConfigAutomaton::new(self.pds.n_controls());
        let f = init.add_state();
        init.add_transition(self.start_control, self.entry_node, f);
        init.set_final(f);
        let reach = post_star(&self.pds, &init);

        // States from which a final state is reachable (so the stack suffix
        // below the head can complete).
        let mut live = vec![false; reach.n_states()];
        // Reverse reachability to finals.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); reach.n_states()];
        for (from, _gamma, to) in reach.transitions() {
            rev[to as usize].push(from);
        }
        let mut queue: Vec<u32> = (0..reach.n_states() as u32)
            .filter(|&q| reach.is_final(q))
            .collect();
        for &q in &queue {
            live[q as usize] = true;
        }
        while let Some(q) = queue.pop() {
            for &p in &rev[q as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    queue.push(p);
                }
            }
        }

        let mut out = Vec::new();
        for (from, gamma, to) in reach.transitions() {
            if (from as usize) < self.accepting.len()
                && self.accepting[from as usize]
                && live[to as usize]
            {
                out.push(Violation {
                    node: node_id(gamma),
                    state: StateId::from_index(from as usize),
                });
            }
        }
        out.sort_by_key(|v| (v.node, v.state));
        out.dedup();
        out
    }

    /// The number of PDS rules (a workload-size measure for benchmarks).
    pub fn num_rules(&self) -> usize {
        self.pds.rules().len()
    }

    /// Whether any error configuration is reachable, decided *backward*
    /// with [`pre_star`](crate::pre_star): saturate the predecessors of
    /// `⟨q_err, Γ*⟩` for every accepting control and test whether the
    /// initial configuration is among them.
    ///
    /// Semantically equivalent to `!self.run().is_empty()`; exists as an
    /// independently-implemented oracle (and is the cheaper query when one
    /// only needs a yes/no answer for few error states).
    pub fn violated_backward(&self) -> bool {
        // Target: ⟨q, w⟩ for every accepting control q and any stack w.
        let mut target = ConfigAutomaton::new(self.pds.n_controls());
        let sink = target.add_state();
        target.set_final(sink);
        let mut any_error = false;
        for q in 0..self.pds.n_controls() as u32 {
            if self.accepting[q as usize] {
                any_error = true;
                target.set_final(q);
                for gamma in 0..self.pds.n_stack() as u32 {
                    target.add_transition(q, gamma, sink);
                }
            }
        }
        if !any_error {
            return false;
        }
        for gamma in 0..self.pds.n_stack() as u32 {
            target.add_transition(sink, gamma, sink);
        }
        let pre = crate::pre_star(&self.pds, &target);
        pre.accepts(self.start_control, &[self.entry_node])
    }
}

fn node_id(raw: u32) -> NodeId {
    // NodeId's constructor is crate-private in rasc-cfgir; round-trip
    // through the public index-based representation.
    NodeId::from_index(raw as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::PropertySpec;
    use rasc_cfgir::Program;

    const PRIVILEGE: &str = "\
start state Unpriv :
    | seteuid_zero -> Priv;
state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;
accept state Error;";

    fn check(src: &str) -> Vec<Violation> {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let (sigma, dfa) = PropertySpec::parse(PRIVILEGE).unwrap().compile();
        PdsChecker::new(&cfg, &sigma, &dfa, "main").unwrap().run()
    }

    #[test]
    fn section_6_3_violation_found() {
        let violations = check(
            "fn main() {
                s1: event seteuid_zero;
                if (*) { s3: event seteuid_nonzero; } else { s4: skip; }
                s5: event execl;
                s6: skip;
            }",
        );
        assert!(!violations.is_empty(), "privileged exec on the else path");
    }

    #[test]
    fn dropping_privileges_on_all_paths_is_safe() {
        let violations = check(
            "fn main() {
                event seteuid_zero;
                if (*) { event seteuid_nonzero; } else { event seteuid_nonzero; }
                event execl;
            }",
        );
        assert!(violations.is_empty());
    }

    #[test]
    fn interprocedural_violation_through_call() {
        let violations = check(
            "fn grant() { event seteuid_zero; }
             fn main() { grant(); event execl; }",
        );
        assert!(!violations.is_empty(), "privilege acquired in callee");
    }

    #[test]
    fn context_sensitivity_no_false_positive() {
        // The exec happens only in a context where privileges were
        // dropped; a context-insensitive analysis would flag it.
        let violations = check(
            "fn doexec() { event execl; }
             fn main() {
                 event seteuid_zero;
                 event seteuid_nonzero;
                 doexec();
             }",
        );
        assert!(violations.is_empty());
    }

    #[test]
    fn backward_check_agrees_with_forward() {
        let programs = [
            "fn main() { s1: event seteuid_zero; s5: event execl; }",
            "fn main() { event seteuid_zero; event seteuid_nonzero; event execl; }",
            "fn f() { event execl; } fn main() { event seteuid_zero; f(); }",
            "fn rec() { if (*) { rec(); } else { event execl; } }
             fn main() { event seteuid_zero; rec(); }",
            "fn main() { while (*) { event seteuid_zero; } }",
        ];
        let (sigma, dfa) = PropertySpec::parse(PRIVILEGE).unwrap().compile();
        for src in programs {
            let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
            let checker = PdsChecker::new(&cfg, &sigma, &dfa, "main").unwrap();
            let forward = !checker.run().is_empty();
            let backward = checker.violated_backward();
            assert_eq!(forward, backward, "post* vs pre* disagree on:\n{src}");
        }
    }

    #[test]
    fn recursion_handled() {
        let violations = check(
            "fn rec() { if (*) { rec(); } else { event execl; } }
             fn main() { event seteuid_zero; rec(); }",
        );
        assert!(!violations.is_empty(), "exec reachable through recursion");
    }
}
