//! `post*` and `pre*` saturation (Bouajjani–Esparza–Maler; Schwoon).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::pautomaton::ConfigAutomaton;
use crate::pds::{Pds, PdsRule};

/// Computes a P-automaton recognizing `post*(C)` — all configurations
/// reachable from the set `C` recognized by `initial`.
///
/// `initial` must not have transitions *into* control states (the standard
/// normal-form requirement); automata built by the checker satisfy this.
pub fn post_star(pds: &Pds, initial: &ConfigAutomaton) -> ConfigAutomaton {
    let n_controls = pds.n_controls();
    let mut auto = initial.clone();

    // Index rules by (p, γ).
    let mut rules_at: HashMap<(u32, u32), Vec<&PdsRule>> = HashMap::new();
    for r in pds.rules() {
        let key = match *r {
            PdsRule::Pop { p, gamma, .. }
            | PdsRule::Swap { p, gamma, .. }
            | PdsRule::Push { p, gamma, .. } => (p, gamma),
        };
        rules_at.entry(key).or_default().push(r);
    }

    // One mid-state per (p', γ') head of a push rule.
    let mut mid_states: HashMap<(u32, u32), u32> = HashMap::new();
    for r in pds.rules() {
        if let PdsRule::Push { p2, gamma2, .. } = *r {
            mid_states
                .entry((p2, gamma2))
                .or_insert_with(|| auto.add_state());
        }
    }

    // eps_into[q] = controls p with an ε-move p → q.
    let mut eps_into: HashMap<u32, HashSet<u32>> = HashMap::new();
    // rel + outgoing index.
    let mut rel: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut rel_from: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    let mut worklist: VecDeque<(u32, u32, u32)> = initial.transitions().collect();

    while let Some((p, gamma, q)) = worklist.pop_front() {
        if !rel.insert((p, gamma, q)) {
            continue;
        }
        auto.add_transition(p, gamma, q);
        rel_from.entry(p).or_default().push((gamma, q));

        // ε-copy: anything with an ε-move into `p` also has this move.
        if let Some(ps) = eps_into.get(&p) {
            for &p2 in &ps.clone() {
                worklist.push_back((p2, gamma, q));
            }
        }

        if (p as usize) >= n_controls {
            continue;
        }
        for r in rules_at.get(&(p, gamma)).into_iter().flatten() {
            match **r {
                PdsRule::Pop { p2, .. } => {
                    // New ε-move p2 → q.
                    if eps_into.entry(q).or_default().insert(p2) {
                        if auto.is_final(q) {
                            auto.set_final(p2);
                        }
                        if let Some(outs) = rel_from.get(&q) {
                            for &(g2, q2) in &outs.clone() {
                                worklist.push_back((p2, g2, q2));
                            }
                        }
                    }
                }
                PdsRule::Swap { p2, gamma2, .. } => {
                    worklist.push_back((p2, gamma2, q));
                }
                PdsRule::Push {
                    p2, gamma2, gamma3, ..
                } => {
                    let qm = mid_states[&(p2, gamma2)];
                    worklist.push_back((p2, gamma2, qm));
                    worklist.push_back((qm, gamma3, q));
                }
            }
        }
    }
    auto
}

/// Computes a P-automaton recognizing `pre*(C)` — all configurations from
/// which some configuration in `C` is reachable.
pub fn pre_star(pds: &Pds, initial: &ConfigAutomaton) -> ConfigAutomaton {
    let mut auto = initial.clone();

    let mut rel: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut rel_from: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    let mut worklist: VecDeque<(u32, u32, u32)> = initial.transitions().collect();

    // Swap/push rules indexed by their right-hand head (p2, γ2).
    type HeadIndex<T> = HashMap<(u32, u32), Vec<T>>;
    let mut swaps_at: HeadIndex<(u32, u32)> = HashMap::new();
    let mut pushes_at: HeadIndex<(u32, u32, u32)> = HashMap::new();
    for r in pds.rules() {
        match *r {
            PdsRule::Pop { p, gamma, p2 } => {
                // ⟨p2, ε⟩ trivially reaches itself: (p, γ, p2) is in pre*.
                worklist.push_back((p, gamma, p2));
            }
            PdsRule::Swap {
                p,
                gamma,
                p2,
                gamma2,
            } => {
                swaps_at.entry((p2, gamma2)).or_default().push((p, gamma));
            }
            PdsRule::Push {
                p,
                gamma,
                p2,
                gamma2,
                gamma3,
            } => {
                pushes_at
                    .entry((p2, gamma2))
                    .or_default()
                    .push((p, gamma, gamma3));
            }
        }
    }
    // Active push waits: (q1, γ3) → rules (p, γ) whose head matched into q1.
    let mut waiting: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();

    while let Some((p2, gamma2, q)) = worklist.pop_front() {
        if !rel.insert((p2, gamma2, q)) {
            continue;
        }
        auto.add_transition(p2, gamma2, q);
        rel_from.entry(p2).or_default().push((gamma2, q));

        for &(p, gamma) in swaps_at.get(&(p2, gamma2)).into_iter().flatten() {
            worklist.push_back((p, gamma, q));
        }
        for &(p, gamma, gamma3) in pushes_at.get(&(p2, gamma2)).into_iter().flatten() {
            // Need q --γ3--> q2 to conclude (p, γ, q2).
            waiting.entry((q, gamma3)).or_default().push((p, gamma));
            if let Some(outs) = rel_from.get(&q) {
                for &(g, q2) in &outs.clone() {
                    if g == gamma3 {
                        worklist.push_back((p, gamma, q2));
                    }
                }
            }
        }
        // This transition may complete earlier push waits.
        if let Some(rules) = waiting.get(&(p2, gamma2)) {
            for &(p, gamma) in &rules.clone() {
                worklist.push_back((p, gamma, q));
            }
        }
    }
    auto
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PDS: ⟨0, a⟩ → ⟨0, a b⟩; ⟨0, a⟩ → ⟨1, ε⟩; ⟨1, b⟩ → ⟨1, ε⟩.
    /// Stack symbols: a = 0, b = 1. From ⟨0, a⟩ the reachable set is
    /// `⟨0, a bⁿ⟩ ∪ ⟨1, bⁿ⟩`.
    fn sample() -> Pds {
        let mut pds = Pds::new(2, 2);
        pds.push_rule(0, 0, 0, 0, 1);
        pds.pop_rule(0, 0, 1);
        pds.pop_rule(1, 1, 1);
        pds
    }

    fn singleton(n_controls: usize, control: u32, stack: &[u32]) -> ConfigAutomaton {
        let mut a = ConfigAutomaton::new(n_controls);
        let mut cur = control;
        for (i, &gamma) in stack.iter().enumerate() {
            let next = a.add_state();
            a.add_transition(cur, gamma, next);
            cur = next;
            if i == stack.len() - 1 {
                a.set_final(next);
            }
        }
        if stack.is_empty() {
            a.set_final(control);
        }
        a
    }

    #[test]
    fn post_star_reaches_pushed_stacks() {
        let pds = sample();
        let init = singleton(2, 0, &[0]); // ⟨0, a⟩
        let post = post_star(&pds, &init);
        assert!(post.accepts(0, &[0]));
        assert!(post.accepts(0, &[0, 1]));
        assert!(post.accepts(0, &[0, 1, 1, 1]));
        assert!(post.accepts(1, &[1, 1]), "after popping the a");
        assert!(post.accepts(1, &[]), "everything popped");
        assert!(!post.accepts(0, &[1, 0]), "a is always on top in control 0");
        assert!(!post.accepts(1, &[0]), "control 1 never sees an a");
    }

    #[test]
    fn pre_star_finds_ancestors() {
        let pds = sample();
        // Target: ⟨1, ε⟩ (control 1, empty stack).
        let init = singleton(2, 1, &[]);
        let pre = pre_star(&pds, &init);
        assert!(pre.accepts(1, &[]));
        assert!(pre.accepts(0, &[0]), "⟨0, a⟩ can fully unwind");
        assert!(pre.accepts(0, &[0, 1, 1]));
        assert!(pre.accepts(1, &[1, 1]));
        assert!(!pre.accepts(0, &[1]), "⟨0, b⟩ is stuck");
        assert!(!pre.accepts(1, &[0]), "⟨1, a⟩ is stuck");
    }

    #[test]
    fn post_star_empty_stack_acceptance() {
        // ⟨0, a⟩ → ⟨1, ε⟩: the empty-stack config ⟨1, ε⟩ becomes reachable.
        let mut pds = Pds::new(2, 1);
        pds.pop_rule(0, 0, 1);
        let init = singleton(2, 0, &[0]);
        let post = post_star(&pds, &init);
        assert!(post.accepts(1, &[]), "⟨1, ε⟩ reachable");
        assert!(post.control_nonempty(1));
    }

    #[test]
    fn saturation_handles_swap_chains() {
        // ⟨0, a⟩ → ⟨0, b⟩ → ⟨1, c⟩ over symbols a=0, b=1, c=2.
        let mut pds = Pds::new(2, 3);
        pds.swap_rule(0, 0, 0, 1);
        pds.swap_rule(0, 1, 1, 2);
        let init = singleton(2, 0, &[0]);
        let post = post_star(&pds, &init);
        assert!(post.accepts(0, &[1]));
        assert!(post.accepts(1, &[2]));
        assert!(!post.accepts(1, &[0]));
        // And pre* of ⟨1, c⟩ contains ⟨0, a⟩.
        let target = singleton(2, 1, &[2]);
        let pre = pre_star(&pds, &target);
        assert!(pre.accepts(0, &[0]));
    }
}
