//! Pushdown systems in pop/swap/push normal form.

/// A pushdown rule `⟨p, γ⟩ → ⟨p', w⟩` with `|w| ≤ 2`.
///
/// Controls and stack symbols are dense `u32` indices owned by the caller
/// (the checker uses property-FSM states as controls and CFG nodes as stack
/// symbols).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdsRule {
    /// `⟨p, γ⟩ → ⟨p', ε⟩` — e.g. a function return.
    Pop {
        /// Source control.
        p: u32,
        /// Top-of-stack symbol consumed.
        gamma: u32,
        /// Target control.
        p2: u32,
    },
    /// `⟨p, γ⟩ → ⟨p', γ'⟩` — e.g. an intraprocedural step.
    Swap {
        /// Source control.
        p: u32,
        /// Top-of-stack symbol consumed.
        gamma: u32,
        /// Target control.
        p2: u32,
        /// Replacement top symbol.
        gamma2: u32,
    },
    /// `⟨p, γ⟩ → ⟨p', γ' γ''⟩` — e.g. a call pushing a return address.
    Push {
        /// Source control.
        p: u32,
        /// Top-of-stack symbol consumed.
        gamma: u32,
        /// Target control.
        p2: u32,
        /// New top symbol (callee entry).
        gamma2: u32,
        /// Symbol below it (return address).
        gamma3: u32,
    },
}

/// A pushdown system: a set of controls, a stack alphabet, and rules.
#[derive(Debug, Clone, Default)]
pub struct Pds {
    n_controls: usize,
    n_stack: usize,
    rules: Vec<PdsRule>,
}

impl Pds {
    /// Creates a PDS with the given numbers of control states and stack
    /// symbols.
    pub fn new(n_controls: usize, n_stack: usize) -> Pds {
        Pds {
            n_controls,
            n_stack,
            rules: Vec::new(),
        }
    }

    /// Number of control states.
    pub fn n_controls(&self) -> usize {
        self.n_controls
    }

    /// Number of stack symbols.
    pub fn n_stack(&self) -> usize {
        self.n_stack
    }

    /// The rules.
    pub fn rules(&self) -> &[PdsRule] {
        &self.rules
    }

    /// Adds `⟨p, γ⟩ → ⟨p', ε⟩`.
    pub fn pop_rule(&mut self, p: u32, gamma: u32, p2: u32) {
        self.check(p, gamma, p2, None, None);
        self.rules.push(PdsRule::Pop { p, gamma, p2 });
    }

    /// Adds `⟨p, γ⟩ → ⟨p', γ'⟩`.
    pub fn swap_rule(&mut self, p: u32, gamma: u32, p2: u32, gamma2: u32) {
        self.check(p, gamma, p2, Some(gamma2), None);
        self.rules.push(PdsRule::Swap {
            p,
            gamma,
            p2,
            gamma2,
        });
    }

    /// Adds `⟨p, γ⟩ → ⟨p', γ' γ''⟩`.
    pub fn push_rule(&mut self, p: u32, gamma: u32, p2: u32, gamma2: u32, gamma3: u32) {
        self.check(p, gamma, p2, Some(gamma2), Some(gamma3));
        self.rules.push(PdsRule::Push {
            p,
            gamma,
            p2,
            gamma2,
            gamma3,
        });
    }

    fn check(&self, p: u32, gamma: u32, p2: u32, g2: Option<u32>, g3: Option<u32>) {
        debug_assert!((p as usize) < self.n_controls && (p2 as usize) < self.n_controls);
        debug_assert!((gamma as usize) < self.n_stack);
        debug_assert!(g2.is_none_or(|g| (g as usize) < self.n_stack));
        debug_assert!(g3.is_none_or(|g| (g as usize) < self.n_stack));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_accessors() {
        let mut pds = Pds::new(2, 3);
        pds.pop_rule(0, 1, 1);
        pds.swap_rule(1, 0, 0, 2);
        pds.push_rule(0, 2, 1, 0, 1);
        assert_eq!(pds.rules().len(), 3);
        assert_eq!(pds.n_controls(), 2);
        assert_eq!(pds.n_stack(), 3);
    }
}
