//! Incremental solving sessions (`rasc-inc`).
//!
//! The session layer over the bidirectional solver:
//!
//! * [`Session`] — incremental constraint addition, epoch-based rollback,
//!   and a generation-stamped query cache;
//! * [`BatchEngine`] — the JSON-lines batch protocol (`rasc batch`);
//! * [`json`] — the minimal JSON reader/writer backing the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod json;
mod session;

pub use batch::BatchEngine;
pub use session::{CacheStats, Session};
