//! Incremental solving sessions (`rasc-inc`).
//!
//! The session layer over the bidirectional solver:
//!
//! * [`Session`] — incremental constraint addition, epoch-based rollback,
//!   and a generation-stamped query cache;
//! * [`BatchEngine`] — the JSON-lines batch protocol (`rasc batch` and
//!   the `rasc serve` connection layer), with [`EngineCaps`] for
//!   embedder-imposed resource caps;
//! * [`BatchEngine::run_stream`] — newline-delimited framing over any
//!   `BufRead`/`Write` pair, flushing each response;
//! * [`json`] — the minimal JSON reader/writer backing the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod json;
mod session;
mod snapshot;
mod stream;

pub use batch::{BatchEngine, EngineCaps, RequestStats};
pub use session::{CacheStats, Session};
pub use snapshot::EngineBase;
