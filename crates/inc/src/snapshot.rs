//! Crash-safe persistence for sessions and batch engines.
//!
//! Builds on the `rasc-core` snapshot container (magic + version +
//! checksummed sections) and adds the engine layer:
//!
//! * [`Session::snapshot_to`] / [`Session::restore_from`] — persist and
//!   reload a solved form (algebra + solver state). The query cache is
//!   deliberately *not* serialized; a restored session starts cold and
//!   repopulates it on demand.
//! * [`BatchEngine::snapshot_to`] / [`BatchEngine::restore_from`] — the
//!   same, plus an `ENGN` section carrying the protocol's name tables
//!   (alphabet symbols, constructor and variable name→id maps) so a
//!   restored engine answers queries by the same names the client used.
//!
//! Every path-based write goes through `write_atomic` (temp file, fsync,
//! rename), so a crash mid-checkpoint leaves the previous snapshot
//! intact. Every load validates before it mutates: a corrupt or
//! mismatched snapshot leaves the engine exactly as it was and returns a
//! typed [`SnapshotError`].
//!
//! Observability: writes record `snap.write.micros` and `snap.bytes`;
//! restores record `snap.restore.micros`; every rejected-corrupt load
//! bumps `snap.corrupt_rejected`.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rasc_automata::Alphabet;
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::snapshot::{
    read_snapshot_file, write_atomic, ByteWriter, SnapshotReader, SnapshotWriter, TAG_ENGINE,
};
use rasc_core::{ConsId, SnapshotAlgebra, SnapshotError, System, VarId};

use crate::batch::BatchEngine;
use crate::session::Session;

/// Micros elapsed since `start`, saturating into a `u64`.
fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Records the write-side metrics for a successful snapshot.
fn note_write(start: Instant, bytes: u64) {
    rasc_obs::histogram("snap.write.micros", micros_since(start));
    rasc_obs::histogram("snap.bytes", bytes);
}

/// Records restore metrics: duration on success, a rejection counter when
/// the snapshot was detected as corrupt.
fn note_restore<T>(start: Instant, result: &Result<T, SnapshotError>) {
    match result {
        Ok(_) => rasc_obs::histogram("snap.restore.micros", micros_since(start)),
        Err(SnapshotError::Corrupt { .. }) => rasc_obs::counter("snap.corrupt_rejected", 1),
        Err(_) => {}
    }
}

impl<A: Algebra + SnapshotAlgebra> Session<A> {
    /// Serializes the session's solved form (algebra + solver state) as a
    /// snapshot container. Fails with [`SnapshotError::State`] while facts
    /// are pending or an epoch is open.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        self.system().snapshot_bytes()
    }

    /// Atomically writes the session's snapshot to `path` (temp file,
    /// fsync, rename); returns the snapshot size in bytes.
    pub fn snapshot_to(&self, path: &Path) -> Result<u64, SnapshotError> {
        let start = Instant::now();
        let bytes = self.snapshot_bytes()?;
        write_atomic(path, &bytes)?;
        let n = bytes.len() as u64;
        note_write(start, n);
        Ok(n)
    }

    /// Streams the session's snapshot to an arbitrary writer (no
    /// atomicity — the caller owns durability); returns the byte count.
    /// This is the surface the fault-injection harness drives with short
    /// writes and `ENOSPC`.
    pub fn snapshot_to_writer(&self, out: &mut dyn Write) -> Result<u64, SnapshotError> {
        let start = Instant::now();
        let bytes = self.snapshot_bytes()?;
        out.write_all(&bytes)?;
        out.flush()?;
        let n = bytes.len() as u64;
        note_write(start, n);
        Ok(n)
    }

    /// Rebuilds a session from snapshot bytes. The query cache starts
    /// cold; everything else (solved form, interned names, statistics)
    /// matches the snapshotted session exactly.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Session<A>, SnapshotError> {
        let start = Instant::now();
        let result = System::restore_bytes(bytes).map(Session::from_system);
        note_restore(start, &result);
        result
    }

    /// Rebuilds a session from a snapshot file. Missing or unreadable
    /// files are [`SnapshotError::Io`]; torn or tampered contents are
    /// [`SnapshotError::Corrupt`].
    pub fn restore_from(path: &Path) -> Result<Session<A>, SnapshotError> {
        let bytes = read_snapshot_file(path)?;
        Self::restore_bytes(&bytes)
    }
}

impl BatchEngine {
    /// Serializes the engine: the session's solved form plus an `ENGN`
    /// section with the alphabet and the constructor/variable name maps.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut snap = SnapshotWriter::new();
        self.session.system().snapshot_sections(&mut snap)?;
        let mut w = ByteWriter::new();
        w.seq_len(self.sigma.len());
        for sym in self.sigma.symbols() {
            w.str(self.sigma.name(sym));
        }
        // Name maps are hash-ordered in memory; serialize sorted by id so
        // snapshots of equal engines are byte-identical.
        let mut cons: Vec<(&String, u32)> = self
            .cons
            .iter()
            .map(|(name, id)| (name, id.index() as u32))
            .collect();
        cons.sort_by_key(|&(_, id)| id);
        w.seq_len(cons.len());
        for (name, id) in cons {
            w.str(name);
            w.u32(id);
        }
        let mut vars: Vec<(&String, u32)> = self
            .vars
            .iter()
            .map(|(name, id)| (name, id.index() as u32))
            .collect();
        vars.sort_by_key(|&(_, id)| id);
        w.seq_len(vars.len());
        for (name, id) in vars {
            w.str(name);
            w.u32(id);
        }
        snap.section(TAG_ENGINE, w);
        Ok(snap.finish())
    }

    /// Atomically writes the engine's snapshot to `path`; returns the
    /// snapshot size in bytes.
    pub fn snapshot_to(&self, path: &Path) -> Result<u64, SnapshotError> {
        self.snapshot_to_returning(path).map(|b| b.len() as u64)
    }

    /// Like [`BatchEngine::snapshot_to`] but hands back the serialized
    /// bytes (the serve layer reuses them as its warm-start base image).
    pub(crate) fn snapshot_to_returning(&self, path: &Path) -> Result<Vec<u8>, SnapshotError> {
        let start = Instant::now();
        let bytes = self.snapshot_bytes()?;
        write_atomic(path, &bytes)?;
        note_write(start, bytes.len() as u64);
        Ok(bytes)
    }

    /// Streams the engine's snapshot to an arbitrary writer (no
    /// atomicity); returns the byte count.
    pub fn snapshot_to_writer(&self, out: &mut dyn Write) -> Result<u64, SnapshotError> {
        let start = Instant::now();
        let bytes = self.snapshot_bytes()?;
        out.write_all(&bytes)?;
        out.flush()?;
        let n = bytes.len() as u64;
        note_write(start, n);
        Ok(n)
    }

    /// Replaces the engine's session and name maps with the snapshotted
    /// state. Validates *everything* before mutating: on any error the
    /// engine is untouched. The client-set `limits`, embedder caps,
    /// cancellation token, and clock all survive the restore — they are
    /// connection state, not solved-form state.
    ///
    /// The snapshot's alphabet must match this engine's (same names, same
    /// order); a snapshot taken under a different property machine
    /// configuration is rejected with [`SnapshotError::State`].
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let start = Instant::now();
        let result = self.restore_validated(bytes);
        note_restore(start, &result);
        result
    }

    /// Restores the engine from a snapshot file.
    pub fn restore_from(&mut self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = read_snapshot_file(path)?;
        self.restore_bytes(&bytes)
    }

    fn restore_validated(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if self.session.epoch_depth() != 0 {
            return Err(SnapshotError::state(format!(
                "cannot restore with {} open epoch(s); pop or commit them first",
                self.session.epoch_depth()
            )));
        }
        let (sys, cons, vars) = decode_engine_snapshot(bytes, &self.sigma)?;

        // All validation passed — commit the restore.
        let mut session = Session::from_system(sys);
        // The batch engine invariant: provenance is recorded for every
        // constraint added from here on, so `explain` keeps working.
        session.system_mut().enable_provenance();
        self.session = session;
        self.cons = Arc::new(cons);
        self.vars = Arc::new(vars);
        Ok(())
    }
}

/// A fully decoded engine snapshot: the solved form plus the protocol's
/// constructor and variable name tables.
type DecodedEngine = (
    System<MonoidAlgebra>,
    HashMap<String, ConsId>,
    HashMap<String, VarId>,
);

/// Decodes and fully validates an engine snapshot without touching any
/// engine: the `ENGN` name tables are checked against `sigma` and against
/// the restored solved form's id ranges before anything is returned.
/// Shared by [`BatchEngine::restore_bytes`] (which commits the result into
/// an existing engine) and [`EngineBase::decode`] (which freezes it into a
/// shared fork base).
fn decode_engine_snapshot(bytes: &[u8], sigma: &Alphabet) -> Result<DecodedEngine, SnapshotError> {
    let reader = SnapshotReader::parse(bytes)?;

    // Decode and validate the ENGN name tables first — it is the
    // cheapest section and catches cross-configuration restores
    // before the solved form is rebuilt.
    let mut r = reader.section(TAG_ENGINE)?;
    let n_syms = r.seq_len()?;
    let mut snap_alphabet = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        snap_alphabet.push(r.str()?);
    }
    let names = read_name_map(&mut r, "constructor")?;
    let var_names = read_name_map(&mut r, "variable")?;
    r.finish()?;

    let engine_alphabet: Vec<&str> = sigma.symbols().map(|s| sigma.name(s)).collect();
    if snap_alphabet != engine_alphabet {
        return Err(SnapshotError::state(format!(
            "snapshot alphabet [{}] does not match engine alphabet [{}]",
            snap_alphabet.join(","),
            engine_alphabet.join(",")
        )));
    }

    let sys = System::restore_sections(&reader)?;
    let stats = sys.stats();
    let mut cons = HashMap::with_capacity(names.len());
    for (name, id) in names {
        if id as usize >= stats.constructors {
            return Err(SnapshotError::corrupt(format!(
                "constructor map entry `{name}` has id {id} but only {} constructors",
                stats.constructors
            )));
        }
        if cons
            .insert(name.clone(), ConsId::from_index(id as usize))
            .is_some()
        {
            return Err(SnapshotError::corrupt(format!(
                "duplicate constructor map entry `{name}`"
            )));
        }
    }
    let mut vars = HashMap::with_capacity(var_names.len());
    for (name, id) in var_names {
        if id as usize >= stats.vars {
            return Err(SnapshotError::corrupt(format!(
                "variable map entry `{name}` has id {id} but only {} variables",
                stats.vars
            )));
        }
        if vars
            .insert(name.clone(), VarId::from_index(id as usize))
            .is_some()
        {
            return Err(SnapshotError::corrupt(format!(
                "duplicate variable map entry `{name}`"
            )));
        }
    }
    Ok((sys, cons, vars))
}

/// A decoded engine snapshot frozen into a shared, read-only fork base.
///
/// The serve layer decodes its warm-start image into one of these **once**
/// and hands an `Arc<EngineBase>` to every connection;
/// [`BatchEngine::fork_from`] then builds a private copy-on-write engine
/// over it in near-constant time, instead of re-parsing the snapshot per
/// connection.
#[derive(Debug)]
pub struct EngineBase {
    pub(crate) sigma: Alphabet,
    pub(crate) cons: Arc<HashMap<String, ConsId>>,
    pub(crate) vars: Arc<HashMap<String, VarId>>,
    pub(crate) base: rasc_core::BaseSystem<MonoidAlgebra>,
}

impl EngineBase {
    /// Decodes snapshot bytes into a fork base, validating exactly as
    /// [`BatchEngine::restore_bytes`] does (same alphabet check, same
    /// name-map id-range checks, same metrics: `snap.restore.micros` on
    /// success, `snap.corrupt_rejected` on corrupt input).
    pub fn decode(bytes: &[u8], sigma: &Alphabet) -> Result<EngineBase, SnapshotError> {
        let start = Instant::now();
        let result = Self::decode_validated(bytes, sigma);
        note_restore(start, &result);
        result
    }

    fn decode_validated(bytes: &[u8], sigma: &Alphabet) -> Result<EngineBase, SnapshotError> {
        let (mut sys, cons, vars) = decode_engine_snapshot(bytes, sigma)?;
        // Forked engines share the batch-engine invariant: provenance is
        // on before any post-fork constraint lands.
        sys.enable_provenance();
        Ok(EngineBase {
            sigma: sigma.clone(),
            cons: Arc::new(cons),
            vars: Arc::new(vars),
            base: sys.into_base()?,
        })
    }

    /// Solver statistics of the frozen solved form (useful for logging
    /// what a warm start loaded).
    pub fn stats(&self) -> rasc_core::SolverStats {
        self.base.stats()
    }
}

/// Reads a `(name, id)` map section fragment, rejecting duplicate ids.
fn read_name_map(
    r: &mut rasc_core::snapshot::ByteReader<'_>,
    what: &str,
) -> Result<Vec<(String, u32)>, SnapshotError> {
    let n = r.seq_len()?;
    let mut out: Vec<(String, u32)> = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let id = r.u32()?;
        if out.iter().any(|&(_, seen)| seen == id) {
            return Err(SnapshotError::corrupt(format!(
                "duplicate {what} id {id} in name map"
            )));
        }
        out.push((name, id));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use rasc_automata::{Alphabet, Dfa};
    use rasc_core::algebra::MonoidAlgebra;
    use rasc_core::{SetExpr, SnapshotError};

    use crate::json::Json;
    use crate::{BatchEngine, Session};

    fn engine() -> BatchEngine {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let machine = Dfa::one_bit(&sigma, g, k);
        BatchEngine::new(sigma, &machine)
    }

    fn run(e: &mut BatchEngine, line: &str) -> Json {
        Json::parse(&e.handle_line(line).expect("a response")).expect("valid JSON response")
    }

    fn loaded_engine() -> BatchEngine {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(
            &mut e,
            r#"{"cmd":"declare","cons":"pair","signature":"++"}"#,
        );
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair(X,X)","rhs":"P"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair^-1(P)","rhs":"Y"}"#);
        e
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rasc-inc-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn engine_restore_preserves_the_full_query_surface() {
        let e = loaded_engine();
        let bytes = e.snapshot_bytes().unwrap();
        let mut back = engine();
        back.restore_bytes(&bytes).unwrap();
        // Solver-state stats match exactly (cache counters are ephemeral
        // and start cold after a restore, so they are compared separately).
        let restored_stats = run(&mut back, r#"{"cmd":"stats"}"#);
        let fresh_stats = run(&mut loaded_engine(), r#"{"cmd":"stats"}"#);
        for key in [
            "vars",
            "constructors",
            "constraints",
            "edges",
            "lower_bounds",
            "upper_bounds",
            "annotations",
            "clashes",
            "consistent",
            "epoch_depth",
        ] {
            assert_eq!(restored_stats.get(key), fresh_stats.get(key), "{key}");
        }
        assert_eq!(restored_stats.get("cache_hits").unwrap().as_u64(), Some(0));
        for query in [
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
            r#"{"cmd":"query","kind":"anns","var":"Y","cons":"c"}"#,
            r#"{"cmd":"query","kind":"nonempty","var":"P"}"#,
            r#"{"cmd":"explain","var":"Y","cons":"c"}"#,
        ] {
            let mut fresh = loaded_engine();
            assert_eq!(
                run(&mut back, query).render(),
                run(&mut fresh, query).render(),
                "restored engine diverges on {query}"
            );
        }
        // The restored engine keeps working: new adds and epochs compose.
        run(&mut back, r#"{"cmd":"push"}"#);
        let r = run(&mut back, r#"{"cmd":"add","lhs":"Y","rhs":"Z"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        let r = run(
            &mut back,
            r#"{"cmd":"query","kind":"occurs","var":"Z","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        run(&mut back, r#"{"cmd":"pop"}"#);
        // And explain still works for constraints added *after* restore.
        run(&mut back, r#"{"cmd":"add","lhs":"Y","rhs":"W"}"#);
        let r = run(&mut back, r#"{"cmd":"explain","var":"W","cons":"c"}"#);
        assert_eq!(r.get("holds").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn engine_snapshots_are_deterministic() {
        let a = loaded_engine().snapshot_bytes().unwrap();
        let b = loaded_engine().snapshot_bytes().unwrap();
        assert_eq!(a, b, "equal engines must serialize identically");
    }

    #[test]
    fn corrupt_and_mismatched_snapshots_leave_the_engine_untouched() {
        let e = loaded_engine();
        let bytes = e.snapshot_bytes().unwrap();

        // Truncations and bit flips are typed corruption errors.
        let mut back = loaded_engine();
        let before = run(&mut back, r#"{"cmd":"stats"}"#).render();
        assert!(matches!(
            back.restore_bytes(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Corrupt { .. })
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            back.restore_bytes(&flipped),
            Err(SnapshotError::Corrupt { .. })
        ));
        assert_eq!(
            run(&mut back, r#"{"cmd":"stats"}"#).render(),
            before,
            "failed restore must not disturb the engine"
        );

        // A session-level snapshot has no ENGN section.
        let session_only = e.session().snapshot_bytes().unwrap();
        let err = back.restore_bytes(&session_only).unwrap_err();
        assert!(err.to_string().contains("ENGN"), "{err}");

        // A snapshot from a different alphabet is a state error.
        let mut other_sigma = Alphabet::new();
        let a = other_sigma.intern("a");
        let b = other_sigma.intern("b");
        let machine = Dfa::one_bit(&other_sigma, a, b);
        let mut other = BatchEngine::new(other_sigma, &machine);
        assert!(matches!(
            other.restore_bytes(&bytes),
            Err(SnapshotError::State { .. })
        ));

        // Restoring over open epochs is refused before any parsing.
        let mut open = loaded_engine();
        run(&mut open, r#"{"cmd":"push"}"#);
        assert!(matches!(
            open.restore_bytes(&bytes),
            Err(SnapshotError::State { .. })
        ));
    }

    #[test]
    fn engine_file_round_trip_is_atomic_and_typed() {
        let dir = temp_dir("engine");
        let path = dir.join("engine.snap");
        let e = loaded_engine();
        let n = e.snapshot_to(&path).unwrap();
        assert_eq!(n, std::fs::metadata(&path).unwrap().len());
        // No temp file is left behind by a successful write.
        assert!(!dir.join("engine.snap.tmp").exists());
        let mut back = engine();
        back.restore_from(&path).unwrap();
        let r = run(
            &mut back,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        // Missing files are Io, not Corrupt.
        assert!(matches!(
            back.restore_from(&dir.join("absent.snap")),
            Err(SnapshotError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_round_trips_through_writer_and_file() {
        let dir = temp_dir("session");
        let path = dir.join("session.snap");
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let mut s: Session<MonoidAlgebra> =
            Session::new(MonoidAlgebra::new(&Dfa::one_bit(&sigma, g, k)));
        let c = s.constructor("c", &[]);
        let x = s.var("X");
        let fg = s.system_mut().algebra_mut().word(&[g]);
        s.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();

        // Writer and file paths produce the same bytes.
        let mut streamed = Vec::new();
        let n = s.snapshot_to_writer(&mut streamed).unwrap();
        assert_eq!(n as usize, streamed.len());
        let written = s.snapshot_to(&path).unwrap();
        assert_eq!(written, n);
        assert_eq!(std::fs::read(&path).unwrap(), streamed);

        let back: Session<MonoidAlgebra> = Session::restore_from(&path).unwrap();
        assert!(back.system().lower_bound_annotations(x, c).len() == 1);
        assert_eq!(back.stats().vars, s.stats().vars);
        // The restored cache is cold.
        assert_eq!(back.cache_stats().hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
