//! The batch query front-end: a JSON-lines command protocol over a
//! [`Session`] — the seed of the serving story.
//!
//! Each input line is one JSON object; each produces exactly one JSON
//! response line. Blank lines and `#` comments are skipped. Errors are
//! reported in-band as structured objects —
//! `{"error":{"code":…,"message":…}}` — and **no input line, malformed,
//! hostile, or resource-exhausting, ever kills the stream**: the JSON
//! reader bounds its recursion depth, commands under a budget roll back
//! transactionally, and a `catch_unwind` backstop turns any residual
//! panic into an `internal` error response.
//!
//! ```text
//! {"cmd":"declare","cons":"pair","signature":"++"}
//! {"cmd":"limits","max_steps":10000}
//! {"cmd":"add","lhs":"pair(X,Y)","rhs":"Z","ann":["g"]}
//! {"cmd":"push"}
//! {"cmd":"query","kind":"occurs","var":"Z","cons":"c"}
//! {"cmd":"explain","var":"Z","cons":"c"}
//! {"cmd":"pop"}
//! {"cmd":"stats"}
//! ```
//!
//! * `declare` — declare constructor `cons` with one `+` (covariant) or
//!   `-` (contravariant) per argument; omitted `signature` declares a
//!   constant.
//! * `limits` — set the per-`add` resource budget: `max_steps` (worklist
//!   fuel), `max_millis` (wall-clock deadline), `max_terms`, and
//!   `max_entries` (solved-form memory caps). Omitted fields are
//!   unlimited; `{"cmd":"limits"}` clears every limit. While any limit is
//!   set, each `add` is **transactional**: it either fully solves, or the
//!   session is rolled back to exactly its prior state and the response
//!   is `{"error":{"code":"budget_exhausted","reason":…,
//!   "rolled_back":true,…}}`.
//! * `add` — add `lhs ⊆ rhs` and re-solve incrementally. Expressions are
//!   `X`, `c(X,Y)`, or `c^-1(X)` (1-based projection); variables are
//!   created on first use, constructors must be declared. `ann` is a word
//!   over the property machine's alphabet (omitted = ε).
//! * `push` / `pop` — open / roll back an epoch.
//! * `query` — `kind` is `occurs` (accepting occurrence), `anns`
//!   (occurrence annotation classes), `pn` (partially matched
//!   reachability), or `nonempty`.
//! * `explain` — the provenance chain showing *why* constructor `cons`
//!   reached variable `var`'s lower bound: a list of derivation steps,
//!   each citing a resolution rule and (where applicable) the surface
//!   constraint it came from. Provenance recording is always on for
//!   batch sessions.
//! * `stats` — solver statistics (including budget fuel, interruptions,
//!   and cycle-search depth-limit hits) plus cache counters. An optional
//!   `scope` selects `"session"` (the default: whole-session totals) or
//!   `"request"` (deltas since the embedder's last
//!   [`BatchEngine::begin_request`] boundary — what one request cost);
//!   any other scope is a `bad_request`.
//! * `snapshot` / `restore` — persist the session's solved form to a
//!   crash-safe snapshot file and reload one. `path` selects the file;
//!   omitted, the engine's configured default path (set by the embedder,
//!   e.g. `rasc serve --snapshot-dir`) is used. Embedders may disable
//!   client-chosen paths, in which case only the default is writable.
//!   Torn or tampered snapshot files are rejected with
//!   `snapshot_corrupt` and the session is left untouched.
//!
//! Error codes: `malformed_json`, `bad_request`, `unknown_command`,
//! `unknown_symbol`, `unknown_constructor`, `unknown_variable`,
//! `already_declared`, `no_open_epoch`, `constraint_rejected`,
//! `budget_exhausted`, `snapshot_corrupt`, `io`, `internal`. When the
//! embedder has set a request id ([`BatchEngine::begin_request`]), error
//! responses additionally carry a top-level `"req"` field correlating the
//! error with the embedder's spans and slow-query-log lines.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use rasc_automata::{Alphabet, Dfa};
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::{Budget, Clock, ConsId, Outcome, SetExpr, SolverConfig, VarId, Variance};

use rasc_core::{CancelToken, SnapshotError};

use crate::json::{obj, Json};
use crate::session::Session;

/// A structured in-band protocol error: a stable machine-readable code,
/// a human-readable message, and optional extra fields.
#[derive(Debug, Clone)]
struct BatchError {
    code: &'static str,
    message: String,
    extra: Vec<(&'static str, Json)>,
}

impl BatchError {
    fn new(code: &'static str, message: impl Into<String>) -> BatchError {
        BatchError {
            code,
            message: message.into(),
            extra: Vec::new(),
        }
    }

    fn with(mut self, key: &'static str, value: Json) -> BatchError {
        self.extra.push((key, value));
        self
    }

    /// Renders as `{"error":{"code":…,"message":…,…}}`.
    fn render(self) -> Json {
        let mut fields = vec![
            ("code".to_owned(), Json::Str(self.code.to_owned())),
            ("message".to_owned(), Json::Str(self.message)),
        ];
        for (k, v) in self.extra {
            fields.push((k.to_owned(), v));
        }
        Json::Obj(vec![("error".to_owned(), Json::Obj(fields))])
    }
}

fn bad_request(message: impl Into<String>) -> BatchError {
    BatchError::new("bad_request", message)
}

/// The per-`add` resource limits configured by `{"cmd":"limits"}`.
#[derive(Debug, Clone, Copy, Default)]
struct Limits {
    max_steps: Option<u64>,
    max_millis: Option<u64>,
    max_terms: Option<usize>,
    max_entries: Option<usize>,
}

impl Limits {
    fn is_unset(&self) -> bool {
        self.max_steps.is_none()
            && self.max_millis.is_none()
            && self.max_terms.is_none()
            && self.max_entries.is_none()
    }

    /// The element-wise tightest combination of two limit sets: each axis
    /// takes the smaller of the two caps (an unset axis imposes nothing).
    fn min_with(&self, other: &Limits) -> Limits {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Limits {
            max_steps: tighter(self.max_steps, other.max_steps),
            max_millis: tighter(self.max_millis, other.max_millis),
            max_terms: tighter(self.max_terms, other.max_terms),
            max_entries: tighter(self.max_entries, other.max_entries),
        }
    }
}

/// Engine-wide resource caps imposed by the embedder (e.g. the serve
/// layer's server-wide per-request limits), as opposed to the limits the
/// client sets with the protocol `limits` command.
///
/// Caps *clamp* rather than replace: the budget applied to each `add` is
/// the element-wise minimum of the caps and the client's own limits, so a
/// client can tighten its budget but never escape the embedder's. While
/// any cap is in force every `add` is transactional, exactly as with the
/// `limits` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCaps {
    /// Worklist-step (fuel) cap per `add`.
    pub max_steps: Option<u64>,
    /// Wall-clock deadline per `add`, in milliseconds.
    pub max_millis: Option<u64>,
    /// Interned-term cap (variables + sources + sinks).
    pub max_terms: Option<usize>,
    /// Solved-form entry cap (edges plus lower and upper bounds).
    pub max_entries: Option<usize>,
}

impl EngineCaps {
    /// Caps with every axis unlimited.
    pub fn unlimited() -> EngineCaps {
        EngineCaps::default()
    }

    /// Whether no axis is capped.
    pub fn is_unset(&self) -> bool {
        self.max_steps.is_none()
            && self.max_millis.is_none()
            && self.max_terms.is_none()
            && self.max_entries.is_none()
    }
}

/// A stateful batch-protocol interpreter over one [`Session`].
#[derive(Debug)]
pub struct BatchEngine {
    pub(crate) session: Session<MonoidAlgebra>,
    pub(crate) sigma: Alphabet,
    /// Constructor name→id map. Behind an `Arc` so forking from a shared
    /// [`crate::EngineBase`] is a pointer bump; the first post-fork
    /// `declare` copies it once (`Arc::make_mut`).
    pub(crate) cons: Arc<HashMap<String, ConsId>>,
    /// Variable name→id map, `Arc`-shared like `cons`.
    pub(crate) vars: Arc<HashMap<String, VarId>>,
    limits: Limits,
    /// Embedder-imposed caps clamping every budget (see [`EngineCaps`]).
    caps: Limits,
    /// Cached `limits.min_with(&caps)` clamp, rebuilt only when either
    /// side changes — never re-derived per `add` line, so hostile per-line
    /// limit churn cannot make every constraint pay for the clamp.
    effective: Limits,
    /// How many times the effective clamp was rebuilt (a plain counter so
    /// the no-recompute-per-`add` invariant stays pinned by a test).
    effective_rebuilds: u64,
    /// Worker threads used to drain each `add`'s consequences
    /// (see [`Session::bulk_solve`]); 1 means the sequential drain.
    solve_threads: usize,
    /// Cooperative cancellation observed by every bounded `add` (wired by
    /// the serve layer so disconnects and forced shutdown interrupt
    /// in-flight solves).
    cancel: Option<CancelToken>,
    /// Deadline time source for budgets (injectable for deterministic
    /// tests; `None` = the real monotonic clock).
    clock: Option<Arc<dyn Clock>>,
    /// Default target for the `snapshot`/`restore` commands when the
    /// client omits `path` (wired by `rasc serve --snapshot-dir`).
    snapshot_path: Option<PathBuf>,
    /// Whether the `snapshot`/`restore` commands may take a client-chosen
    /// `path`. Serving embedders disable this so remote clients can only
    /// touch the configured default file.
    client_snapshot_paths: bool,
    /// Observer called with the serialized bytes after each successful
    /// `snapshot` command (the serve layer refreshes its warm-start base
    /// image here).
    snapshot_hook: Option<SnapshotHook>,
    /// The embedder-assigned id of the request being handled; echoed as a
    /// top-level `"req"` field on error responses so operators can join
    /// protocol errors against spans and slow-query-log lines.
    request_id: Option<u64>,
    /// Engine figures captured at the last [`BatchEngine::begin_request`]
    /// boundary; `{"cmd":"stats","scope":"request"}` reports deltas
    /// against it.
    request_base: RequestStats,
}

/// Point-in-time engine figures cheap enough to sample around every
/// request: the serve layer's slow-query log and the
/// `{"cmd":"stats","scope":"request"}` command both diff two of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Worklist fuel charged against limited budgets so far.
    pub fuel_spent: u64,
    /// Worklist facts processed so far (including duplicates).
    pub facts_processed: u64,
    /// Open epoch depth right now.
    pub epoch_depth: usize,
    /// Incremental-cache hits so far.
    pub cache_hits: u64,
    /// Incremental-cache misses so far.
    pub cache_misses: u64,
}

impl RequestStats {
    /// The change from `base` to `self`, saturating at zero: a rolled-back
    /// epoch can move the session's counters *backwards* past the request
    /// boundary, and a delta must never underflow into nonsense.
    pub fn delta_since(&self, base: &RequestStats) -> RequestStats {
        RequestStats {
            fuel_spent: self.fuel_spent.saturating_sub(base.fuel_spent),
            facts_processed: self.facts_processed.saturating_sub(base.facts_processed),
            epoch_depth: self.epoch_depth,
            cache_hits: self.cache_hits.saturating_sub(base.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(base.cache_misses),
        }
    }
}

/// The callable a [`SnapshotHook`] wraps: serialized snapshot bytes in,
/// nothing out, shareable across the serve layer's threads.
type SnapshotObserver = Box<dyn Fn(&[u8]) + Send + Sync>;

/// A boxed snapshot observer (newtype so [`BatchEngine`] keeps `Debug`).
struct SnapshotHook(SnapshotObserver);

impl std::fmt::Debug for SnapshotHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SnapshotHook(..)")
    }
}

impl BatchEngine {
    /// An engine whose annotations range over `machine`'s transition
    /// monoid, with symbols named by `sigma`.
    pub fn new(sigma: Alphabet, machine: &Dfa) -> BatchEngine {
        Self::with_config(sigma, machine, SolverConfig::default())
    }

    /// An engine with explicit solver configuration.
    pub fn with_config(sigma: Alphabet, machine: &Dfa, config: SolverConfig) -> BatchEngine {
        let mut session = Session::with_config(MonoidAlgebra::new(machine), config);
        // Batch sessions always record provenance so `explain` works for
        // every constraint the stream adds (recording must be on *before*
        // the facts it will be asked about are derived).
        session.system_mut().enable_provenance();
        BatchEngine {
            session,
            sigma,
            cons: Arc::new(HashMap::new()),
            vars: Arc::new(HashMap::new()),
            limits: Limits::default(),
            caps: Limits::default(),
            effective: Limits::default(),
            effective_rebuilds: 0,
            solve_threads: 1,
            cancel: None,
            clock: None,
            snapshot_path: None,
            client_snapshot_paths: true,
            snapshot_hook: None,
            request_id: None,
            request_base: RequestStats::default(),
        }
    }

    /// An engine forked from a shared read-only [`crate::EngineBase`].
    ///
    /// The solved form, provenance records, and name maps are aliased
    /// copy-on-write (a handful of `Arc` bumps plus the per-variable
    /// bookkeeping), so forking is near-constant-time in the size of the
    /// base. Connection state — limits, caps, cancellation, hooks —
    /// starts fresh exactly as with [`BatchEngine::new`].
    pub fn fork_from(base: &crate::EngineBase) -> BatchEngine {
        BatchEngine {
            session: Session::fork_from(&base.base),
            sigma: base.sigma.clone(),
            cons: Arc::clone(&base.cons),
            vars: Arc::clone(&base.vars),
            limits: Limits::default(),
            caps: Limits::default(),
            effective: Limits::default(),
            effective_rebuilds: 0,
            solve_threads: 1,
            cancel: None,
            clock: None,
            snapshot_path: None,
            client_snapshot_paths: true,
            snapshot_hook: None,
            request_id: None,
            request_base: RequestStats::default(),
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session<MonoidAlgebra> {
        &self.session
    }

    /// Injects the time source used for `max_millis` budgets (tests and
    /// the fault-injection harness drive deadlines deterministically).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = Some(clock);
    }

    /// Imposes embedder-wide resource caps on every `add` (see
    /// [`EngineCaps`]): the client's `limits` command can tighten the
    /// budget further but never loosen past these.
    pub fn set_caps(&mut self, caps: EngineCaps) {
        self.caps = Limits {
            max_steps: caps.max_steps,
            max_millis: caps.max_millis,
            max_terms: caps.max_terms,
            max_entries: caps.max_entries,
        };
        self.rebuild_effective();
    }

    /// Re-derives the cached effective clamp; called only when `limits`
    /// or `caps` actually change.
    fn rebuild_effective(&mut self) {
        self.effective = self.limits.min_with(&self.caps);
        self.effective_rebuilds += 1;
    }

    /// How many times the effective limit clamp has been rebuilt — pinned
    /// by the regression test for the per-`add` recompute bug.
    #[doc(hidden)]
    pub fn effective_rebuilds(&self) -> u64 {
        self.effective_rebuilds
    }

    /// Sets the number of worker threads used to drain each `add`'s
    /// consequences (clamped to at least 1). The solved form is
    /// byte-identical whatever the thread count; see
    /// [`rasc_core::System::solve_parallel`].
    pub fn set_solve_threads(&mut self, threads: usize) {
        self.solve_threads = threads.max(1);
    }

    /// The configured worker thread count for solves.
    pub fn solve_threads(&self) -> usize {
        self.solve_threads
    }

    /// Drains any pending worklist on the configured worker threads (see
    /// [`Session::bulk_solve`]).
    pub fn bulk_solve(&mut self) -> Outcome {
        self.session.bulk_solve(self.solve_threads)
    }

    /// Attaches a cancellation token observed by every subsequent `add`:
    /// once cancelled, in-flight solves roll back transactionally and
    /// report `{"error":{"code":"budget_exhausted","reason":"cancelled"}}`.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Sets the default file the `snapshot`/`restore` commands use when
    /// the client omits `path`.
    pub fn set_snapshot_path(&mut self, path: PathBuf) {
        self.snapshot_path = Some(path);
    }

    /// Allows or forbids client-chosen `path` fields on the
    /// `snapshot`/`restore` commands. Serving embedders pass `false` so a
    /// remote client can only read and write the configured default file.
    pub fn set_client_snapshot_paths(&mut self, allowed: bool) {
        self.client_snapshot_paths = allowed;
    }

    /// Registers an observer called with the serialized bytes after each
    /// successful in-band `snapshot` command.
    pub fn set_snapshot_hook(&mut self, hook: impl Fn(&[u8]) + Send + Sync + 'static) {
        self.snapshot_hook = Some(SnapshotHook(Box::new(hook)));
    }

    /// Marks the start of a new request: records `id` (echoed as `"req"`
    /// on error responses; `None` clears it) and snapshots the engine
    /// figures that `{"cmd":"stats","scope":"request"}` reports deltas
    /// against. The serve layer calls this once per request line.
    pub fn begin_request(&mut self, id: Option<u64>) {
        self.request_id = id;
        self.request_base = self.request_stats();
    }

    /// The engine figures a per-request delta is computed from — cheap
    /// enough to sample around every request (used by the serve layer's
    /// slow-query log).
    pub fn request_stats(&self) -> RequestStats {
        let s = self.session.stats();
        let c = self.session.cache_stats();
        RequestStats {
            fuel_spent: u64::try_from(s.fuel_spent).unwrap_or(u64::MAX),
            facts_processed: u64::try_from(s.facts_processed).unwrap_or(u64::MAX),
            epoch_depth: self.session.epoch_depth(),
            cache_hits: c.hits,
            cache_misses: c.misses,
        }
    }

    /// Handles one input line; `None` for blank/comment lines, otherwise
    /// exactly one JSON response line. Never panics and never aborts the
    /// stream, whatever the input.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        let response = match Json::parse(trimmed) {
            Ok(cmd) => {
                // Defense in depth: the library crates are swept for
                // panics and gated by clippy, but a serving loop must
                // not die even if one slips through. (A stack overflow
                // is not catchable — hence the parsers' depth limits.)
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(&cmd)));
                match result {
                    Ok(Ok(ok)) => ok,
                    Ok(Err(err)) => err.render(),
                    Err(_) => BatchError::new(
                        "internal",
                        "internal error (caught panic); session state may be inconsistent",
                    )
                    .render(),
                }
            }
            Err(msg) => {
                BatchError::new("malformed_json", format!("malformed JSON: {msg}")).render()
            }
        };
        // Stamp error responses with the embedder's request id so a
        // protocol error in a server log can be joined against the span
        // and slow-query-log entries for the same request.
        let response = match (self.request_id, response) {
            (Some(id), Json::Obj(mut fields)) if fields.iter().any(|(k, _)| k == "error") => {
                fields.push(("req".to_owned(), Json::from(id)));
                Json::Obj(fields)
            }
            (_, r) => r,
        };
        Some(response.render())
    }

    fn dispatch(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let name = cmd
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("missing `cmd` field"))?;
        match name {
            "declare" => self.declare(cmd),
            "limits" => self.set_limits(cmd),
            "add" => self.add(cmd),
            "push" => {
                self.session.push_epoch();
                Ok(obj([
                    ("ok", Json::from("push")),
                    ("depth", Json::from(self.session.epoch_depth())),
                ]))
            }
            "pop" => {
                if !self.session.pop_epoch() {
                    return Err(BatchError::new("no_open_epoch", "no open epoch"));
                }
                self.prune_names();
                Ok(obj([
                    ("ok", Json::from("pop")),
                    ("depth", Json::from(self.session.epoch_depth())),
                ]))
            }
            "query" => self.query(cmd),
            "explain" => self.explain(cmd),
            "stats" => self.cmd_stats(cmd),
            "snapshot" => self.cmd_snapshot(cmd),
            "restore" => self.cmd_restore(cmd),
            other => Err(BatchError::new(
                "unknown_command",
                format!("unknown command `{other}`"),
            )),
        }
    }

    /// Drops name bindings that refer to rolled-away ids (after any
    /// `pop_epoch`).
    fn prune_names(&mut self) {
        let stats = self.session.stats();
        // Only copy-on-write the shared maps when something actually
        // rolled away (the common pop touches no names).
        if self.vars.values().any(|v| v.index() >= stats.vars) {
            Arc::make_mut(&mut self.vars).retain(|_, v| v.index() < stats.vars);
        }
        if self.cons.values().any(|c| c.index() >= stats.constructors) {
            Arc::make_mut(&mut self.cons).retain(|_, c| c.index() < stats.constructors);
        }
    }

    fn declare(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let name = cmd
            .get("cons")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("declare: missing `cons`"))?;
        if self.cons.contains_key(name) {
            return Err(BatchError::new(
                "already_declared",
                format!("constructor `{name}` already declared"),
            ));
        }
        if self.vars.contains_key(name) {
            return Err(BatchError::new(
                "already_declared",
                format!("`{name}` is already a variable"),
            ));
        }
        let signature: Vec<Variance> = match cmd.get("signature").and_then(Json::as_str) {
            None => Vec::new(),
            Some(s) => s
                .chars()
                .map(|c| match c {
                    '+' => Ok(Variance::Covariant),
                    '-' => Ok(Variance::Contravariant),
                    other => Err(bad_request(format!(
                        "declare: bad variance `{other}` (want + or -)"
                    ))),
                })
                .collect::<Result<_, _>>()?,
        };
        let id = self.session.constructor(name, &signature);
        Arc::make_mut(&mut self.cons).insert(name.to_owned(), id);
        Ok(obj([
            ("ok", Json::from("declare")),
            ("cons", Json::from(name)),
            ("arity", Json::from(signature.len())),
        ]))
    }

    fn set_limits(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        fn field(cmd: &Json, key: &str) -> Result<Option<u64>, BatchError> {
            match cmd.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => match v.as_u64() {
                    Some(n) => Ok(Some(n)),
                    None => Err(bad_request(format!(
                        "limits: `{key}` must be a non-negative integer"
                    ))),
                },
            }
        }
        let to_usize = |n: u64| usize::try_from(n).unwrap_or(usize::MAX);
        self.limits = Limits {
            max_steps: field(cmd, "max_steps")?,
            max_millis: field(cmd, "max_millis")?,
            max_terms: field(cmd, "max_terms")?.map(to_usize),
            max_entries: field(cmd, "max_entries")?.map(to_usize),
        };
        // The caps clamp is folded in once here, at command-parse time,
        // not on every subsequent `add`.
        self.rebuild_effective();
        let report = |v: Option<u64>| v.map_or(Json::Null, Json::from);
        Ok(obj([
            ("ok", Json::from("limits")),
            ("max_steps", report(self.limits.max_steps)),
            ("max_millis", report(self.limits.max_millis)),
            ("max_terms", report(self.limits.max_terms.map(|n| n as u64))),
            (
                "max_entries",
                report(self.limits.max_entries.map(|n| n as u64)),
            ),
            ("transactional", Json::from(!self.limits.is_unset())),
        ]))
    }

    /// The budget for the next `add` — the client's `limits` clamped by
    /// the embedder's caps, plus any cancellation token — or `None` when
    /// nothing bounds the solve.
    fn current_budget(&self) -> Option<Budget> {
        let effective = self.effective;
        if effective.is_unset() && self.cancel.is_none() {
            return None;
        }
        let mut b = Budget::unlimited();
        if let Some(n) = effective.max_steps {
            b = b.with_steps(n);
        }
        if let Some(ms) = effective.max_millis {
            b = b.with_deadline_millis(ms);
        }
        if let Some(n) = effective.max_terms {
            b = b.with_max_terms(n);
        }
        if let Some(n) = effective.max_entries {
            b = b.with_max_entries(n);
        }
        if let Some(clock) = &self.clock {
            b = b.with_clock(Arc::clone(clock));
        }
        if let Some(cancel) = &self.cancel {
            b = b.with_cancel(cancel.clone());
        }
        Some(b)
    }

    fn add(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let lhs_text = cmd
            .get("lhs")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("add: missing `lhs`"))?
            .to_owned();
        let rhs_text = cmd
            .get("rhs")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("add: missing `rhs`"))?
            .to_owned();
        let ann = match cmd.get("ann") {
            None => None,
            Some(word) => {
                let names = word
                    .as_arr()
                    .ok_or_else(|| bad_request("add: `ann` must be an array"))?;
                let mut symbols = Vec::with_capacity(names.len());
                for n in names {
                    let n = n
                        .as_str()
                        .ok_or_else(|| bad_request("add: `ann` entries must be strings"))?;
                    let sym = self.sigma.lookup(n).ok_or_else(|| {
                        BatchError::new("unknown_symbol", format!("unknown symbol `{n}`"))
                    })?;
                    symbols.push(sym);
                }
                Some(self.session.system_mut().algebra_mut().word(&symbols))
            }
        };
        match self.current_budget() {
            None => {
                let lhs = self.parse_expr(&lhs_text)?;
                let rhs = self.parse_expr(&rhs_text)?;
                let result = if self.solve_threads > 1 {
                    self.session.add_bulk(lhs, rhs, ann, self.solve_threads)
                } else {
                    match ann {
                        Some(a) => self.session.add_ann(lhs, rhs, a),
                        None => self.session.add(lhs, rhs),
                    }
                };
                result.map_err(|e| BatchError::new("constraint_rejected", format!("add: {e}")))?;
            }
            Some(budget) => {
                // Transactional: the epoch opens before expression parsing
                // so even variables created on first use roll away, and the
                // session is byte-for-byte as before on any failure.
                self.session.push_epoch();
                let parsed = self
                    .parse_expr(&lhs_text)
                    .and_then(|lhs| Ok((lhs, self.parse_expr(&rhs_text)?)));
                let (lhs, rhs) = match parsed {
                    Ok(pair) => pair,
                    Err(err) => {
                        self.session.pop_epoch();
                        self.prune_names();
                        return Err(err);
                    }
                };
                let outcome = if self.solve_threads > 1 {
                    self.session
                        .add_bulk_bounded(lhs, rhs, ann, &budget, self.solve_threads)
                } else {
                    match ann {
                        Some(a) => self.session.add_ann_bounded(lhs, rhs, a, &budget),
                        None => self.session.add_bounded(lhs, rhs, &budget),
                    }
                };
                match outcome {
                    Err(e) => {
                        self.session.pop_epoch();
                        self.prune_names();
                        return Err(BatchError::new("constraint_rejected", format!("add: {e}")));
                    }
                    Ok(Outcome::Complete) => {
                        self.session.commit_epoch();
                    }
                    Ok(Outcome::Interrupted(reason)) => {
                        self.session.pop_epoch();
                        self.prune_names();
                        return Err(BatchError::new(
                            "budget_exhausted",
                            format!("add interrupted: {reason}; rolled back"),
                        )
                        .with("reason", Json::from(reason.code()))
                        .with("rolled_back", Json::from(true)));
                    }
                }
            }
        }
        Ok(obj([
            ("ok", Json::from("add")),
            (
                "constraints",
                Json::from(self.session.system().num_constraints()),
            ),
            ("consistent", Json::from(self.session.is_consistent())),
        ]))
    }

    fn query(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let kind = cmd
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("query: missing `kind`"))?
            .to_owned();
        let var_name = cmd
            .get("var")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("query: missing `var`"))?;
        let &x = self.vars.get(var_name).ok_or_else(|| {
            BatchError::new("unknown_variable", format!("unknown variable `{var_name}`"))
        })?;
        let target = || -> Result<ConsId, BatchError> {
            let name = cmd
                .get("cons")
                .and_then(Json::as_str)
                .ok_or_else(|| bad_request("query: missing `cons`"))?;
            self.cons.get(name).copied().ok_or_else(|| {
                BatchError::new(
                    "unknown_constructor",
                    format!("unknown constructor `{name}`"),
                )
            })
        };
        let result = match kind.as_str() {
            "occurs" => Json::from(self.session.occurs_accepting(x, target()?)),
            "nonempty" => Json::from(self.session.nonempty(x)),
            "anns" => {
                let anns = self.session.occurrence_annotations(x, target()?);
                self.describe_all(&anns)
            }
            "pn" => {
                let anns = self.session.pn_occurrence_annotations(x, target()?);
                self.describe_all(&anns)
            }
            other => return Err(bad_request(format!("unknown query kind `{other}`"))),
        };
        Ok(obj([
            ("ok", Json::from("query")),
            ("kind", Json::from(kind.as_str())),
            ("var", Json::from(var_name)),
            ("result", result),
        ]))
    }

    fn describe_all(&self, anns: &[rasc_core::algebra::AnnId]) -> Json {
        Json::Arr(
            anns.iter()
                .map(|&a| Json::from(self.session.system().algebra().describe(a).as_str()))
                .collect(),
        )
    }

    /// `{"cmd":"explain","var":…,"cons":…}` — the derivation chain that
    /// put constructor `cons` into `var`'s solution, innermost entry
    /// first. Empty `steps` means the occurrence does not hold.
    fn explain(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let var_name = cmd
            .get("var")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("explain: missing `var`"))?;
        let &x = self.vars.get(var_name).ok_or_else(|| {
            BatchError::new("unknown_variable", format!("unknown variable `{var_name}`"))
        })?;
        let cons_name = cmd
            .get("cons")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("explain: missing `cons`"))?;
        let &c = self.cons.get(cons_name).ok_or_else(|| {
            BatchError::new(
                "unknown_constructor",
                format!("unknown constructor `{cons_name}`"),
            )
        })?;
        let steps: Vec<Json> = self
            .session
            .system()
            .explain(x, c)
            .into_iter()
            .map(|step| {
                obj([
                    ("rule", Json::from(step.rule)),
                    ("constraint", step.constraint.map_or(Json::Null, Json::from)),
                    ("description", Json::from(step.description.as_str())),
                ])
            })
            .collect();
        Ok(obj([
            ("ok", Json::from("explain")),
            ("var", Json::from(var_name)),
            ("cons", Json::from(cons_name)),
            ("holds", Json::from(!steps.is_empty())),
            ("steps", Json::Arr(steps)),
        ]))
    }

    /// Resolves the target file for a `snapshot`/`restore` command: the
    /// client's `path` if allowed, else the engine's configured default.
    fn snapshot_target(&self, cmd: &Json, what: &str) -> Result<PathBuf, BatchError> {
        match cmd.get("path") {
            Some(p) => {
                let p = p
                    .as_str()
                    .ok_or_else(|| bad_request(format!("{what}: `path` must be a string")))?;
                if !self.client_snapshot_paths {
                    return Err(bad_request(format!(
                        "{what}: client-chosen paths are disabled; omit `path` to use the \
                         server's snapshot file"
                    )));
                }
                Ok(PathBuf::from(p))
            }
            None => self.snapshot_path.clone().ok_or_else(|| {
                bad_request(format!("{what}: no `path` given and no default configured"))
            }),
        }
    }

    /// Maps the snapshot error taxonomy onto stable protocol codes: file
    /// system failures are `io`, torn/tampered snapshots are
    /// `snapshot_corrupt`, and precondition violations are `bad_request`.
    fn snapshot_error(err: SnapshotError) -> BatchError {
        let code = match &err {
            SnapshotError::Io(_) => "io",
            SnapshotError::Corrupt { .. } => "snapshot_corrupt",
            SnapshotError::State { .. } => "bad_request",
        };
        BatchError::new(code, err.to_string())
    }

    /// `{"cmd":"snapshot"[,"path":…]}` — atomically persist the solved
    /// form. The response reports the file and its size.
    fn cmd_snapshot(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let path = self.snapshot_target(cmd, "snapshot")?;
        let bytes = self
            .snapshot_to_returning(&path)
            .map_err(Self::snapshot_error)?;
        if let Some(hook) = &self.snapshot_hook {
            (hook.0)(&bytes);
        }
        Ok(obj([
            ("ok", Json::from("snapshot")),
            ("path", Json::from(path.display().to_string().as_str())),
            ("bytes", Json::from(bytes.len())),
        ]))
    }

    /// `{"cmd":"restore"[,"path":…]}` — replace the session with a
    /// snapshotted solved form. On any failure (missing file, corruption,
    /// open epochs) the session is left exactly as it was.
    fn cmd_restore(&mut self, cmd: &Json) -> Result<Json, BatchError> {
        let path = self.snapshot_target(cmd, "restore")?;
        self.restore_from(&path).map_err(Self::snapshot_error)?;
        Ok(obj([
            ("ok", Json::from("restore")),
            ("path", Json::from(path.display().to_string().as_str())),
            (
                "constraints",
                Json::from(self.session.system().num_constraints()),
            ),
            ("vars", Json::from(self.session.stats().vars)),
            ("consistent", Json::from(self.session.is_consistent())),
        ]))
    }

    /// `{"cmd":"stats"}` / `{"cmd":"stats","scope":"session"|"request"}`.
    /// The default `session` scope reports whole-session totals (the
    /// historical shape); `request` reports deltas since the last
    /// [`BatchEngine::begin_request`] boundary.
    fn cmd_stats(&self, cmd: &Json) -> Result<Json, BatchError> {
        match cmd.get("scope") {
            None => Ok(self.stats()),
            Some(scope) => match scope.as_str() {
                Some("session") => Ok(self.stats()),
                Some("request") => {
                    let d = self.request_stats().delta_since(&self.request_base);
                    let mut fields = vec![
                        ("ok", Json::from("stats")),
                        ("scope", Json::from("request")),
                        ("fuel_spent", Json::from(d.fuel_spent)),
                        ("facts_processed", Json::from(d.facts_processed)),
                        ("epoch_depth", Json::from(d.epoch_depth)),
                        ("cache_hits", Json::from(d.cache_hits)),
                        ("cache_misses", Json::from(d.cache_misses)),
                    ];
                    if let Some(id) = self.request_id {
                        fields.push(("req", Json::from(id)));
                    }
                    Ok(obj(fields))
                }
                _ => Err(bad_request(
                    "stats: `scope` must be \"session\" or \"request\"",
                )),
            },
        }
    }

    fn stats(&self) -> Json {
        let s = self.session.stats();
        let c = self.session.cache_stats();
        obj([
            ("ok", Json::from("stats")),
            ("vars", Json::from(s.vars)),
            ("constructors", Json::from(s.constructors)),
            (
                "constraints",
                Json::from(self.session.system().num_constraints()),
            ),
            ("edges", Json::from(s.edges)),
            ("lower_bounds", Json::from(s.lower_bounds)),
            ("upper_bounds", Json::from(s.upper_bounds)),
            (
                "max_lower_bounds_per_var",
                Json::from(s.max_lower_bounds_per_var),
            ),
            (
                "max_upper_bounds_per_var",
                Json::from(s.max_upper_bounds_per_var),
            ),
            ("annotations", Json::from(s.annotations)),
            ("facts_processed", Json::from(s.facts_processed)),
            ("cycles_collapsed", Json::from(s.cycles_collapsed)),
            ("fuel_spent", Json::from(s.fuel_spent)),
            ("interruptions", Json::from(s.interruptions)),
            ("depth_limit_hits", Json::from(s.depth_limit_hits)),
            ("clashes", Json::from(self.session.clashes().len())),
            ("consistent", Json::from(self.session.is_consistent())),
            ("epoch_depth", Json::from(self.session.epoch_depth())),
            ("cache_hits", Json::from(c.hits)),
            ("cache_misses", Json::from(c.misses)),
            ("cache_invalidations", Json::from(c.invalidations)),
        ])
    }

    /// Parses `X`, `c(X,Y)`, or `c^-1(X)`; variables are created on first
    /// use, constructors must be declared.
    fn parse_expr(&mut self, text: &str) -> Result<SetExpr, BatchError> {
        let text = text.trim();
        let Some((head, rest)) = text.split_once('(') else {
            // Bare identifier: a declared constant, or a variable.
            let name = validate_ident(text)?;
            if let Some(&c) = self.cons.get(name) {
                return Ok(SetExpr::cons_vars(c, []));
            }
            return Ok(SetExpr::var(self.var_of(name)));
        };
        let Some(args_text) = rest.strip_suffix(')') else {
            return Err(bad_request(format!("expected `)` at end of `{text}`")));
        };
        if let Some((cons_name, index_text)) = head.split_once("^-") {
            // Projection `c^-i(X)`, 1-based index.
            let cons_name = validate_ident(cons_name.trim())?;
            let &c = self.cons.get(cons_name).ok_or_else(|| {
                BatchError::new(
                    "unknown_constructor",
                    format!("unknown constructor `{cons_name}`"),
                )
            })?;
            let index: usize = index_text
                .trim()
                .parse()
                .map_err(|_| bad_request(format!("bad projection index in `{text}`")))?;
            if index == 0 {
                return Err(bad_request("projection indices are 1-based"));
            }
            let subject = validate_ident(args_text.trim())?;
            let v = self.var_of(subject);
            return Ok(SetExpr::proj(c, index - 1, v));
        }
        let cons_name = validate_ident(head.trim())?;
        let &c = self.cons.get(cons_name).ok_or_else(|| {
            BatchError::new(
                "unknown_constructor",
                format!("unknown constructor `{cons_name}`"),
            )
        })?;
        let mut args = Vec::new();
        if !args_text.trim().is_empty() {
            for part in args_text.split(',') {
                let name = validate_ident(part.trim())?;
                if self.cons.contains_key(name) {
                    return Err(bad_request(format!(
                        "constructor argument `{name}` must be a variable"
                    )));
                }
                args.push(self.var_of(name));
            }
        }
        Ok(SetExpr::cons_vars(c, args))
    }

    fn var_of(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.session.var(name);
        Arc::make_mut(&mut self.vars).insert(name.to_owned(), v);
        v
    }
}

fn validate_ident(text: &str) -> Result<&str, BatchError> {
    let ok = !text.is_empty()
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$');
    if ok {
        Ok(text)
    } else {
        Err(bad_request(format!("bad identifier `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BatchEngine {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let machine = Dfa::one_bit(&sigma, g, k);
        BatchEngine::new(sigma, &machine)
    }

    fn run(e: &mut BatchEngine, line: &str) -> Json {
        Json::parse(&e.handle_line(line).expect("a response")).expect("valid JSON response")
    }

    fn error_code(r: &Json) -> Option<&str> {
        r.get("error")?.get("code")?.as_str()
    }

    #[test]
    fn protocol_session_end_to_end() {
        let mut e = engine();
        assert!(e.handle_line("").is_none());
        assert!(e.handle_line("# comment").is_none());
        let r = run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("declare"));
        run(
            &mut e,
            r#"{"cmd":"declare","cons":"pair","signature":"++"}"#,
        );
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair(X,X)","rhs":"P"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair^-1(P)","rhs":"Y"}"#);
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"anns","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_arr().unwrap().len(), 1);
        let r = run(&mut e, r#"{"cmd":"query","kind":"nonempty","var":"P"}"#);
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn push_pop_restores_results_through_the_protocol() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"declare","cons":"d"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        let r = run(&mut e, r#"{"cmd":"push"}"#);
        assert_eq!(r.get("depth").unwrap().as_u64(), Some(1));
        run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"d","rhs":"Y"}"#);
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        let r = run(&mut e, r#"{"cmd":"pop"}"#);
        assert_eq!(r.get("depth").unwrap().as_u64(), Some(0));
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1));
        // Y was rolled away entirely.
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(error_code(&r), Some("unknown_variable"));
        let r = run(&mut e, r#"{"cmd":"pop"}"#);
        assert_eq!(error_code(&r), Some("no_open_epoch"));
    }

    #[test]
    fn errors_are_structured_in_band_and_nonfatal() {
        let mut e = engine();
        let r = run(&mut e, "not json");
        assert_eq!(error_code(&r), Some("malformed_json"));
        assert!(r
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("JSON"));
        let r = run(&mut e, r#"{"cmd":"add","lhs":"q(X)","rhs":"Y"}"#);
        assert_eq!(error_code(&r), Some("unknown_constructor"));
        let r = run(&mut e, r#"{"cmd":"frobnicate"}"#);
        assert_eq!(error_code(&r), Some("unknown_command"));
        let r = run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"*bad*"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
        let r = run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y","ann":["zz"]}"#);
        assert_eq!(error_code(&r), Some("unknown_symbol"));
        let r = run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("declare"));
        let r = run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        assert_eq!(error_code(&r), Some("already_declared"));
    }

    #[test]
    fn limits_command_reports_and_clears() {
        let mut e = engine();
        let r = run(
            &mut e,
            r#"{"cmd":"limits","max_steps":100,"max_entries":50}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_str(), Some("limits"));
        assert_eq!(r.get("max_steps").unwrap().as_u64(), Some(100));
        assert_eq!(r.get("max_millis"), Some(&Json::Null));
        assert_eq!(r.get("transactional").unwrap().as_bool(), Some(true));
        let r = run(&mut e, r#"{"cmd":"limits"}"#);
        assert_eq!(r.get("transactional").unwrap().as_bool(), Some(false));
        let r = run(&mut e, r#"{"cmd":"limits","max_steps":-3}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
    }

    #[test]
    fn effective_limits_rebuilt_per_limits_change_not_per_add() {
        let mut e = engine();
        e.set_caps(EngineCaps {
            max_steps: Some(1_000_000),
            ..EngineCaps::default()
        });
        let after_caps = e.effective_rebuilds();

        // Hostile churn: a limits command before every single add. The
        // clamp must be folded once per `limits` line, never per `add` —
        // `add` only reads the cached `effective`.
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        for i in 0..32 {
            let r = run(
                &mut e,
                &format!(r#"{{"cmd":"limits","max_steps":{}}}"#, 1000 + i),
            );
            assert_eq!(r.get("ok").unwrap().as_str(), Some("limits"));
            let r = run(
                &mut e,
                &format!(r#"{{"cmd":"add","lhs":"c","rhs":"V{i}"}}"#),
            );
            assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        }
        assert_eq!(
            e.effective_rebuilds() - after_caps,
            32,
            "effective clamp must be rebuilt exactly once per limits command"
        );

        // A run of adds with no intervening limits change rebuilds nothing.
        let before = e.effective_rebuilds();
        for i in 32..64 {
            let r = run(
                &mut e,
                &format!(r#"{{"cmd":"add","lhs":"c","rhs":"V{i}"}}"#),
            );
            assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        }
        assert_eq!(
            e.effective_rebuilds(),
            before,
            "a bounded add must not re-derive the effective clamp"
        );
    }

    #[test]
    fn budget_exhausted_add_rolls_back_and_stream_survives() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"V0","ann":["g"]}"#);
        // A chain long enough that zero solver steps cannot finish it.
        for i in 0..8 {
            let line = format!(r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{}"}}"#, i + 1);
            run(&mut e, &line);
        }
        let before = run(&mut e, r#"{"cmd":"stats"}"#);

        run(&mut e, r#"{"cmd":"limits","max_steps":1}"#);
        let r = run(&mut e, r#"{"cmd":"add","lhs":"V8","rhs":"W"}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        let err = r.get("error").unwrap();
        assert_eq!(err.get("reason").unwrap().as_str(), Some("steps"));
        assert_eq!(err.get("rolled_back").unwrap().as_bool(), Some(true));

        // Rolled back: stats match, the first-use variable `W` is gone.
        run(&mut e, r#"{"cmd":"limits"}"#);
        let after = run(&mut e, r#"{"cmd":"stats"}"#);
        for key in ["vars", "edges", "lower_bounds", "constraints"] {
            assert_eq!(after.get(key), before.get(key), "{key} changed");
        }
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"W","cons":"c"}"#,
        );
        assert_eq!(error_code(&r), Some("unknown_variable"));

        // The same add under no limits completes.
        let r = run(&mut e, r#"{"cmd":"add","lhs":"V8","rhs":"W"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"W","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn engine_caps_clamp_client_limits() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"V0","ann":["g"]}"#);
        for i in 0..8 {
            let line = format!(r#"{{"cmd":"add","lhs":"V{i}","rhs":"V{}"}}"#, i + 1);
            run(&mut e, &line);
        }
        // A server-wide cap of one step bounds the add even though the
        // client asked for a generous budget of its own.
        e.set_caps(EngineCaps {
            max_steps: Some(1),
            ..EngineCaps::default()
        });
        run(&mut e, r#"{"cmd":"limits","max_steps":1000000}"#);
        let r = run(&mut e, r#"{"cmd":"add","lhs":"V8","rhs":"W"}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        let err = r.get("error").unwrap();
        assert_eq!(err.get("rolled_back").unwrap().as_bool(), Some(true));
        // Clearing the client limits does not lift the cap either.
        run(&mut e, r#"{"cmd":"limits"}"#);
        let r = run(&mut e, r#"{"cmd":"add","lhs":"V8","rhs":"W"}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        // Lifting the cap restores unbounded adds.
        e.set_caps(EngineCaps::unlimited());
        assert!(EngineCaps::unlimited().is_unset());
        let r = run(&mut e, r#"{"cmd":"add","lhs":"V8","rhs":"W"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
    }

    #[test]
    fn cancel_token_interrupts_and_rolls_back() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        let token = CancelToken::new();
        e.set_cancel(token.clone());
        // An uncancelled token leaves adds working (transactionally).
        let r = run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        let before = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(before.get("epoch_depth").unwrap().as_u64(), Some(0));
        // Once cancelled, the next add is interrupted and rolled back.
        token.cancel();
        let r = run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        let err = r.get("error").unwrap();
        assert_eq!(err.get("reason").unwrap().as_str(), Some("cancelled"));
        let after = run(&mut e, r#"{"cmd":"stats"}"#);
        for key in ["vars", "edges", "constraints"] {
            assert_eq!(after.get(key), before.get(key), "{key} changed");
        }
    }

    #[test]
    fn explain_returns_a_derivation_chain() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(
            &mut e,
            r#"{"cmd":"declare","cons":"pair","signature":"++"}"#,
        );
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair(X,X)","rhs":"P"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair^-1(P)","rhs":"Y"}"#);
        let r = run(&mut e, r#"{"cmd":"explain","var":"Y","cons":"c"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("explain"));
        assert_eq!(r.get("holds").unwrap().as_bool(), Some(true));
        let steps = r.get("steps").unwrap().as_arr().unwrap();
        assert!(!steps.is_empty());
        // The chain bottoms out at a surface constraint.
        assert!(steps
            .iter()
            .any(|s| s.get("constraint").is_some_and(|c| c.as_u64().is_some())));
        // An occurrence that does not hold explains to an empty chain.
        let r = run(&mut e, r#"{"cmd":"explain","var":"P","cons":"c"}"#);
        assert_eq!(r.get("holds").unwrap().as_bool(), Some(false));
        assert!(r.get("steps").unwrap().as_arr().unwrap().is_empty());
        // Unknown names are structured in-band errors.
        let r = run(&mut e, r#"{"cmd":"explain","var":"Zz","cons":"c"}"#);
        assert_eq!(error_code(&r), Some("unknown_variable"));
        let r = run(&mut e, r#"{"cmd":"explain","var":"Y","cons":"qq"}"#);
        assert_eq!(error_code(&r), Some("unknown_constructor"));
        let r = run(&mut e, r#"{"cmd":"explain","var":"Y"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
    }

    #[test]
    fn stats_request_scope_reports_deltas_and_rejects_bad_scopes() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"limits","max_steps":100000}"#);
        e.begin_request(Some(7));
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        let r = run(&mut e, r#"{"cmd":"stats","scope":"request"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("stats"));
        assert_eq!(r.get("scope").unwrap().as_str(), Some("request"));
        assert_eq!(r.get("req").unwrap().as_u64(), Some(7));
        assert!(r.get("fuel_spent").unwrap().as_u64().unwrap() > 0);
        // A fresh boundary zeroes the deltas.
        e.begin_request(Some(8));
        let r = run(&mut e, r#"{"cmd":"stats","scope":"request"}"#);
        assert_eq!(r.get("fuel_spent").unwrap().as_u64(), Some(0));
        // `session` scope keeps the historical shape; totals persist.
        let r = run(&mut e, r#"{"cmd":"stats","scope":"session"}"#);
        assert!(r.get("fuel_spent").unwrap().as_u64().unwrap() > 0);
        assert!(r.get("vars").is_some());
        // Unknown or non-string scopes are rejected in-band.
        let r = run(&mut e, r#"{"cmd":"stats","scope":"bogus"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
        let r = run(&mut e, r#"{"cmd":"stats","scope":3}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
    }

    #[test]
    fn error_responses_carry_the_request_id_when_set() {
        let mut e = engine();
        let r = run(&mut e, r#"{"cmd":"nope"}"#);
        assert!(r.get("req").is_none(), "no id set: no req field");
        e.begin_request(Some(42));
        let r = run(&mut e, r#"{"cmd":"nope"}"#);
        assert_eq!(error_code(&r), Some("unknown_command"));
        assert_eq!(r.get("req").unwrap().as_u64(), Some(42));
        // Success responses stay unchanged.
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert!(r.get("req").is_none());
        e.begin_request(None);
        let r = run(&mut e, r#"{"cmd":"nope"}"#);
        assert!(r.get("req").is_none(), "cleared id: no req field");
    }

    #[test]
    fn request_stats_deltas_saturate_across_rollback() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"limits","max_steps":100000}"#);
        run(&mut e, r#"{"cmd":"push"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        // Boundary taken *after* the epoch's work…
        e.begin_request(None);
        let base_fuel = e.request_stats().fuel_spent;
        assert!(base_fuel > 0);
        // …then the epoch rolls back, moving fuel_spent backwards.
        run(&mut e, r#"{"cmd":"pop"}"#);
        let d = e.request_stats().delta_since(&e.request_base);
        assert_eq!(d.fuel_spent, 0, "saturates instead of underflowing");
        assert_eq!(d.epoch_depth, 0);
    }

    #[test]
    fn stats_reports_budget_and_bound_counters() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        for key in ["fuel_spent", "interruptions", "depth_limit_hits"] {
            assert_eq!(r.get(key).unwrap().as_u64(), Some(0), "{key} not zero");
        }
        assert_eq!(r.get("constructors").unwrap().as_u64(), Some(1));
        // A committed bounded add leaves its fuel charge visible.
        run(&mut e, r#"{"cmd":"limits","max_steps":100000}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        run(&mut e, r#"{"cmd":"limits"}"#);
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert!(r.get("fuel_spent").unwrap().as_u64().unwrap() > 0);
        assert!(r.get("annotations").unwrap().as_u64().unwrap() > 0);
        assert!(r.get("max_lower_bounds_per_var").unwrap().as_u64().unwrap() > 0);
        assert!(r.get("max_upper_bounds_per_var").is_some());
    }

    #[test]
    fn limits_min_with_covers_every_edge() {
        let unset = Limits::default();
        // all-None on both sides stays all-None.
        assert!(unset.min_with(&unset).is_unset());
        let tight = Limits {
            max_steps: Some(1),
            max_millis: Some(2),
            max_terms: Some(3),
            max_entries: Some(4),
        };
        // An unset side imposes nothing, in either direction.
        for combined in [unset.min_with(&tight), tight.min_with(&unset)] {
            assert_eq!(combined.max_steps, Some(1));
            assert_eq!(combined.max_millis, Some(2));
            assert_eq!(combined.max_terms, Some(3));
            assert_eq!(combined.max_entries, Some(4));
            assert!(!combined.is_unset());
        }
        // Element-wise minimum on every field, whichever side is tighter.
        let looser = Limits {
            max_steps: Some(100),
            max_millis: Some(1), // tighter than `tight` on this axis only
            max_terms: None,
            max_entries: Some(400),
        };
        let combined = tight.min_with(&looser);
        assert_eq!(combined.max_steps, Some(1));
        assert_eq!(combined.max_millis, Some(1));
        assert_eq!(combined.max_terms, Some(3));
        assert_eq!(combined.max_entries, Some(4));
        assert_eq!(
            looser.min_with(&tight).max_millis,
            Some(1),
            "min_with must be symmetric"
        );
        // Zero is a valid (maximally tight) cap, not an unset marker.
        let zero = Limits {
            max_steps: Some(0),
            ..Limits::default()
        };
        assert!(!zero.is_unset());
        assert_eq!(tight.min_with(&zero).max_steps, Some(0));
    }

    #[test]
    fn zero_step_cap_blocks_every_add_until_lifted() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        e.set_caps(EngineCaps {
            max_steps: Some(0),
            ..EngineCaps::default()
        });
        // A client asking for *more* budget cannot escape the zero cap.
        run(&mut e, r#"{"cmd":"limits","max_steps":5}"#);
        let r = run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        e.set_caps(EngineCaps::unlimited());
        let r = run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
    }

    #[test]
    fn caps_and_limits_tighten_per_axis_not_wholesale() {
        // The server caps terms; the client caps steps; the effective
        // budget honors both axes at once.
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        e.set_caps(EngineCaps {
            max_terms: Some(1),
            ..EngineCaps::default()
        });
        run(&mut e, r#"{"cmd":"limits","max_steps":100000}"#);
        // Exceeding the *server's* term cap trips even though the client
        // never mentioned terms (the add interns a source and a variable).
        let r = run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        assert_eq!(error_code(&r), Some("budget_exhausted"));
        assert_eq!(
            r.get("error").unwrap().get("reason").unwrap().as_str(),
            Some("memory"),
            "term-cap interrupts report the memory reason code"
        );
    }

    #[test]
    fn snapshot_and_restore_commands_round_trip_in_band() {
        let dir = std::env::temp_dir().join(format!("rasc-batch-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inband.snap");
        let path_json = Json::Str(path.display().to_string()).render();

        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        let r = run(
            &mut e,
            &format!(r#"{{"cmd":"snapshot","path":{path_json}}}"#),
        );
        assert_eq!(r.get("ok").unwrap().as_str(), Some("snapshot"));
        assert!(r.get("bytes").unwrap().as_u64().unwrap() > 0);

        // Diverge, then restore back to the snapshotted state.
        run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        let r = run(
            &mut e,
            &format!(r#"{{"cmd":"restore","path":{path_json}}}"#),
        );
        assert_eq!(r.get("ok").unwrap().as_str(), Some("restore"));
        assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(error_code(&r), Some("unknown_variable"));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"X","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_command_errors_are_typed_and_stable() {
        let dir = std::env::temp_dir().join(format!("rasc-batch-snaperr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut e = engine();
        // No path and no default: bad_request.
        let r = run(&mut e, r#"{"cmd":"snapshot"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
        let r = run(&mut e, r#"{"cmd":"restore"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
        // Missing file: io.
        let absent = Json::Str(dir.join("absent.snap").display().to_string()).render();
        let r = run(&mut e, &format!(r#"{{"cmd":"restore","path":{absent}}}"#));
        assert_eq!(error_code(&r), Some("io"));
        // Torn file: snapshot_corrupt — and the session survives.
        let torn = dir.join("torn.snap");
        let full = e.snapshot_bytes().unwrap();
        std::fs::write(&torn, &full[..full.len() - 3]).unwrap();
        let torn_json = Json::Str(torn.display().to_string()).render();
        let r = run(
            &mut e,
            &format!(r#"{{"cmd":"restore","path":{torn_json}}}"#),
        );
        assert_eq!(error_code(&r), Some("snapshot_corrupt"));
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("stats"));
        // Client paths can be disabled; the default path still works and
        // the snapshot hook observes the bytes.
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen_in_hook = std::sync::Arc::clone(&seen);
        e.set_client_snapshot_paths(false);
        e.set_snapshot_path(dir.join("default.snap"));
        e.set_snapshot_hook(move |bytes| {
            seen_in_hook.store(bytes.len() as u64, std::sync::atomic::Ordering::SeqCst);
        });
        let elsewhere = Json::Str(dir.join("elsewhere.snap").display().to_string()).render();
        let r = run(
            &mut e,
            &format!(r#"{{"cmd":"snapshot","path":{elsewhere}}}"#),
        );
        assert_eq!(error_code(&r), Some("bad_request"));
        let r = run(&mut e, r#"{"cmd":"snapshot"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("snapshot"));
        assert_eq!(
            r.get("bytes").unwrap().as_u64(),
            Some(seen.load(std::sync::atomic::Ordering::SeqCst))
        );
        // Restoring with an open epoch is refused as bad_request.
        run(&mut e, r#"{"cmd":"push"}"#);
        let r = run(&mut e, r#"{"cmd":"restore"}"#);
        assert_eq!(error_code(&r), Some("bad_request"));
        run(&mut e, r#"{"cmd":"pop"}"#);
        let r = run(&mut e, r#"{"cmd":"restore"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("restore"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generous_budget_commits_transactionally() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"limits","max_steps":100000}"#);
        let r = run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("add"));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"X","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        // No epoch leaked by the internal transaction.
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("epoch_depth").unwrap().as_u64(), Some(0));
        // And explicit user epochs still compose with budgets.
        run(&mut e, r#"{"cmd":"push"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("epoch_depth").unwrap().as_u64(), Some(1));
        let r = run(&mut e, r#"{"cmd":"pop"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("pop"));
    }
}
