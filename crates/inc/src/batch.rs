//! The batch query front-end: a JSON-lines command protocol over a
//! [`Session`] — the seed of the serving story.
//!
//! Each input line is one JSON object; each produces exactly one JSON
//! response line. Blank lines and `#` comments are skipped. Errors are
//! reported in-band (`{"error": …}`) and do not abort the stream.
//!
//! ```text
//! {"cmd":"declare","cons":"pair","signature":"++"}
//! {"cmd":"add","lhs":"pair(X,Y)","rhs":"Z","ann":["g"]}
//! {"cmd":"push"}
//! {"cmd":"query","kind":"occurs","var":"Z","cons":"c"}
//! {"cmd":"pop"}
//! {"cmd":"stats"}
//! ```
//!
//! * `declare` — declare constructor `cons` with one `+` (covariant) or
//!   `-` (contravariant) per argument; omitted `signature` declares a
//!   constant.
//! * `add` — add `lhs ⊆ rhs` and re-solve incrementally. Expressions are
//!   `X`, `c(X,Y)`, or `c^-1(X)` (1-based projection); variables are
//!   created on first use, constructors must be declared. `ann` is a word
//!   over the property machine's alphabet (omitted = ε).
//! * `push` / `pop` — open / roll back an epoch.
//! * `query` — `kind` is `occurs` (accepting occurrence), `anns`
//!   (occurrence annotation classes), `pn` (partially matched
//!   reachability), or `nonempty`.
//! * `stats` — solver statistics plus cache counters.

use std::collections::HashMap;

use rasc_automata::{Alphabet, Dfa};
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::{ConsId, SetExpr, SolverConfig, VarId, Variance};

use crate::json::{obj, Json};
use crate::session::Session;

/// A stateful batch-protocol interpreter over one [`Session`].
#[derive(Debug)]
pub struct BatchEngine {
    session: Session<MonoidAlgebra>,
    sigma: Alphabet,
    cons: HashMap<String, ConsId>,
    vars: HashMap<String, VarId>,
}

impl BatchEngine {
    /// An engine whose annotations range over `machine`'s transition
    /// monoid, with symbols named by `sigma`.
    pub fn new(sigma: Alphabet, machine: &Dfa) -> BatchEngine {
        Self::with_config(sigma, machine, SolverConfig::default())
    }

    /// An engine with explicit solver configuration.
    pub fn with_config(sigma: Alphabet, machine: &Dfa, config: SolverConfig) -> BatchEngine {
        BatchEngine {
            session: Session::with_config(MonoidAlgebra::new(machine), config),
            sigma,
            cons: HashMap::new(),
            vars: HashMap::new(),
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session<MonoidAlgebra> {
        &self.session
    }

    /// Handles one input line; `None` for blank/comment lines, otherwise
    /// exactly one JSON response line.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        let response = match Json::parse(trimmed) {
            Ok(cmd) => self
                .dispatch(&cmd)
                .unwrap_or_else(|msg| obj([("error", Json::from(msg.as_str()))])),
            Err(msg) => obj([(
                "error",
                Json::from(format!("malformed JSON: {msg}").as_str()),
            )]),
        };
        Some(response.render())
    }

    fn dispatch(&mut self, cmd: &Json) -> Result<Json, String> {
        let name = cmd
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd` field")?;
        match name {
            "declare" => self.declare(cmd),
            "add" => self.add(cmd),
            "push" => {
                self.session.push_epoch();
                Ok(obj([
                    ("ok", Json::from("push")),
                    ("depth", Json::from(self.session.epoch_depth())),
                ]))
            }
            "pop" => {
                if !self.session.pop_epoch() {
                    return Err("no open epoch".to_owned());
                }
                // Names bound mid-epoch now refer to rolled-away ids.
                let stats = self.session.stats();
                self.vars.retain(|_, v| v.index() < stats.vars);
                self.cons.retain(|_, c| c.index() < stats.constructors);
                Ok(obj([
                    ("ok", Json::from("pop")),
                    ("depth", Json::from(self.session.epoch_depth())),
                ]))
            }
            "query" => self.query(cmd),
            "stats" => Ok(self.stats()),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    fn declare(&mut self, cmd: &Json) -> Result<Json, String> {
        let name = cmd
            .get("cons")
            .and_then(Json::as_str)
            .ok_or("declare: missing `cons`")?;
        if self.cons.contains_key(name) {
            return Err(format!("constructor `{name}` already declared"));
        }
        if self.vars.contains_key(name) {
            return Err(format!("`{name}` is already a variable"));
        }
        let signature: Vec<Variance> = match cmd.get("signature").and_then(Json::as_str) {
            None => Vec::new(),
            Some(s) => s
                .chars()
                .map(|c| match c {
                    '+' => Ok(Variance::Covariant),
                    '-' => Ok(Variance::Contravariant),
                    other => Err(format!("declare: bad variance `{other}` (want + or -)")),
                })
                .collect::<Result<_, _>>()?,
        };
        let id = self.session.constructor(name, &signature);
        self.cons.insert(name.to_owned(), id);
        Ok(obj([
            ("ok", Json::from("declare")),
            ("cons", Json::from(name)),
            ("arity", Json::from(signature.len())),
        ]))
    }

    fn add(&mut self, cmd: &Json) -> Result<Json, String> {
        let lhs_text = cmd
            .get("lhs")
            .and_then(Json::as_str)
            .ok_or("add: missing `lhs`")?
            .to_owned();
        let rhs_text = cmd
            .get("rhs")
            .and_then(Json::as_str)
            .ok_or("add: missing `rhs`")?
            .to_owned();
        let ann = match cmd.get("ann") {
            None => None,
            Some(word) => {
                let names = word.as_arr().ok_or("add: `ann` must be an array")?;
                let mut symbols = Vec::with_capacity(names.len());
                for n in names {
                    let n = n.as_str().ok_or("add: `ann` entries must be strings")?;
                    let sym = self
                        .sigma
                        .lookup(n)
                        .ok_or_else(|| format!("unknown symbol `{n}`"))?;
                    symbols.push(sym);
                }
                Some(self.session.system_mut().algebra_mut().word(&symbols))
            }
        };
        let lhs = self.parse_expr(&lhs_text)?;
        let rhs = self.parse_expr(&rhs_text)?;
        let result = match ann {
            Some(a) => self.session.add_ann(lhs, rhs, a),
            None => self.session.add(lhs, rhs),
        };
        result.map_err(|e| format!("add: {e}"))?;
        Ok(obj([
            ("ok", Json::from("add")),
            (
                "constraints",
                Json::from(self.session.system().constraints().len()),
            ),
            ("consistent", Json::from(self.session.is_consistent())),
        ]))
    }

    fn query(&mut self, cmd: &Json) -> Result<Json, String> {
        let kind = cmd
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("query: missing `kind`")?
            .to_owned();
        let var_name = cmd
            .get("var")
            .and_then(Json::as_str)
            .ok_or("query: missing `var`")?;
        let &x = self
            .vars
            .get(var_name)
            .ok_or_else(|| format!("unknown variable `{var_name}`"))?;
        let target = || -> Result<ConsId, String> {
            let name = cmd
                .get("cons")
                .and_then(Json::as_str)
                .ok_or("query: missing `cons`")?;
            self.cons
                .get(name)
                .copied()
                .ok_or_else(|| format!("unknown constructor `{name}`"))
        };
        let result = match kind.as_str() {
            "occurs" => Json::from(self.session.occurs_accepting(x, target()?)),
            "nonempty" => Json::from(self.session.nonempty(x)),
            "anns" => {
                let anns = self.session.occurrence_annotations(x, target()?);
                self.describe_all(&anns)
            }
            "pn" => {
                let anns = self.session.pn_occurrence_annotations(x, target()?);
                self.describe_all(&anns)
            }
            other => return Err(format!("unknown query kind `{other}`")),
        };
        Ok(obj([
            ("ok", Json::from("query")),
            ("kind", Json::from(kind.as_str())),
            ("var", Json::from(var_name)),
            ("result", result),
        ]))
    }

    fn describe_all(&self, anns: &[rasc_core::algebra::AnnId]) -> Json {
        Json::Arr(
            anns.iter()
                .map(|&a| Json::from(self.session.system().algebra().describe(a).as_str()))
                .collect(),
        )
    }

    fn stats(&self) -> Json {
        let s = self.session.stats();
        let c = self.session.cache_stats();
        obj([
            ("ok", Json::from("stats")),
            ("vars", Json::from(s.vars)),
            (
                "constraints",
                Json::from(self.session.system().constraints().len()),
            ),
            ("edges", Json::from(s.edges)),
            ("lower_bounds", Json::from(s.lower_bounds)),
            ("upper_bounds", Json::from(s.upper_bounds)),
            ("facts_processed", Json::from(s.facts_processed)),
            ("cycles_collapsed", Json::from(s.cycles_collapsed)),
            ("clashes", Json::from(self.session.clashes().len())),
            ("consistent", Json::from(self.session.is_consistent())),
            ("epoch_depth", Json::from(self.session.epoch_depth())),
            ("cache_hits", Json::from(c.hits)),
            ("cache_misses", Json::from(c.misses)),
            ("cache_invalidations", Json::from(c.invalidations)),
        ])
    }

    /// Parses `X`, `c(X,Y)`, or `c^-1(X)`; variables are created on first
    /// use, constructors must be declared.
    fn parse_expr(&mut self, text: &str) -> Result<SetExpr, String> {
        let text = text.trim();
        let Some((head, rest)) = text.split_once('(') else {
            // Bare identifier: a declared constant, or a variable.
            let name = validate_ident(text)?;
            if let Some(&c) = self.cons.get(name) {
                return Ok(SetExpr::cons_vars(c, []));
            }
            return Ok(SetExpr::var(self.var_of(name)));
        };
        let Some(args_text) = rest.strip_suffix(')') else {
            return Err(format!("expected `)` at end of `{text}`"));
        };
        if let Some((cons_name, index_text)) = head.split_once("^-") {
            // Projection `c^-i(X)`, 1-based index.
            let cons_name = validate_ident(cons_name.trim())?;
            let &c = self
                .cons
                .get(cons_name)
                .ok_or_else(|| format!("unknown constructor `{cons_name}`"))?;
            let index: usize = index_text
                .trim()
                .parse()
                .map_err(|_| format!("bad projection index in `{text}`"))?;
            if index == 0 {
                return Err("projection indices are 1-based".to_owned());
            }
            let subject = validate_ident(args_text.trim())?;
            let v = self.var_of(subject);
            return Ok(SetExpr::proj(c, index - 1, v));
        }
        let cons_name = validate_ident(head.trim())?;
        let &c = self
            .cons
            .get(cons_name)
            .ok_or_else(|| format!("unknown constructor `{cons_name}`"))?;
        let mut args = Vec::new();
        if !args_text.trim().is_empty() {
            for part in args_text.split(',') {
                let name = validate_ident(part.trim())?;
                if self.cons.contains_key(name) {
                    return Err(format!("constructor argument `{name}` must be a variable"));
                }
                args.push(self.var_of(name));
            }
        }
        Ok(SetExpr::cons_vars(c, args))
    }

    fn var_of(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.session.var(name);
        self.vars.insert(name.to_owned(), v);
        v
    }
}

fn validate_ident(text: &str) -> Result<&str, String> {
    let ok = !text.is_empty()
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$');
    if ok {
        Ok(text)
    } else {
        Err(format!("bad identifier `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> BatchEngine {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let machine = Dfa::one_bit(&sigma, g, k);
        BatchEngine::new(sigma, &machine)
    }

    fn run(e: &mut BatchEngine, line: &str) -> Json {
        Json::parse(&e.handle_line(line).expect("a response")).expect("valid JSON response")
    }

    #[test]
    fn protocol_session_end_to_end() {
        let mut e = engine();
        assert!(e.handle_line("").is_none());
        assert!(e.handle_line("# comment").is_none());
        let r = run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("declare"));
        run(
            &mut e,
            r#"{"cmd":"declare","cons":"pair","signature":"++"}"#,
        );
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair(X,X)","rhs":"P"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"pair^-1(P)","rhs":"Y"}"#);
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"anns","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_arr().unwrap().len(), 1);
        let r = run(&mut e, r#"{"cmd":"query","kind":"nonempty","var":"P"}"#);
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn push_pop_restores_results_through_the_protocol() {
        let mut e = engine();
        run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        run(&mut e, r#"{"cmd":"declare","cons":"d"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"c","rhs":"X","ann":["g"]}"#);
        let r = run(&mut e, r#"{"cmd":"push"}"#);
        assert_eq!(r.get("depth").unwrap().as_u64(), Some(1));
        run(&mut e, r#"{"cmd":"add","lhs":"X","rhs":"Y"}"#);
        run(&mut e, r#"{"cmd":"add","lhs":"d","rhs":"Y"}"#);
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert_eq!(r.get("result").unwrap().as_bool(), Some(true));
        let r = run(&mut e, r#"{"cmd":"pop"}"#);
        assert_eq!(r.get("depth").unwrap().as_u64(), Some(0));
        let r = run(&mut e, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("constraints").unwrap().as_u64(), Some(1));
        // Y was rolled away entirely.
        let r = run(
            &mut e,
            r#"{"cmd":"query","kind":"occurs","var":"Y","cons":"c"}"#,
        );
        assert!(r.get("error").is_some());
        let r = run(&mut e, r#"{"cmd":"pop"}"#);
        assert!(r.get("error").is_some());
    }

    #[test]
    fn errors_are_in_band_and_nonfatal() {
        let mut e = engine();
        let r = run(&mut e, "not json");
        assert!(r.get("error").unwrap().as_str().unwrap().contains("JSON"));
        let r = run(&mut e, r#"{"cmd":"add","lhs":"q(X)","rhs":"Y"}"#);
        assert!(r.get("error").is_some(), "undeclared constructor");
        let r = run(&mut e, r#"{"cmd":"frobnicate"}"#);
        assert!(r.get("error").is_some());
        // The engine still works after errors.
        let r = run(&mut e, r#"{"cmd":"declare","cons":"c"}"#);
        assert_eq!(r.get("ok").unwrap().as_str(), Some("declare"));
    }
}
