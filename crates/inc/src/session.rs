//! The incremental session layer over the bidirectional solver.
//!
//! A [`Session`] owns a [`System`] and adds the three capabilities the
//! one-shot solver lacks for serving workloads:
//!
//! * **Incremental constraint addition** — [`Session::add`] enqueues only
//!   the new constraint's sources/sinks and re-drains the existing
//!   worklist fixpoint, so the cost is proportional to the delta, not to
//!   the whole system (the separate/online analysis capability of §5.1).
//! * **Epoch-based rollback** — [`Session::push_epoch`] /
//!   [`Session::pop_epoch`] journal and undo exactly the delta, in the
//!   style of BANSHEE's backtracking (§8).
//! * **A stamped query cache** — query results are memoized together with
//!   the mutation stamps of every variable they depended on; later
//!   increments invalidate only results whose dependency stamps moved.

use std::collections::{HashMap, HashSet};

use rasc_core::algebra::{Algebra, AnnId};
use rasc_core::{
    BaseSystem, Budget, Clash, ConsId, Outcome, Result, SetExpr, SnapshotError, SolverConfig,
    SolverStats, System, VarId, Variance,
};

/// Hit/miss counters for the session's query cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache lookups answered without recomputation.
    pub hits: u64,
    /// Lookups that computed (and stored) a fresh result.
    pub misses: u64,
    /// Stored results discarded because a dependency stamp moved.
    pub invalidations: u64,
}

/// What a cached result depended on: either an explicit set of variables
/// (with the stamps they had when the result was computed), or — for
/// whole-system queries — the global mutation counter.
#[derive(Debug, Clone)]
enum Stamp {
    Vars(Vec<(VarId, u64)>),
    Global(u64),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Anns(Vec<AnnId>),
    Bool(bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Occurrence(VarId, ConsId),
    PnOccurrence(VarId, ConsId),
    Nonempty(VarId),
}

#[derive(Debug, Clone)]
struct Entry {
    stamp: Stamp,
    value: Value,
}

/// An incremental solving session: a [`System`] plus rollback epochs and
/// a generation-stamped query cache. See the module docs.
#[derive(Debug)]
pub struct Session<A: Algebra> {
    sys: System<A>,
    cache: HashMap<Key, Entry>,
    stats: CacheStats,
}

impl<A: Algebra> Session<A> {
    /// A session over an empty system with the default solver
    /// configuration.
    pub fn new(algebra: A) -> Session<A> {
        Self::with_config(algebra, SolverConfig::default())
    }

    /// A session with explicit solver configuration.
    pub fn with_config(algebra: A, config: SolverConfig) -> Session<A> {
        Session {
            sys: System::with_config(algebra, config),
            cache: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Wraps an existing (possibly already solved) system.
    pub fn from_system(mut sys: System<A>) -> Session<A> {
        sys.solve();
        Session {
            sys,
            cache: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// A session forked copy-on-write from a shared frozen base (see
    /// [`System::fork`]): the solved form is shared by `Arc`, only deltas
    /// made through this session allocate, and every query — including
    /// stats and provenance — answers identically to a session restored
    /// from the base's snapshot. Near-constant time; no re-solve.
    pub fn fork_from(base: &BaseSystem<A>) -> Session<A>
    where
        A: Clone,
    {
        Session {
            sys: System::fork(base),
            cache: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Freezes this session's solved form into a shared fork base (see
    /// [`System::into_base`]). Fails with a state error while facts are
    /// pending or an epoch is open. The query cache is dropped — forks
    /// start cold, exactly like restored sessions.
    pub fn into_base(self) -> std::result::Result<BaseSystem<A>, SnapshotError> {
        self.sys.into_base()
    }

    /// The underlying solved system (read-only).
    pub fn system(&self) -> &System<A> {
        &self.sys
    }

    /// The underlying system, mutable. Stamp validation keeps the cache
    /// sound across direct mutations, but prefer the session methods.
    pub fn system_mut(&mut self) -> &mut System<A> {
        &mut self.sys
    }

    /// Creates a fresh set variable.
    pub fn var(&mut self, name: &str) -> VarId {
        self.sys.var(name)
    }

    /// Declares a constructor.
    pub fn constructor(&mut self, name: &str, signature: &[Variance]) -> ConsId {
        self.sys.constructor(name, signature)
    }

    /// Adds `lhs ⊆ rhs` and immediately re-drains the worklist: only the
    /// consequences of the new constraint are propagated.
    ///
    /// # Errors
    ///
    /// Same as [`System::add`]; on error the system is unchanged.
    pub fn add(&mut self, lhs: SetExpr, rhs: SetExpr) -> Result<()> {
        self.sys.add(lhs, rhs)?;
        self.sys.solve();
        Ok(())
    }

    /// Adds the annotated constraint `lhs ⊆^ann rhs` incrementally.
    ///
    /// # Errors
    ///
    /// Same as [`System::add_ann`]; on error the system is unchanged.
    pub fn add_ann(&mut self, lhs: SetExpr, rhs: SetExpr, ann: AnnId) -> Result<()> {
        self.sys.add_ann(lhs, rhs, ann)?;
        self.sys.solve();
        Ok(())
    }

    /// Adds `lhs ⊆ rhs` and re-drains the worklist under `budget`.
    ///
    /// On [`Outcome::Interrupted`] the pending worklist is kept:
    /// [`Session::resume`] continues the drain (converging to the same
    /// fixpoint), or — if an epoch is open — [`Session::pop_epoch`]
    /// discards the partial work. Query results are only meaningful at a
    /// fixpoint, so do one or the other before querying.
    ///
    /// # Errors
    ///
    /// Same as [`System::add`]; on error the system is unchanged.
    pub fn add_bounded(&mut self, lhs: SetExpr, rhs: SetExpr, budget: &Budget) -> Result<Outcome> {
        self.sys.add(lhs, rhs)?;
        Ok(self.sys.solve_bounded(budget))
    }

    /// Annotated variant of [`Session::add_bounded`].
    ///
    /// # Errors
    ///
    /// Same as [`System::add_ann`]; on error the system is unchanged.
    pub fn add_ann_bounded(
        &mut self,
        lhs: SetExpr,
        rhs: SetExpr,
        ann: AnnId,
        budget: &Budget,
    ) -> Result<Outcome> {
        self.sys.add_ann(lhs, rhs, ann)?;
        Ok(self.sys.solve_bounded(budget))
    }

    /// Re-drains a previously interrupted solve under a fresh budget.
    /// Closure is monotone, so however many times a drain is interrupted
    /// and resumed, it converges to exactly the fixpoint an uninterrupted
    /// solve would have reached.
    pub fn resume(&mut self, budget: &Budget) -> Outcome {
        self.sys.solve_bounded(budget)
    }

    /// Number of worklist facts pending after an interrupted solve.
    pub fn pending_facts(&self) -> usize {
        self.sys.pending_facts()
    }

    /// *Transactionally* adds `lhs ⊆^ann rhs` (ε when `ann` is `None`)
    /// under `budget`: either the constraint is added and fully solved
    /// (`Ok(Outcome::Complete)`), or the session is rolled back to exactly
    /// its prior state — on budget exhaustion
    /// (`Ok(Outcome::Interrupted(_))`) and on rejected constraints
    /// (`Err(_)`) alike. Implemented as an internal
    /// push-epoch / solve-bounded / commit-or-pop sequence, so it also
    /// works with further epochs already open.
    ///
    /// # Errors
    ///
    /// Same as [`System::add_ann`]; the epoch that briefly opened is
    /// popped, leaving no trace.
    pub fn add_transactional(
        &mut self,
        lhs: SetExpr,
        rhs: SetExpr,
        ann: Option<AnnId>,
        budget: &Budget,
    ) -> Result<Outcome> {
        self.sys.push_epoch();
        let added = match ann {
            Some(a) => self.sys.add_ann(lhs, rhs, a),
            None => self.sys.add(lhs, rhs),
        };
        if let Err(e) = added {
            self.sys.pop_epoch();
            return Err(e);
        }
        let outcome = self.sys.solve_bounded(budget);
        match outcome {
            Outcome::Complete => self.sys.commit_epoch(),
            Outcome::Interrupted(_) => self.sys.pop_epoch(),
        };
        Ok(outcome)
    }

    /// Opens a rollback epoch (see [`System::push_epoch`]).
    pub fn push_epoch(&mut self) {
        self.sys.push_epoch();
    }

    /// Drains the pending worklist on `threads` worker threads (see
    /// [`System::solve_parallel`]). The solved form is byte-identical to a
    /// sequential drain, so the stamped query cache stays sound without
    /// special handling.
    pub fn bulk_solve(&mut self, threads: usize) -> Outcome
    where
        A: Sync,
    {
        self.sys.solve_parallel(threads)
    }

    /// Bounded variant of [`Session::bulk_solve`]; interruption semantics
    /// match [`Session::add_bounded`] (resume or pop the epoch before
    /// querying).
    pub fn bulk_solve_bounded(&mut self, budget: &Budget, threads: usize) -> Outcome
    where
        A: Sync,
    {
        self.sys.solve_parallel_bounded(budget, threads)
    }

    /// Adds `lhs ⊆^ann rhs` (ε when `ann` is `None`) and drains the
    /// consequences on `threads` worker threads.
    ///
    /// # Errors
    ///
    /// Same as [`System::add_ann`]; on error the system is unchanged.
    pub fn add_bulk(
        &mut self,
        lhs: SetExpr,
        rhs: SetExpr,
        ann: Option<AnnId>,
        threads: usize,
    ) -> Result<()>
    where
        A: Sync,
    {
        match ann {
            Some(a) => self.sys.add_ann(lhs, rhs, a)?,
            None => self.sys.add(lhs, rhs)?,
        }
        self.sys.solve_parallel(threads);
        Ok(())
    }

    /// Bounded variant of [`Session::add_bulk`].
    ///
    /// # Errors
    ///
    /// Same as [`System::add_ann`]; on error the system is unchanged.
    pub fn add_bulk_bounded(
        &mut self,
        lhs: SetExpr,
        rhs: SetExpr,
        ann: Option<AnnId>,
        budget: &Budget,
        threads: usize,
    ) -> Result<Outcome>
    where
        A: Sync,
    {
        match ann {
            Some(a) => self.sys.add_ann(lhs, rhs, a)?,
            None => self.sys.add(lhs, rhs)?,
        }
        Ok(self.sys.solve_parallel_bounded(budget, threads))
    }

    /// Rolls back to the matching [`Session::push_epoch`]. Returns `false`
    /// when no epoch is open. Cached results taken mid-epoch are
    /// invalidated by their stamps (stamps only move forward), not purged
    /// eagerly — pre-epoch results stay warm. The algebra's hash-cons
    /// tables are not shrunk (ids are canonical by content), so the
    /// `annotations` stat may exceed its pre-epoch value.
    pub fn pop_epoch(&mut self) -> bool {
        // Depth *before* the pop: how deep the rollback reached.
        rasc_obs::histogram("session.rollback.depth", self.sys.epoch_depth() as u64);
        self.sys.pop_epoch()
    }

    /// Closes the innermost epoch keeping its work (see
    /// [`System::commit_epoch`]). Returns `false` when no epoch is open.
    pub fn commit_epoch(&mut self) -> bool {
        self.sys.commit_epoch()
    }

    /// Number of open epochs.
    pub fn epoch_depth(&self) -> usize {
        self.sys.epoch_depth()
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Solver statistics (uncached; cheap).
    pub fn stats(&self) -> SolverStats {
        self.sys.stats()
    }

    /// The inconsistencies discovered so far.
    pub fn clashes(&self) -> &[Clash] {
        self.sys.clashes()
    }

    /// Whether the system is consistent.
    pub fn is_consistent(&self) -> bool {
        self.sys.is_consistent()
    }

    /// Cached [`System::occurrence_annotations`]: all composed annotations
    /// with which `target` occurs at any depth in the least solution of
    /// `x`. The cached result depends exactly on the variables reachable
    /// from `x` through lower-bound arguments, so unrelated increments do
    /// not evict it.
    pub fn occurrence_annotations(&mut self, x: VarId, target: ConsId) -> Vec<AnnId> {
        let key = Key::Occurrence(self.sys.find_root(x), target);
        if let Some(Value::Anns(anns)) = self.lookup(&key) {
            return anns;
        }
        let value = self.sys.occurrence_annotations(x, target);
        let deps = self.lb_closure_stamps(x);
        self.store(key, Stamp::Vars(deps), Value::Anns(value.clone()));
        value
    }

    /// Cached acceptance query: whether `target` occurs in `ρ(x)` with an
    /// accepting composed annotation (shares the
    /// [`Session::occurrence_annotations`] cache entry).
    pub fn occurs_accepting(&mut self, x: VarId, target: ConsId) -> bool {
        self.occurrence_annotations(x, target)
            .iter()
            .any(|&a| self.sys.algebra().is_accepting(a))
    }

    /// Cached [`System::pn_occurrence_annotations`] (partially matched
    /// reachability). PN descents traverse solved edges and projection
    /// sinks anywhere in the system, so the entry is stamped against the
    /// global mutation counter.
    pub fn pn_occurrence_annotations(&mut self, x: VarId, target: ConsId) -> Vec<AnnId> {
        let key = Key::PnOccurrence(self.sys.find_root(x), target);
        if let Some(Value::Anns(anns)) = self.lookup(&key) {
            return anns;
        }
        let value = self.sys.pn_occurrence_annotations(x, target);
        let stamp = Stamp::Global(self.sys.global_version());
        self.store(key, stamp, Value::Anns(value.clone()));
        value
    }

    /// Cached [`System::nonempty`]. Emptiness is a whole-system
    /// productivity fixpoint, so the entry is stamped against the global
    /// mutation counter.
    pub fn nonempty(&mut self, x: VarId) -> bool {
        let key = Key::Nonempty(self.sys.find_root(x));
        if let Some(Value::Bool(b)) = self.lookup(&key) {
            return b;
        }
        let value = self.sys.nonempty(x);
        let stamp = Stamp::Global(self.sys.global_version());
        self.store(key, stamp, Value::Bool(value));
        value
    }

    /// Validates and returns a cached value, dropping stale entries.
    fn lookup(&mut self, key: &Key) -> Option<Value> {
        let entry = self.cache.get(key)?;
        let valid = match &entry.stamp {
            Stamp::Global(g) => *g == self.sys.global_version(),
            Stamp::Vars(deps) => deps.iter().all(|&(v, stamp)| {
                v.index() < self.sys.num_vars() && self.sys.var_version(v) == stamp
            }),
        };
        if valid {
            self.stats.hits += 1;
            rasc_obs::counter("session.cache.hits", 1);
            Some(entry.value.clone())
        } else {
            self.cache.remove(key);
            self.stats.invalidations += 1;
            rasc_obs::counter("session.cache.invalidations", 1);
            None
        }
    }

    fn store(&mut self, key: Key, stamp: Stamp, value: Value) {
        self.stats.misses += 1;
        rasc_obs::counter("session.cache.misses", 1);
        self.cache.insert(key, Entry { stamp, value });
    }

    /// The dependency set of a term-descent query from `x`: every
    /// canonical variable reachable through lower-bound arguments, with
    /// its current stamp. If an increment later adds a lower bound to any
    /// of these (growing the reachable set), the parent's stamp moves.
    fn lb_closure_stamps(&self, x: VarId) -> Vec<(VarId, u64)> {
        let root = self.sys.find_root(x);
        // Hash-backed visited set (the linear `seen.contains` scan was
        // quadratic on deep closures); `order` keeps the dependency list
        // in deterministic discovery order. `lower_bounds` now borrows
        // the argument slices, so the walk allocates nothing per entry.
        let mut seen: HashSet<VarId> = HashSet::from([root]);
        let mut order: Vec<VarId> = vec![root];
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for (_, args, _) in self.sys.lower_bounds(v) {
                for &a in args {
                    let a = self.sys.find_root(a);
                    if seen.insert(a) {
                        order.push(a);
                        stack.push(a);
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|v| (v, self.sys.var_version(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::{Alphabet, Dfa, SymbolId};
    use rasc_core::algebra::MonoidAlgebra;

    fn one_bit_session() -> (Session<MonoidAlgebra>, SymbolId, SymbolId) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let m = Dfa::one_bit(&sigma, g, k);
        (Session::new(MonoidAlgebra::new(&m)), g, k)
    }

    #[test]
    fn incremental_adds_are_queryable_immediately() {
        let (mut s, g, _) = one_bit_session();
        let c = s.constructor("c", &[]);
        let (x, y) = (s.var("X"), s.var("Y"));
        let fg = s.system_mut().algebra_mut().word(&[g]);
        s.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        assert!(s.occurrence_annotations(y, c).is_empty());
        s.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        assert_eq!(s.occurrence_annotations(y, c), vec![fg]);
        assert!(s.occurs_accepting(y, c));
    }

    #[test]
    fn unrelated_increments_keep_cache_entries_warm() {
        let (mut s, g, _) = one_bit_session();
        let c = s.constructor("c", &[]);
        let (x, y) = (s.var("X"), s.var("Y"));
        let fg = s.system_mut().algebra_mut().word(&[g]);
        s.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        let first = s.occurrence_annotations(x, c);
        assert_eq!(s.cache_stats().misses, 1);
        // An increment in a disconnected component.
        s.add(SetExpr::cons(c, []), SetExpr::var(y)).unwrap();
        assert_eq!(s.occurrence_annotations(x, c), first);
        assert_eq!(s.cache_stats().hits, 1, "per-var stamps survived");
        // An increment feeding x invalidates.
        let d = s.constructor("d", &[]);
        s.add(SetExpr::cons(d, []), SetExpr::var(x)).unwrap();
        s.occurrence_annotations(x, c);
        assert_eq!(s.cache_stats().invalidations, 1);
    }

    #[test]
    fn rollback_restores_query_results() {
        let (mut s, g, k) = one_bit_session();
        let c = s.constructor("c", &[]);
        let (x, y) = (s.var("X"), s.var("Y"));
        let fg = s.system_mut().algebra_mut().word(&[g]);
        let fk = s.system_mut().algebra_mut().word(&[k]);
        s.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        s.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        let before = s.occurrence_annotations(y, c);
        let before_stats = s.stats();
        s.push_epoch();
        let z = s.var("Z");
        s.add_ann(SetExpr::cons(c, []), SetExpr::var(y), fk)
            .unwrap();
        s.add(SetExpr::var(y), SetExpr::var(z)).unwrap();
        assert_eq!(s.occurrence_annotations(y, c).len(), 2);
        assert!(s.pop_epoch());
        assert_eq!(s.occurrence_annotations(y, c), before);
        assert_eq!(s.stats(), before_stats);
    }

    #[test]
    fn nonempty_and_pn_queries_track_the_global_stamp() {
        let (mut s, g, _) = one_bit_session();
        let c = s.constructor("c", &[]);
        let pair = s.constructor("pair", &[Variance::Covariant, Variance::Covariant]);
        let (a, b, x) = (s.var("A"), s.var("B"), s.var("X"));
        let _ = g;
        s.add(SetExpr::cons(c, []), SetExpr::var(a)).unwrap();
        s.add(SetExpr::cons_vars(pair, [a, b]), SetExpr::var(x))
            .unwrap();
        assert!(!s.nonempty(x), "B is empty");
        assert!(!s.nonempty(x), "cached");
        assert_eq!(s.cache_stats().hits, 1);
        s.add(SetExpr::cons(c, []), SetExpr::var(b)).unwrap();
        assert!(s.nonempty(x), "stale global stamp recomputed");
        let anns = s.pn_occurrence_annotations(x, c);
        assert!(!anns.is_empty());
        assert_eq!(s.pn_occurrence_annotations(x, c), anns);
    }
}
