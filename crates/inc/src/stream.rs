//! Newline-delimited framing for the batch protocol, separated from the
//! [`BatchEngine`]'s command dispatch so every front-end — the `rasc
//! batch` stdin/stdout CLI, the `rasc serve` TCP connection layer, tests
//! driving an in-memory buffer — shares one loop with one contract:
//!
//! * each input line is handed to [`BatchEngine::handle_line`];
//! * each response is written as one line and **flushed immediately**, so
//!   pipe- and socket-driven clients see every answer as soon as it
//!   exists (never parked in an intermediate `BufWriter` until EOF);
//! * blank and `#`-comment lines produce no output, like the engine.

use std::io::{self, BufRead, Write};

use crate::batch::BatchEngine;

impl BatchEngine {
    /// Runs the engine over `input` until EOF, writing one response line
    /// per command to `output` and flushing after every response.
    ///
    /// Protocol-level problems (malformed JSON, unknown commands, budget
    /// exhaustion, …) are reported in-band by the engine and never end
    /// the stream; only an I/O error on `input` or `output` returns
    /// `Err`, and the engine stays usable afterwards.
    pub fn run_stream<R: BufRead, W: Write>(&mut self, input: R, mut output: W) -> io::Result<()> {
        for line in input.lines() {
            self.handle_framed_line(&line?, &mut output)?;
        }
        Ok(())
    }

    /// Frames one request/response exchange: dispatches `line` and, if it
    /// produced a response, writes it to `output` followed by a newline
    /// and a flush. Returns whether a response was written.
    ///
    /// This is the single write-side contract shared by [`run_stream`]
    /// and the serve layer (which owns its own read loop so it can
    /// interleave shutdown polling and per-request accounting).
    ///
    /// [`run_stream`]: BatchEngine::run_stream
    pub fn handle_framed_line<W: Write>(&mut self, line: &str, output: &mut W) -> io::Result<bool> {
        match self.handle_line(line) {
            Some(response) => {
                output.write_all(response.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use rasc_automata::{Alphabet, Dfa};

    use super::*;

    fn engine() -> BatchEngine {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let machine = Dfa::one_bit(&sigma, g, k);
        BatchEngine::new(sigma, &machine)
    }

    /// A writer that records how many times it was flushed.
    struct CountingWriter {
        buf: Vec<u8>,
        flushes: usize,
    }

    impl Write for CountingWriter {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.buf.write(data)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn run_stream_answers_each_line_and_skips_comments() {
        let input = concat!(
            "# a comment\n",
            "{\"cmd\":\"declare\",\"cons\":\"c\"}\n",
            "\n",
            "{\"cmd\":\"add\",\"lhs\":\"c\",\"rhs\":\"X\",\"ann\":[\"g\"]}\n",
            "{\"cmd\":\"query\",\"kind\":\"occurs\",\"var\":\"X\",\"cons\":\"c\"}\n",
            "not json\n",
        );
        let mut out = Vec::new();
        let mut e = engine();
        e.run_stream(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains(r#""ok":"declare""#), "{text}");
        assert!(lines[2].contains(r#""result":true"#), "{text}");
        assert!(lines[3].contains(r#""code":"malformed_json""#), "{text}");
    }

    #[test]
    fn every_response_is_flushed_immediately() {
        let input = concat!(
            "{\"cmd\":\"declare\",\"cons\":\"c\"}\n",
            "# silent\n",
            "{\"cmd\":\"stats\"}\n",
        );
        let mut out = CountingWriter {
            buf: Vec::new(),
            flushes: 0,
        };
        engine().run_stream(input.as_bytes(), &mut out).unwrap();
        assert_eq!(out.flushes, 2, "one flush per response, none for comments");
    }

    #[test]
    fn io_errors_surface_but_do_not_wedge_the_engine() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _data: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut e = engine();
        let err = e
            .run_stream(b"{\"cmd\":\"stats\"}\n".as_slice(), FailingWriter)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The engine itself survives the sink dying.
        let mut out = Vec::new();
        e.run_stream(b"{\"cmd\":\"stats\"}\n".as_slice(), &mut out)
            .unwrap();
        assert!(String::from_utf8(out).unwrap().contains(r#""ok":"stats""#));
    }
}
