//! A minimal JSON reader/writer for the batch protocol (the build
//! environment is offline, so `serde` is not available).
//!
//! Supports the full JSON value grammar; numbers are kept as `f64`
//! (sufficient for the protocol's counters).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value, requiring it to span the whole input.
    ///
    /// Nesting is limited to [`MAX_DEPTH`] levels: the parser is
    /// recursive, and a typed error beats a stack overflow on hostile
    /// input like `[[[[…`.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

/// Builds an object from key/value pairs (a tiny `json!`-alike).
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum value-nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(bytes, pos, depth + 1)? else {
                    return Err(format!("object key must be a string (byte {pos})"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (bytes are valid UTF-8: input is &str).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let src = r#"{"cmd":"add","lhs":"pair(X,Y)","ann":["g","k"],"n":3,"ok":true}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("add"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("ann").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_and_errors() {
        let v = Json::parse(r#""a\"b\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_an_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).unwrap_err().contains("deeper"));
        let hostile_objs = r#"{"a":"#.repeat(100_000);
        assert!(Json::parse(&hostile_objs).is_err());
        // Anything under the limit still parses.
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn builder_renders_compactly() {
        let v = obj([("ok", Json::from("push")), ("depth", Json::from(2usize))]);
        assert_eq!(v.render(), r#"{"ok":"push","depth":2}"#);
    }
}
