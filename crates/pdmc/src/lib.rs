//! Pushdown model checking via regularly annotated set constraints
//! (paper §6).
//!
//! The encoding of §6.1:
//!
//! * one set variable `S` per CFG node (program point);
//! * `pc ⊆ S_main` seeds the program counter at the entry point;
//! * an irrelevant statement adds `S ⊆ S'`;
//! * a property-relevant statement adds `S ⊆^σ S'` (annotated with the
//!   event symbol);
//! * a call to `f` at site `i` adds `o_i(S) ⊆ F_entry` and
//!   `o_i⁻¹(F_exit) ⊆ S_ret` — call/return matching is the *context-free*
//!   property, carried by the term structure.
//!
//! A security violation is the entailment of an annotated ground term
//! `pc^f` with `f` accepting (error state) at some program point; the
//! wrapping constructors of the witness term are a possible runtime stack
//! (§6.2).
//!
//! Parametric properties (`open(x)`/`close(x)`, §6.4) use the
//! substitution-environment algebra instead of the plain monoid; nothing
//! else in the encoding changes.
//!
//! # Example
//!
//! ```
//! use rasc_cfgir::{Cfg, Program};
//! use rasc_pdmc::{properties, ConstraintChecker};
//! use rasc_automata::PropertySpec;
//!
//! let program = Program::parse(
//!     "fn main() { s1: event seteuid_zero; s5: event execl; s6: skip; }",
//! ).unwrap();
//! let cfg = Cfg::build(&program).unwrap();
//! let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap();
//! let mut checker = ConstraintChecker::from_spec(&cfg, &spec, "main").unwrap();
//! checker.solve();
//! let violations = checker.violations();
//! assert!(violations.contains(&cfg.label_node("s6").unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
pub mod properties;
pub mod trace;

pub use encode::{CheckError, ConstraintChecker, ParametricChecker, PlainChecker};
pub use trace::{render_trace, witness_trace, TraceStep};
