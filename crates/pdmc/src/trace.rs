//! Witness event traces for violations.
//!
//! The constraint solutions already provide a witness *stack* (§6.2: the
//! ground term's constructors are the unreturned call sites). For
//! reporting, an *event trace* — the property-relevant statements along a
//! path from the entry to the violation — is also useful. This module
//! reconstructs one by BFS over the product of the CFG and the property
//! machine, treating calls context-insensitively (the trace is a shortest
//! product-graph path; like MOPS's reported traces it may in rare
//! recursive cases be infeasible with respect to exact call/return
//! matching, while the *verdict* always comes from the exact checker).

use std::collections::{HashMap, VecDeque};

use rasc_automata::{Alphabet, Dfa, StateId};
use rasc_cfgir::{Cfg, EdgeLabel, NodeId};

/// One step of a witness trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// A property-relevant event fired, moving the machine to `state`.
    Event {
        /// The event name.
        name: String,
        /// The property state after the event.
        state: StateId,
    },
    /// Control entered a function.
    Call {
        /// The callee's name.
        callee: String,
    },
    /// Control returned from a function.
    Return {
        /// The callee's name.
        callee: String,
    },
}

/// Reconstructs a shortest event trace from `entry`'s start configuration
/// to `target` with the property machine in an accepting (error) state.
///
/// Returns `None` when no such product path exists (e.g. the node is not
/// a violation).
pub fn witness_trace(
    cfg: &Cfg,
    sigma: &Alphabet,
    property: &Dfa,
    entry: &str,
    target: NodeId,
) -> Option<Vec<TraceStep>> {
    let machine = property.complete();
    let entry_node = cfg.entry(entry).ok()?.entry;
    let start = (entry_node, machine.start()?);

    // Product adjacency: intraprocedural edges plus call/return edges.
    #[derive(Clone)]
    enum Via {
        Plain,
        Event(String),
        Call(String),
        Return(String),
    }
    let mut adj: HashMap<NodeId, Vec<(NodeId, Via)>> = HashMap::new();
    for (from, to, label) in cfg.edges() {
        let via = match label {
            EdgeLabel::Plain => Via::Plain,
            EdgeLabel::Event { name, .. } => {
                if sigma.lookup(name).is_some() {
                    Via::Event(name.clone())
                } else {
                    Via::Plain
                }
            }
        };
        adj.entry(*from).or_default().push((*to, via));
    }
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        adj.entry(site.call_node)
            .or_default()
            .push((callee.entry, Via::Call(callee.name.clone())));
        adj.entry(callee.exit)
            .or_default()
            .push((site.return_node, Via::Return(callee.name.clone())));
    }

    // BFS over (node, state).
    type ProductPoint = (NodeId, StateId);
    let mut parents: HashMap<ProductPoint, (ProductPoint, Option<TraceStep>)> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    parents.insert(start, (start, None));
    while let Some((node, state)) = queue.pop_front() {
        if node == target && machine.is_accepting(state) {
            // Reconstruct.
            let mut steps = Vec::new();
            let mut cur = (node, state);
            while cur != start {
                let (prev, step) = parents[&cur].clone();
                if let Some(s) = step {
                    steps.push(s);
                }
                cur = prev;
            }
            steps.reverse();
            return Some(steps);
        }
        for (next_node, via) in adj.get(&node).cloned().unwrap_or_default() {
            let (next_state, step) = match &via {
                Via::Plain => (state, None),
                Via::Event(name) => {
                    let sym = sigma.lookup(name).expect("checked above");
                    let s2 = machine.delta(state, sym).expect("complete machine");
                    (
                        s2,
                        Some(TraceStep::Event {
                            name: name.clone(),
                            state: s2,
                        }),
                    )
                }
                Via::Call(callee) => (
                    state,
                    Some(TraceStep::Call {
                        callee: callee.clone(),
                    }),
                ),
                Via::Return(callee) => (
                    state,
                    Some(TraceStep::Return {
                        callee: callee.clone(),
                    }),
                ),
            };
            let key = (next_node, next_state);
            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(key) {
                e.insert(((node, state), step));
                queue.push_back(key);
            }
        }
    }
    None
}

/// Renders a trace compactly for diagnostics, e.g.
/// `"seteuid_zero → call helper → execl"`.
pub fn render_trace(steps: &[TraceStep]) -> String {
    let parts: Vec<String> = steps
        .iter()
        .map(|s| match s {
            TraceStep::Event { name, .. } => name.clone(),
            TraceStep::Call { callee } => format!("call {callee}"),
            TraceStep::Return { callee } => format!("ret {callee}"),
        })
        .collect();
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rasc_automata::PropertySpec;
    use rasc_cfgir::Program;

    fn setup(src: &str) -> (Cfg, Alphabet, Dfa) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let (sigma, dfa) = PropertySpec::parse(properties::SIMPLE_PRIVILEGE)
            .unwrap()
            .compile();
        (cfg, sigma, dfa)
    }

    #[test]
    fn straight_line_trace() {
        let (cfg, sigma, dfa) =
            setup("fn main() { event seteuid_zero; event execl; after: skip; }");
        let target = cfg.label_node("after").unwrap();
        let trace = witness_trace(&cfg, &sigma, &dfa, "main", target).expect("violation");
        let rendered = render_trace(&trace);
        assert_eq!(rendered, "seteuid_zero → execl");
    }

    #[test]
    fn trace_takes_the_violating_branch() {
        let (cfg, sigma, dfa) = setup(
            "fn main() {
                event seteuid_zero;
                if (*) { event seteuid_nonzero; } else { skip; }
                event execl;
                after: skip;
            }",
        );
        let target = cfg.label_node("after").unwrap();
        let trace = witness_trace(&cfg, &sigma, &dfa, "main", target).expect("violation");
        let rendered = render_trace(&trace);
        // The witness must avoid the privilege-dropping branch.
        assert!(!rendered.contains("seteuid_nonzero"), "{rendered}");
        assert!(rendered.ends_with("execl"));
    }

    #[test]
    fn interprocedural_trace_shows_calls() {
        let (cfg, sigma, dfa) = setup(
            "fn doexec() { event execl; done: skip; }
             fn main() { event seteuid_zero; doexec(); }",
        );
        let target = cfg.label_node("done").unwrap();
        let trace = witness_trace(&cfg, &sigma, &dfa, "main", target).expect("violation");
        let rendered = render_trace(&trace);
        assert_eq!(rendered, "seteuid_zero → call doexec → execl");
    }

    #[test]
    fn safe_points_have_no_trace() {
        let (cfg, sigma, dfa) = setup(
            "fn main() { ok: event seteuid_zero; event seteuid_nonzero; event execl; done: skip; }",
        );
        // Before anything happens the machine cannot be in the error state.
        let before = cfg.label_node("ok").unwrap();
        assert!(witness_trace(&cfg, &sigma, &dfa, "main", before).is_none());
        // And on this program privileges are dropped: no violation at all.
        let done = cfg.label_node("done").unwrap();
        assert!(witness_trace(&cfg, &sigma, &dfa, "main", done).is_none());
    }
}
