//! Security property automata: the paper's Figure 3 and Figure 5
//! properties, and a reconstruction of MOPS "Property 1" (the full process
//! privilege model of §8: 11 states, 9 alphabet symbols in the paper's
//! reporting).

use rasc_automata::{Alphabet, Dfa, StateId};

/// The paper's Figure 3: a process must not `execl` while holding root
/// privilege (written in the §8 specification language).
pub const SIMPLE_PRIVILEGE: &str = "\
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;";

/// The paper's Figure 5: parametric file-descriptor tracking. A descriptor
/// is open (accepting) between `open(x)` and `close(x)`.
pub const FILE_STATE: &str = "\
start state Closed :
    | open(x) -> Opened;

accept state Opened :
    | close(x) -> Closed;";

/// A chroot-jail discipline (modeled on MOPS's chroot property): after
/// `chroot`, the process must `chdir("/")` before any other filesystem
/// operation, or paths can escape the jail.
pub const CHROOT_JAIL: &str = "\
start state Normal :
    | chroot -> Jailed;

state Jailed :
    | chdir_root -> Normal
    | fs_op -> Escaped;

accept state Escaped;";

/// A temporary-file race discipline (modeled on MOPS's tmpfile property):
/// a name produced by `mktemp` must not be passed to `open` (TOCTOU);
/// `mkstemp` is the safe API.
pub const TEMP_FILE_RACE: &str = "\
start state Clean :
    | mktemp -> Tainted;

state Tainted :
    | open_tainted -> Raced
    | mkstemp -> Clean;

accept state Raced;";

/// Every bundled textual property, by name (the reconstruction of MOPS
/// Property 1 is programmatic: [`full_privilege_property`]).
pub fn bundled_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("simple-privilege", SIMPLE_PRIVILEGE),
        ("file-state", FILE_STATE),
        ("chroot-jail", CHROOT_JAIL),
        ("temp-file-race", TEMP_FILE_RACE),
    ]
}

/// Combines several properties into one machine over the union alphabet,
/// accepting when *any* component property accepts — the paper's §2.2
/// observation that the product of all regular properties suffices, so a
/// single solver pass checks everything at once.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn combine_specs(specs: &[&rasc_automata::PropertySpec]) -> (Alphabet, Dfa) {
    assert!(!specs.is_empty(), "need at least one property");
    let mut sigma = Alphabet::new();
    for spec in specs {
        for arm in spec.arms() {
            sigma.intern(&arm.symbol.name);
        }
    }
    let mut machines = specs.iter().map(|s| match s.compile_over(&sigma) {
        Ok(m) => m,
        Err(_) => unreachable!("every spec symbol was interned just above"),
    });
    let first = match machines.next() {
        Some(m) => m,
        None => unreachable!("specs is nonempty"),
    };
    let combined = machines.fold(first, |acc, m| acc.product_by(&m, |a, b| a || b));
    (sigma, combined)
}

/// Privilege level of one uid/gid slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Root,
    User,
}

/// Abstract (effective, real, saved) id triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Triple {
    e: Slot,
    r: Slot,
    s: Slot,
}

impl Triple {
    /// setuid-root start: effective root, real user, saved root.
    fn start() -> Triple {
        Triple {
            e: Slot::Root,
            r: Slot::User,
            s: Slot::Root,
        }
    }

    /// `sete*id(target)`: set the effective id when permitted.
    fn set_effective(self, target: Slot) -> Triple {
        let permitted = self.e == Slot::Root || self.r == target || self.s == target;
        if permitted {
            Triple { e: target, ..self }
        } else {
            self
        }
    }

    /// `set*id(target)`: POSIX semantics — from effective root all three
    /// ids change (permanent drop); otherwise only the effective id, when
    /// the target matches the real or saved id.
    fn set_all(self, target: Slot) -> Triple {
        if self.e == Slot::Root {
            Triple {
                e: target,
                r: target,
                s: target,
            }
        } else if self.r == target || self.s == target {
            Triple { e: target, ..self }
        } else {
            self
        }
    }

    /// `setres*id(u, u, u)`: drop all three ids unconditionally (always
    /// permitted when the target is the real id).
    fn drop_all(self) -> Triple {
        Triple {
            e: Slot::User,
            r: Slot::User,
            s: Slot::User,
        }
    }
}

/// Builds a reconstruction of MOPS **Property 1**: "a process should never
/// execute an untrusted program while holding root privilege", with the
/// full uid *and* gid `(effective, real, saved)` tracking of the original
/// model.
///
/// The published automaton is not available; this reconstruction follows
/// POSIX set*id semantics. Symbols (9, matching the paper's count):
///
/// | symbol | semantics |
/// |---|---|
/// | `seteuid_zero` / `seteuid_user` | set effective uid |
/// | `setuid_zero` / `setuid_user` | set all uids (POSIX `setuid`) |
/// | `setresuid_user` | unconditionally drop all uids |
/// | `setegid_zero` / `setegid_user` | set effective gid |
/// | `setgid_user` | set all gids |
/// | `execl` | error if effective uid or gid is root |
///
/// States: reachable (uid-triple, gid-triple) pairs plus a trap error
/// state. The experiment binary reports the state count and `|F_M^≡|`
/// against the paper's "11 states / 58 representative functions".
pub fn full_privilege_property() -> (Alphabet, Dfa) {
    let mut sigma = Alphabet::new();
    let seteuid_zero = sigma.intern("seteuid_zero");
    let seteuid_user = sigma.intern("seteuid_user");
    let setuid_zero = sigma.intern("setuid_zero");
    let setuid_user = sigma.intern("setuid_user");
    let setresuid_user = sigma.intern("setresuid_user");
    let setegid_zero = sigma.intern("setegid_zero");
    let setegid_user = sigma.intern("setegid_user");
    let setgid_user = sigma.intern("setgid_user");
    let execl = sigma.intern("execl");

    // Enumerate reachable (uid, gid) states.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum PState {
        Ok { uid: Triple, gid: Triple },
        Error,
    }

    let step = |st: PState, sym: usize| -> PState {
        let PState::Ok { uid, gid } = st else {
            return PState::Error; // trap
        };
        match sym {
            0 => PState::Ok {
                uid: uid.set_effective(Slot::Root),
                gid,
            },
            1 => PState::Ok {
                uid: uid.set_effective(Slot::User),
                gid,
            },
            2 => PState::Ok {
                uid: uid.set_all(Slot::Root),
                gid,
            },
            3 => PState::Ok {
                uid: uid.set_all(Slot::User),
                gid,
            },
            4 => PState::Ok {
                uid: uid.drop_all(),
                gid,
            },
            5 => PState::Ok {
                uid,
                gid: gid.set_effective(Slot::Root),
            },
            6 => PState::Ok {
                uid,
                gid: gid.set_effective(Slot::User),
            },
            7 => PState::Ok {
                uid,
                gid: gid.set_all(Slot::User),
            },
            8 => {
                if uid.e == Slot::Root || gid.e == Slot::Root {
                    PState::Error
                } else {
                    PState::Ok { uid, gid }
                }
            }
            _ => unreachable!(),
        }
    };

    let start = PState::Ok {
        uid: Triple::start(),
        gid: Triple::start(),
    };
    let symbols = [
        seteuid_zero,
        seteuid_user,
        setuid_zero,
        setuid_user,
        setresuid_user,
        setegid_zero,
        setegid_user,
        setgid_user,
        execl,
    ];

    // BFS over reachable abstract states.
    let mut ids: Vec<PState> = vec![start];
    let mut dfa = Dfa::new(sigma.len());
    let s0 = dfa.add_state(false);
    dfa.set_start(s0);
    let mut dfa_states: Vec<StateId> = vec![s0];
    let mut i = 0;
    while i < ids.len() {
        let st = ids[i];
        for (sym_idx, &sym) in symbols.iter().enumerate() {
            let next = step(st, sym_idx);
            let pos = match ids.iter().position(|&s| s == next) {
                Some(p) => p,
                None => {
                    ids.push(next);
                    let d = dfa.add_state(next == PState::Error);
                    dfa_states.push(d);
                    ids.len() - 1
                }
            };
            dfa.set_transition(dfa_states[i], sym, dfa_states[pos]);
        }
        i += 1;
    }
    (sigma, dfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::{Monoid, PropertySpec};

    #[test]
    fn simple_privilege_parses_and_has_three_states() {
        let spec = PropertySpec::parse(SIMPLE_PRIVILEGE).unwrap();
        assert_eq!(spec.states().len(), 3);
        let (_, dfa) = spec.compile();
        assert_eq!(dfa.minimize().len(), 3);
    }

    #[test]
    fn file_state_is_parametric() {
        let spec = PropertySpec::parse(FILE_STATE).unwrap();
        assert!(spec.is_parametric());
    }

    #[test]
    fn all_bundled_specs_parse_and_compile() {
        for (name, spec_text) in bundled_specs() {
            let spec = PropertySpec::parse(spec_text)
                .unwrap_or_else(|e| panic!("spec `{name}` failed to parse: {e}"));
            let (sigma, dfa) = spec.compile();
            assert!(!sigma.is_empty(), "{name}");
            assert!(dfa.start().is_some(), "{name}");
            // Every bundled property has at least one accepting (error)
            // state reachable from the start.
            assert!(!dfa.minimize().is_language_empty(), "{name}");
        }
    }

    #[test]
    fn chroot_jail_semantics() {
        let (sigma, dfa) = PropertySpec::parse(CHROOT_JAIL).unwrap().compile();
        let chroot = sigma.lookup("chroot").unwrap();
        let chdir = sigma.lookup("chdir_root").unwrap();
        let fs = sigma.lookup("fs_op").unwrap();
        assert!(dfa.accepts(&[chroot, fs]), "fs op inside unfixed jail");
        assert!(!dfa.accepts(&[chroot, chdir, fs]), "chdir(\"/\") fixes it");
        assert!(!dfa.accepts(&[fs]), "fs ops before chroot are fine");
    }

    #[test]
    fn temp_file_race_semantics() {
        let (sigma, dfa) = PropertySpec::parse(TEMP_FILE_RACE).unwrap().compile();
        let mktemp = sigma.lookup("mktemp").unwrap();
        let open = sigma.lookup("open_tainted").unwrap();
        let mkstemp = sigma.lookup("mkstemp").unwrap();
        assert!(dfa.accepts(&[mktemp, open]));
        assert!(!dfa.accepts(&[mktemp, mkstemp, open]));
        assert!(!dfa.accepts(&[open]));
    }

    #[test]
    fn combined_properties_accept_either_violation() {
        let priv_spec = PropertySpec::parse(SIMPLE_PRIVILEGE).unwrap();
        let jail_spec = PropertySpec::parse(CHROOT_JAIL).unwrap();
        let (sigma, dfa) = combine_specs(&[&priv_spec, &jail_spec]);
        let zero = sigma.lookup("seteuid_zero").unwrap();
        let execl = sigma.lookup("execl").unwrap();
        let chroot = sigma.lookup("chroot").unwrap();
        let fs = sigma.lookup("fs_op").unwrap();
        let chdir = sigma.lookup("chdir_root").unwrap();
        assert!(dfa.accepts(&[zero, execl]), "privilege violation alone");
        assert!(dfa.accepts(&[chroot, fs]), "jail violation alone");
        assert!(
            dfa.accepts(&[zero, chroot, chdir, execl]),
            "privilege violation with benign jail activity interleaved"
        );
        assert!(!dfa.accepts(&[zero, chroot, chdir]), "neither violated");
        // Symbols of one property are self-loops for the other.
        assert!(!dfa.accepts(&[execl, fs]));
    }

    #[test]
    fn full_privilege_shape() {
        let (sigma, dfa) = full_privilege_property();
        assert_eq!(sigma.len(), 9, "nine alphabet symbols, as in §8");
        let minimal = dfa.minimize();
        // The paper reports 11 states for the original MOPS model; the
        // reconstruction should land in the same regime (roughly 8–14).
        assert!(
            (8..=14).contains(&minimal.len()),
            "got {} states",
            minimal.len()
        );
    }

    #[test]
    fn full_privilege_monoid_is_small() {
        // §8's headline observation: |F_M^≡| is far from |S|^|S| — the
        // paper's machine had 58 representative functions. The
        // reconstruction must land in the same regime (tens, not
        // thousands).
        let (_, dfa) = full_privilege_property();
        let monoid = Monoid::of_dfa(&dfa.minimize());
        assert!(
            monoid.len() < 500,
            "representative function count {} should be tiny",
            monoid.len()
        );
    }

    #[test]
    fn full_privilege_accepts_the_obvious_violation() {
        let (sigma, dfa) = full_privilege_property();
        let execl = sigma.lookup("execl").unwrap();
        let drop = sigma.lookup("setresuid_user").unwrap();
        let setgid = sigma.lookup("setgid_user").unwrap();
        // A setuid-root program starts with effective uid root.
        assert!(dfa.accepts(&[execl]), "exec with euid root is a violation");
        assert!(
            dfa.accepts(&[drop, execl]),
            "gid still effective-root after uid drop"
        );
        assert!(
            !dfa.accepts(&[drop, setgid, execl]),
            "dropping both uid and gid is safe"
        );
    }
}
