//! The CFG → annotated-constraints encoding and the violation scan.

use std::fmt;

use rasc_automata::{Alphabet, Dfa, PropertySpec};
use rasc_cfgir::{Cfg, CfgError, EdgeLabel, NodeId};
use rasc_core::algebra::{Algebra, AnnId, MonoidAlgebra, SubstAlgebra};
use rasc_core::{ConsId, OccurrenceWitness, SetExpr, SolverConfig, System, VarId, Variance};

/// Errors from building a constraint checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The CFG lacks the requested entry function.
    Cfg(CfgError),
    /// A constraint was malformed (indicates a bug in the encoder).
    Core(rasc_core::CoreError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Cfg(e) => write!(f, "{e}"),
            CheckError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<CfgError> for CheckError {
    fn from(e: CfgError) -> Self {
        CheckError::Cfg(e)
    }
}

impl From<rasc_core::CoreError> for CheckError {
    fn from(e: rasc_core::CoreError) -> Self {
        CheckError::Core(e)
    }
}

/// A pushdown model checker built on regularly annotated set constraints.
///
/// Construct with [`ConstraintChecker::from_spec`] (plain or parametric —
/// chosen automatically) or the explicit
/// [`ConstraintChecker::new`] / [`ConstraintChecker::parametric`]; then
/// [`solve`](ConstraintChecker::solve) and query.
#[derive(Debug)]
pub struct ConstraintChecker<A: Algebra> {
    sys: System<A>,
    node_vars: Vec<VarId>,
    pc: ConsId,
    /// Per-call-site constructors `o_i`, for rendering witnesses.
    site_names: Vec<String>,
}

/// A checker over the plain transition-monoid algebra.
pub type PlainChecker = ConstraintChecker<MonoidAlgebra>;
/// A checker over the parametric substitution-environment algebra.
pub type ParametricChecker = ConstraintChecker<SubstAlgebra>;

impl ConstraintChecker<MonoidAlgebra> {
    /// Builds the checker for a non-parametric property DFA over alphabet
    /// `sigma`, starting at function `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Cfg`] if `entry` is missing.
    pub fn new(
        cfg: &Cfg,
        sigma: &Alphabet,
        property: &Dfa,
        entry: &str,
    ) -> Result<Self, CheckError> {
        let algebra = MonoidAlgebra::new(property);
        build(cfg, entry, algebra, |alg, name, _args| {
            sigma.lookup(name).map(|sym| alg.symbol(sym))
        })
    }

    /// Like [`ConstraintChecker::new`] with explicit solver configuration
    /// (for the optimization-ablation benchmarks).
    pub fn new_with_config(
        cfg: &Cfg,
        sigma: &Alphabet,
        property: &Dfa,
        entry: &str,
        config: SolverConfig,
    ) -> Result<Self, CheckError> {
        let algebra = MonoidAlgebra::new(property);
        build_with_config(cfg, entry, algebra, config, |alg, name, _args| {
            sigma.lookup(name).map(|sym| alg.symbol(sym))
        })
    }
}

impl ConstraintChecker<SubstAlgebra> {
    /// Builds the checker for a *parametric* property (§6.4): events carry
    /// parameter-value labels (`event open(fd1)`), and annotations are
    /// substitution environments.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Cfg`] if `entry` is missing.
    pub fn parametric(cfg: &Cfg, spec: &PropertySpec, entry: &str) -> Result<Self, CheckError> {
        let (sigma, dfa) = spec.compile();
        let mut algebra = SubstAlgebra::new(&dfa);
        // Pre-intern the declared parameters of each symbol.
        let symbol_params: Vec<(String, Vec<rasc_core::algebra::ParamId>)> = {
            let params = spec.symbol_params();
            let mut v = Vec::new();
            for (name, ps) in params {
                let ids = ps.iter().map(|p| algebra.param(p)).collect();
                v.push((name.to_owned(), ids));
            }
            v
        };
        build(cfg, entry, algebra, move |alg, name, args| {
            let sym = sigma.lookup(name)?;
            let (_, param_ids) = symbol_params.iter().find(|(n, _)| n == name)?;
            if param_ids.is_empty() || args.is_empty() {
                return Some(alg.plain(sym));
            }
            // Pair declared parameters with the event's value labels.
            let pairs: Vec<_> = param_ids
                .iter()
                .zip(args)
                .map(|(&p, label)| (p, alg.label(label)))
                .collect();
            Some(alg.instantiate(sym, &pairs))
        })
    }
}

/// Builds a checker from a property spec, choosing the plain or parametric
/// algebra automatically.
impl ConstraintChecker<MonoidAlgebra> {
    /// Builds a plain checker from a [`PropertySpec`] (which must be
    /// non-parametric; use [`ConstraintChecker::parametric`] otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Cfg`] if `entry` is missing.
    pub fn from_spec(cfg: &Cfg, spec: &PropertySpec, entry: &str) -> Result<Self, CheckError> {
        let (sigma, dfa) = spec.compile();
        Self::new(cfg, &sigma, &dfa, entry)
    }
}

fn build<A: Algebra>(
    cfg: &Cfg,
    entry: &str,
    algebra: A,
    event_ann: impl FnMut(&mut A, &str, &[String]) -> Option<AnnId>,
) -> Result<ConstraintChecker<A>, CheckError> {
    build_with_config(cfg, entry, algebra, SolverConfig::default(), event_ann)
}

fn build_with_config<A: Algebra>(
    cfg: &Cfg,
    entry: &str,
    algebra: A,
    config: SolverConfig,
    mut event_ann: impl FnMut(&mut A, &str, &[String]) -> Option<AnnId>,
) -> Result<ConstraintChecker<A>, CheckError> {
    let entry_node = cfg.entry(entry)?.entry;
    let mut sys = System::with_config(algebra, config);
    let node_vars: Vec<VarId> = (0..cfg.num_nodes())
        .map(|i| sys.var(&format!("S{i}")))
        .collect();
    let pc = sys.constructor("pc", &[]);

    // pc ⊆ S_main.
    sys.add(
        SetExpr::cons(pc, []),
        SetExpr::var(node_vars[entry_node.index()]),
    )?;

    // Statement edges.
    for (from, to, label) in cfg.edges() {
        let ann = match label {
            EdgeLabel::Plain => None,
            EdgeLabel::Event { name, args } => event_ann(sys.algebra_mut(), name, args),
        };
        let lhs = SetExpr::var(node_vars[from.index()]);
        let rhs = SetExpr::var(node_vars[to.index()]);
        match ann {
            Some(a) => sys.add_ann(lhs, rhs, a)?,
            None => sys.add(lhs, rhs)?,
        }
    }

    // Call/return matching via per-site constructors.
    let mut site_names = Vec::new();
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        let name = format!("o{}", site.id.index());
        let o_i = sys.constructor(&name, &[Variance::Covariant]);
        site_names.push(name);
        sys.add(
            SetExpr::cons_vars(o_i, [node_vars[site.call_node.index()]]),
            SetExpr::var(node_vars[callee.entry.index()]),
        )?;
        sys.add(
            SetExpr::proj(o_i, 0, node_vars[callee.exit.index()]),
            SetExpr::var(node_vars[site.return_node.index()]),
        )?;
    }

    Ok(ConstraintChecker {
        sys,
        node_vars,
        pc,
        site_names,
    })
}

impl<A: Algebra> ConstraintChecker<A> {
    /// Runs constraint resolution to a fixpoint.
    pub fn solve(&mut self) {
        self.sys.solve();
    }

    /// The set variable of a CFG node.
    pub fn node_var(&self, n: NodeId) -> VarId {
        self.node_vars[n.index()]
    }

    /// All program points where `pc` occurs (at any depth) with an
    /// *accepting* annotation — the reachable error configurations.
    ///
    /// Uses the single-pass bottom-up occurrence map rather than one
    /// entailment per node.
    pub fn violations(&mut self) -> Vec<NodeId> {
        let occ = self.sys.constant_occurrence_map(self.pc);
        let mut out = Vec::new();
        for (node, &var) in self.node_vars.iter().enumerate() {
            if occ[var.index()]
                .iter()
                .any(|&a| self.sys.algebra().is_accepting(a))
            {
                out.push(NodeId::from_index(node));
            }
        }
        out
    }

    /// Whether any violation exists.
    pub fn violated(&mut self) -> bool {
        !self.violations().is_empty()
    }

    /// Like [`ConstraintChecker::violations`] but along *PN paths*
    /// (§6.2's partially matched reachability): the `pc` may additionally
    /// have escaped through returns not matched by a call on the path.
    /// Acceptance still requires an error-state annotation.
    ///
    /// For whole-program checking from `main` this coincides with
    /// [`ConstraintChecker::violations`] (every frame was entered by a
    /// call); it differs when analyzing libraries or code fragments whose
    /// callers are unknown.
    pub fn violations_pn(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for node in 0..self.node_vars.len() {
            let var = self.node_vars[node];
            let anns = self.sys.pn_occurrence_annotations(var, self.pc);
            if anns.iter().any(|&a| self.sys.algebra().is_accepting(a)) {
                out.push(NodeId::from_index(node));
            }
        }
        out
    }

    /// The annotations with which `pc` occurs at a node (the property
    /// states the program point can be in).
    pub fn pc_annotations(&mut self, n: NodeId) -> Vec<AnnId> {
        let var = self.node_vars[n.index()];
        self.sys.occurrence_annotations(var, self.pc)
    }

    /// A witness for a violation at `n`: the call-site constructor stack
    /// (a possible runtime stack) plus the accepting annotation.
    pub fn witness(&mut self, n: NodeId) -> Option<OccurrenceWitness> {
        let var = self.node_vars[n.index()];
        self.sys.occurrence_witness(var, self.pc)
    }

    /// Renders a witness's stack of call sites for diagnostics.
    pub fn render_witness(&self, w: &OccurrenceWitness) -> String {
        let frames: Vec<&str> = w
            .stack
            .iter()
            .map(|c| self.sys.constructor_decl(*c).name())
            .collect();
        if frames.is_empty() {
            "<main>".to_owned()
        } else {
            format!("<main> {}", frames.join(" "))
        }
    }

    /// The underlying constraint system.
    pub fn system(&self) -> &System<A> {
        &self.sys
    }

    /// Mutable access to the underlying system (for ad-hoc queries).
    pub fn system_mut(&mut self) -> &mut System<A> {
        &mut self.sys
    }

    /// Number of call sites encoded.
    pub fn num_call_sites(&self) -> usize {
        self.site_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rasc_cfgir::Program;

    fn plain_check(src: &str) -> (Cfg, PlainChecker) {
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).unwrap();
        let checker = ConstraintChecker::from_spec(&cfg, &spec, "main").unwrap();
        (cfg, checker)
    }

    #[test]
    fn section_6_3_example_exact() {
        // The paper's §6.3 program: the else path keeps privileges.
        let (cfg, mut checker) = plain_check(
            "fn main() {
                s1: event seteuid_zero;
                if (*) { s3: event seteuid_nonzero; } else { s4: skip; }
                s5: event execl;
                s6: skip;
            }",
        );
        checker.solve();
        let violations = checker.violations();
        let s6 = cfg.label_node("s6").unwrap();
        assert!(violations.contains(&s6), "pc^f_error ∈ S6");
        // Before the execl there is no violation yet.
        let s5 = cfg.label_node("s5").unwrap();
        assert!(!violations.contains(&s5));
    }

    #[test]
    fn dropping_on_all_paths_is_safe() {
        let (_, mut checker) = plain_check(
            "fn main() {
                event seteuid_zero;
                if (*) { event seteuid_nonzero; } else { event seteuid_nonzero; }
                event execl;
            }",
        );
        checker.solve();
        assert!(!checker.violated());
    }

    #[test]
    fn interprocedural_with_witness_stack() {
        let (cfg, mut checker) = plain_check(
            "fn doexec() { e: event execl; done: skip; }
             fn main() { event seteuid_zero; doexec(); }",
        );
        checker.solve();
        let after = cfg.label_node("done").unwrap();
        let w = checker.witness(after).expect("violation inside callee");
        assert_eq!(w.stack.len(), 1, "one unreturned frame: the doexec call");
        assert!(checker.render_witness(&w).contains("o0"));
    }

    #[test]
    fn context_sensitive_no_false_positive() {
        // Calling doexec only after dropping privileges; a
        // context-insensitive treatment of the call would merge contexts.
        let (_, mut checker) = plain_check(
            "fn doexec() { event execl; }
             fn main() {
                 event seteuid_zero;
                 event seteuid_nonzero;
                 doexec();
             }",
        );
        checker.solve();
        assert!(!checker.violated());
    }

    #[test]
    fn two_contexts_distinguished() {
        // doexec is called privileged at one site and unprivileged at the
        // other; matching returns must not leak privilege across sites.
        let (cfg, mut checker) = plain_check(
            "fn doexec() { skip; }
             fn main() {
                 event seteuid_zero;
                 doexec();
                 event seteuid_nonzero;
                 doexec();
                 after: event execl;
                 end: skip;
             }",
        );
        checker.solve();
        let end = cfg.label_node("end").unwrap();
        assert!(
            !checker.violations().contains(&end),
            "privilege was dropped before the exec"
        );
    }

    #[test]
    fn recursion_terminates_and_detects() {
        let (_, mut checker) = plain_check(
            "fn rec() { if (*) { rec(); } else { event execl; } }
             fn main() { event seteuid_zero; rec(); }",
        );
        checker.solve();
        assert!(checker.violated());
    }

    #[test]
    fn pn_violations_match_matched_violations_from_main() {
        // Whole-program checking from main: every frame on a path was
        // entered by a call, so PN adds nothing.
        let (_, mut checker) = plain_check(
            "fn deep() { event execl; }
             fn mid() { deep(); }
             fn main() { event seteuid_zero; if (*) { mid(); } }",
        );
        checker.solve();
        let matched = checker.violations();
        let pn = checker.violations_pn();
        assert_eq!(matched, pn);
        assert!(!matched.is_empty());
    }

    #[test]
    fn chroot_property_end_to_end() {
        let cfg = Cfg::build(
            &Program::parse(
                "fn enter_jail() { event chroot; }
                 fn main() {
                     enter_jail();
                     if (*) { event chdir_root; }
                     danger: event fs_op;
                     after: skip;
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        let spec = PropertySpec::parse(properties::CHROOT_JAIL).unwrap();
        let mut checker = ConstraintChecker::from_spec(&cfg, &spec, "main").unwrap();
        checker.solve();
        let after = cfg.label_node("after").unwrap();
        assert!(
            checker.violations().contains(&after),
            "the no-chdir branch escapes the jail"
        );
    }

    #[test]
    fn parametric_file_state() {
        // Figure 6: fd1 closed, fd2 leaked at the end.
        let src = "fn main() {
            s1: event open(fd1);
            s2: event open(fd2);
            s3: event close(fd1);
            s4: skip;
        }";
        let cfg = Cfg::build(&Program::parse(src).unwrap()).unwrap();
        let spec = PropertySpec::parse(properties::FILE_STATE).unwrap();
        let mut checker = ConstraintChecker::parametric(&cfg, &spec, "main").unwrap();
        checker.solve();
        let s4 = cfg.label_after("s4").unwrap();
        let anns = checker.pc_annotations(s4);
        assert_eq!(anns.len(), 1);
        let accepting = checker.system().algebra().accepting_instances(anns[0]);
        assert_eq!(accepting.len(), 1, "exactly one fd still open");
        let alg = checker.system().algebra();
        let (key, _) = &accepting[0];
        let label = *key.values().next().unwrap();
        assert_eq!(alg.label_name(label), "fd2");
    }
}
