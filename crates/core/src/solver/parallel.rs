//! The deterministic parallel fixpoint engine: a sharded, speculative
//! drain of the same FIFO worklist [`System::solve_bounded`] processes.
//!
//! # Design
//!
//! The sequential drain is a strict FIFO: fact *k*'s effects depend on the
//! state left by facts *0..k*. Parallelizing it while keeping the solved
//! form **byte-identical** — counters, provenance, union-find shape, and a
//! subsequent snapshot image all equal to the sequential solve — therefore
//! splits each BFS generation ("round") into two phases:
//!
//! 1. **Speculate** (parallel, read-only): the round's pending facts are
//!    partitioned by their owning variable's cycle class into per-shard
//!    queues; N scoped worker threads each walk their shard against the
//!    frozen pre-round view (the CoW base plus the read-only pre-round
//!    overlay — no merge has run yet, so `&System` *is* that snapshot) and
//!    precompute a [`Spec`]: the exact emissions the fact will make, or a
//!    conservative [`Spec::Rerun`].
//! 2. **Merge** (sequential, at the round barrier): specs are committed in
//!    the worklist's own FIFO order — fixed shard order falls out of fixed
//!    fact order — running the identical per-fact sequence as
//!    `solve_bounded` (budget check, fuel, provenance pop, counters).
//!    A spec is validated against the live state (union-find roots
//!    unchanged since speculation) and replayed; on any mismatch the fact
//!    falls back to the sequential [`System::process_fact`]. Facts
//!    *pushed* during the merge — including cross-shard consequences whose
//!    arguments are owned by other shards — simply land on the worklist
//!    tail, i.e. on the owning shard's next-round queue.
//!
//! Because the merge phase performs the same per-fact budget checks as the
//! sequential drain, [`Outcome::Interrupted`] leaves exactly the state a
//! sequential solve interrupted at the same step would: unmerged and
//! future-round facts stay queued, nothing is half-committed.
//!
//! # Why speculation is sound
//!
//! * Solved-form maps are append-only during a solve; entries only leave a
//!   variable when a cycle collapse resets a union-find *loser*. A
//!   variable whose root is unchanged since speculation therefore still
//!   has every entry the worker saw, as a prefix of its entry log.
//! * Duplicate inserts have no side effects, so a duplicate observed at
//!   speculation time (and revalidated by root equality) commits as a
//!   plain return.
//! * [`Algebra::try_compose`] never interns: a `Some(id)` is exactly what
//!   the mutable compose would have returned, and a `None` routes that
//!   single walk entry through the mutable compose at merge time
//!   ([`RECOMPUTE`]), keeping annotation-intern order byte-identical.
//! * ε edges under cycle elimination may union variables mid-fact; those
//!   facts are never speculated ([`Spec::Rerun`]).
//! * Clash deduplication depends on merge-order state, so workers emit the
//!   clash unconditionally and the merger replays the dedup check.
//!
//! Deadline and cancellation budgets are inherently time-sensitive; solves
//! under step/term/entry budgets are fully deterministic, parallel or not.

use rasc_obs as obs;

use crate::algebra::{Algebra, AnnId};
use crate::budget::{Budget, Outcome};
use crate::provenance::{ProvKey, Reason};
use crate::term::Variance;

use super::{Clash, Fact, Sink, SnkId, SrcId, System, UndoOp, VarId};

/// Sentinel count for a walk entry whose composition was not answerable
/// read-only: the merger recomputes that entry with the mutable algebra.
const RECOMPUTE: u32 = u32::MAX;

/// Rounds smaller than `threads * DEFAULT_MIN_BATCH` skip the worker spawn
/// and merge inline — the spawn barrier costs more than it saves.
const DEFAULT_MIN_BATCH: usize = 32;

/// What a worker precomputed for one pending fact.
#[derive(Debug)]
enum Spec {
    /// The fact is a no-op edge (self ε-loop or useless annotation):
    /// commit is just the two root lookups.
    NoopEdge,
    /// The fact is a no-op bound (useless annotation): one root lookup.
    NoopLbUb,
    /// Edge already present at speculation time; valid while both roots
    /// are unchanged (append-only monotonicity).
    DupEdge { x: VarId, y: VarId },
    /// Lower/upper bound already present; valid while the root is
    /// unchanged.
    DupLbUb { x: VarId },
    /// A genuine insert with its propagation walks precomputed. Boxed so
    /// the common duplicate/no-op specs stay two words — spec transport
    /// between workers and the merger is a per-fact cost.
    Insert(Box<InsertSpec>),
    /// Not speculatable — the merger runs the sequential step.
    Rerun,
}

/// A precomputed insert: the speculation-time roots (validated at commit)
/// plus the flattened emissions of the fact's two propagation walks.
///
/// `counts[i]` is the number of `ops` entries contributed by walk entry
/// `i` (walk A entries first, then walk B), or [`RECOMPUTE`]. `ops` is the
/// concatenated emission stream of all non-sentinel entries, in walk
/// order.
#[derive(Debug)]
struct InsertSpec {
    x: VarId,
    y: VarId,
    walk_a_len: u32,
    counts: Vec<u32>,
    ops: Vec<EmitOp>,
}

/// One speculated emission: a worklist push or a clash.
#[derive(Debug)]
enum EmitOp {
    Fact(Fact, Reason),
    Clash(Clash),
}

/// Per-solve speculation figures, emitted as `solve.parallel.*` counters
/// at every exit.
#[derive(Debug, Default)]
struct ParallelStats {
    rounds: u64,
    speculated: u64,
    hits: u64,
    reruns: u64,
    /// Wall nanoseconds inside the speculation phase (workers running).
    spec_ns: u64,
    /// Wall nanoseconds inside the serial merge phase.
    merge_ns: u64,
}

impl ParallelStats {
    fn emit(&self) {
        let emit = |name: &'static str, v: u64| {
            if v != 0 {
                obs::counter(name, v);
            }
        };
        emit("solve.parallel.rounds", self.rounds);
        emit("solve.parallel.facts.speculated", self.speculated);
        emit("solve.parallel.spec_hits", self.hits);
        emit("solve.parallel.spec_reruns", self.reruns);
        emit("solve.parallel.spec_ns", self.spec_ns);
        emit("solve.parallel.merge_ns", self.merge_ns);
    }
}

/// The variable that owns a pending fact (its first endpoint) — the
/// sharding key.
fn owner(fact: &Fact) -> VarId {
    match *fact {
        Fact::Edge(x, _, _) | Fact::Lb(x, _, _) | Fact::Ub(x, _, _) => x,
    }
}

/// Worker-local memo over [`Algebra::try_compose`], plus the round-local
/// insert-deduplication set.
///
/// The read-only probe cannot write the algebra's own memo table, so
/// without the compose map every walk entry would recompute its composite
/// from scratch (for the monoid algebra: an image vector allocation per
/// call) where the sequential solver pays one memoized lookup — enough to
/// erase the entire parallel win. Each shard keeps its own cache across
/// rounds; negative entries are purged at each round boundary because the
/// merge phase may have interned the missing composite since.
///
/// `seen` deduplicates insert speculation *within* a round: dense rounds
/// re-derive the same canonical fact many times, and every occurrence
/// after the first commits as a no-op (the sequential solver's failed
/// insert). Sharding sends all occurrences of a canonical fact to the
/// same worker, so a local set suffices to skip their walk builds.
#[derive(Default)]
struct ComposeCache {
    map: std::collections::HashMap<(AnnId, AnnId), Option<AnnId>>,
    seen: std::collections::HashSet<Fact>,
}

impl ComposeCache {
    fn try_compose<A: Algebra>(
        &mut self,
        algebra: &A,
        later: AnnId,
        earlier: AnnId,
    ) -> Option<AnnId> {
        // Monoid law: the identity composes to the other operand. Most
        // walk entries in edge-list workloads carry the identity, and the
        // sequential compose path answers them in a branch — skipping the
        // map keeps the probe competitive on those.
        let id = algebra.identity();
        if later == id {
            return Some(earlier);
        }
        if earlier == id {
            return Some(later);
        }
        *self
            .map
            .entry((later, earlier))
            .or_insert_with(|| algebra.try_compose(later, earlier))
    }

    /// Round-boundary reset: drop negative compose entries (the merge may
    /// have interned the missing composite since) and the previous round's
    /// insert-dedup set.
    fn begin_round(&mut self) {
        self.map.retain(|_, v| v.is_some());
        self.seen.clear();
    }
}

impl<A: Algebra + Sync> System<A> {
    /// Drains the worklist to the fixpoint on `threads` worker threads.
    ///
    /// The resulting solved form — statistics, counters, provenance, and a
    /// subsequent snapshot image — is byte-identical to what
    /// [`System::solve`] would have produced. `threads <= 1` simply runs
    /// the sequential drain.
    pub fn solve_parallel(&mut self, threads: usize) -> Outcome {
        self.solve_parallel_bounded(&Budget::unlimited(), threads)
    }

    /// Bounded variant of [`System::solve_parallel`]: per-fact budget and
    /// cancellation checks behave exactly as in [`System::solve_bounded`],
    /// including what an [`Outcome::Interrupted`] solve leaves pending.
    pub fn solve_parallel_bounded(&mut self, budget: &Budget, threads: usize) -> Outcome {
        self.solve_parallel_tuned(budget, threads, DEFAULT_MIN_BATCH)
    }

    /// Like [`System::solve_parallel_bounded`] with an explicit minimum
    /// per-thread round size (rounds below `threads * min_batch` merge
    /// inline without spawning). Exposed for tests that need to force
    /// worker rounds on tiny systems.
    #[doc(hidden)]
    pub fn solve_parallel_tuned(
        &mut self,
        budget: &Budget,
        threads: usize,
        min_batch: usize,
    ) -> Outcome {
        if threads <= 1 {
            return self.solve_bounded(budget);
        }
        let _span = obs::span("solver.solve.parallel");
        let metered = !budget.is_unlimited();
        let mut meter = budget.start();
        let mut stats = ParallelStats::default();
        let mut caches: Vec<ComposeCache> = (0..threads).map(|_| ComposeCache::default()).collect();
        while !self.worklist.is_empty() {
            // One round = the current BFS generation of the FIFO order.
            let round_len = self.worklist.len();
            stats.rounds += 1;
            obs::histogram("solve.parallel.round.facts", round_len as u64);
            let t0 = std::time::Instant::now();
            let (shard_of, shards) = if round_len < threads.saturating_mul(min_batch) {
                (Vec::new(), Vec::new())
            } else {
                stats.speculated += round_len as u64;
                self.speculate_round(round_len, threads, &mut caches)
            };
            stats.spec_ns += t0.elapsed().as_nanos() as u64;
            let t1 = std::time::Instant::now();
            // Merge phase: commit this round's facts in FIFO order with
            // the identical per-fact sequence as `solve_bounded`. Each
            // shard's specs arrive in that shard's fact order, so
            // following `shard_of` restores the global FIFO order.
            let mut shards: Vec<std::vec::IntoIter<Spec>> =
                shards.into_iter().map(Vec::into_iter).collect();
            for k in 0..round_len {
                let terms = self.vars.len() + self.sources.len() + self.sinks.len();
                if let Some(reason) = meter.check(terms, self.live_entries) {
                    self.interruptions += 1;
                    self.pending_counts.interruptions += 1;
                    self.pending_counts.flush();
                    stats.emit();
                    return Outcome::Interrupted(reason);
                }
                meter.step();
                if metered {
                    self.fuel_spent += 1;
                    self.pending_counts.fuel += 1;
                }
                let Some(fact) = self.worklist.pop_front() else {
                    break;
                };
                let why = self.prov.as_mut().and_then(|p| p.pending.pop_front());
                self.facts_processed += 1;
                self.pending_counts.facts += 1;
                let spec = shard_of
                    .get(k)
                    .and_then(|&s| shards.get_mut(s as usize))
                    .and_then(Iterator::next);
                match spec {
                    Some(spec) => {
                        if self.commit_spec(fact, why, spec) {
                            stats.hits += 1;
                        } else {
                            stats.reruns += 1;
                        }
                    }
                    None => self.process_fact(fact, why),
                }
            }
            stats.merge_ns += t1.elapsed().as_nanos() as u64;
        }
        self.pending_counts.flush();
        stats.emit();
        Outcome::Complete
    }

    /// Phase 1: speculates the round's first `round_len` facts on
    /// `threads` scoped workers, each owning the shards assigned to it by
    /// the facts' owning-variable classes. Returns the per-fact shard
    /// assignment plus each shard's specs in that shard's fact order (the
    /// merged result is independent of the sharding).
    fn speculate_round(
        &self,
        round_len: usize,
        threads: usize,
        caches: &mut [ComposeCache],
    ) -> (Vec<u32>, Vec<Vec<Spec>>) {
        // Shard on the raw owner id: occurrences of one pending fact always
        // name the same variable, so they land on the same worker (which
        // the round-local insert dedup relies on), and skipping `find`
        // keeps this serial pass to one modulo per fact. Facts aliased
        // through different members of a merged class may split across
        // shards; each copy speculates independently and the later commits
        // degrade to the sequential duplicate no-op.
        let shard_of: Vec<u32> = self
            .worklist
            .iter()
            .take(round_len)
            .map(|f| (owner(f).index() % threads) as u32)
            .collect();
        let shards: Vec<Vec<Spec>> = std::thread::scope(|scope| {
            let sys = &*self;
            let shard_of = &shard_of;
            let handles: Vec<_> = caches
                .iter_mut()
                .enumerate()
                .map(|(t, cache)| {
                    scope.spawn(move || {
                        cache.begin_round();
                        let mut out = Vec::new();
                        for (i, fact) in sys.worklist.iter().take(round_len).enumerate() {
                            if shard_of[i] as usize == t {
                                out.push(sys.speculate(*fact, cache));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        (shard_of, shards)
    }
}

impl<A: Algebra> System<A> {
    /// Read-only speculation of one fact against the frozen pre-round
    /// view. Mirrors [`System::process_fact`] step for step.
    fn speculate(&self, fact: Fact, cache: &mut ComposeCache) -> Spec {
        match fact {
            Fact::Edge(x, y, f) => self.speculate_edge(x, y, f, cache),
            Fact::Lb(x, src, g) => self.speculate_lb(x, src, g, cache),
            Fact::Ub(x, snk, h) => self.speculate_ub(x, snk, h, cache),
        }
    }

    fn speculate_edge(&self, x: VarId, y: VarId, f: AnnId, cache: &mut ComposeCache) -> Spec {
        let x = self.find(x);
        let y = self.find(y);
        let id = self.algebra.identity();
        if (x == y && f == id) || !self.algebra.is_useful(f) {
            return Spec::NoopEdge;
        }
        if self.config.cycle_elimination && f == id {
            // Committing an ε edge may run the (mutating) cycle search.
            return Spec::Rerun;
        }
        if self.vars[x.index()].succs.contains(y, f) {
            return Spec::DupEdge { x, y };
        }
        if !cache.seen.insert(Fact::Edge(x, y, f)) {
            // An earlier same-round fact already speculated this insert;
            // by commit time it is a duplicate, which commits as the same
            // no-op a `DupEdge` does. Skip the walk build entirely.
            return Spec::DupEdge { x, y };
        }
        // Pre-size to the frozen walk lengths: the sequential solver pushes
        // into already-grown buffers, so reallocation here is pure overhead.
        let walk = self.vars[x.index()].lbs.len() + self.vars[y.index()].ubs.len();
        let mut counts = Vec::with_capacity(walk);
        let mut ops = Vec::with_capacity(walk);
        // Walk A: x's lower bounds flow across the new edge to y.
        let mut i = 0;
        while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, f, g) {
                Some(h) => {
                    counts.push(1);
                    ops.push(EmitOp::Fact(
                        Fact::Lb(y, src, h),
                        Reason::TransLb {
                            edge: (x, y, f),
                            lb: (x, src, g),
                        },
                    ));
                }
                None => counts.push(RECOMPUTE),
            }
        }
        let walk_a_len = counts.len() as u32;
        // Walk B: y's upper bounds reach back across the edge to x.
        let mut i = 0;
        while let Some((snk, g)) = self.vars[y.index()].ubs.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, g, f) {
                Some(h) => {
                    counts.push(1);
                    ops.push(EmitOp::Fact(
                        Fact::Ub(x, snk, h),
                        Reason::TransUb {
                            edge: (x, y, f),
                            ub: (y, snk, g),
                        },
                    ));
                }
                None => counts.push(RECOMPUTE),
            }
        }
        Spec::Insert(Box::new(InsertSpec {
            x,
            y,
            walk_a_len,
            counts,
            ops,
        }))
    }

    fn speculate_lb(&self, x: VarId, src: SrcId, g: AnnId, cache: &mut ComposeCache) -> Spec {
        let x = self.find(x);
        if !self.algebra.is_useful(g) {
            return Spec::NoopLbUb;
        }
        if self.vars[x.index()].lbs.contains(src, g) {
            return Spec::DupLbUb { x };
        }
        if !cache.seen.insert(Fact::Lb(x, src, g)) {
            return Spec::DupLbUb { x };
        }
        let walk = self.vars[x.index()].succs.len() + self.vars[x.index()].ubs.len();
        let mut counts = Vec::with_capacity(walk);
        let mut ops = Vec::with_capacity(walk);
        // Walk A: the bound flows forward along x's out-edges.
        let mut i = 0;
        while let Some((y, f)) = self.vars[x.index()].succs.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, f, g) {
                Some(h) => {
                    counts.push(1);
                    ops.push(EmitOp::Fact(
                        Fact::Lb(y, src, h),
                        Reason::TransLb {
                            edge: (x, y, f),
                            lb: (x, src, g),
                        },
                    ));
                }
                None => counts.push(RECOMPUTE),
            }
        }
        let walk_a_len = counts.len() as u32;
        // Walk B: the bound meets x's upper bounds (§3.1 resolution).
        let mut i = 0;
        while let Some((snk, h)) = self.vars[x.index()].ubs.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, h, g) {
                Some(composed) => {
                    let before = ops.len();
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.speculate_resolve(src, composed, snk, why, &mut ops);
                    counts.push((ops.len() - before) as u32);
                }
                None => counts.push(RECOMPUTE),
            }
        }
        Spec::Insert(Box::new(InsertSpec {
            x,
            y: x,
            walk_a_len,
            counts,
            ops,
        }))
    }

    fn speculate_ub(&self, x: VarId, snk: SnkId, h: AnnId, cache: &mut ComposeCache) -> Spec {
        let x = self.find(x);
        if !self.algebra.is_useful(h) {
            return Spec::NoopLbUb;
        }
        if self.vars[x.index()].ubs.contains(snk, h) {
            return Spec::DupLbUb { x };
        }
        if !cache.seen.insert(Fact::Ub(x, snk, h)) {
            return Spec::DupLbUb { x };
        }
        let walk = self.vars[x.index()].preds.len() + self.vars[x.index()].lbs.len();
        let mut counts = Vec::with_capacity(walk);
        let mut ops = Vec::with_capacity(walk);
        // Walk A: the bound flows backward along x's in-edges.
        let mut i = 0;
        while let Some((w, f)) = self.vars[x.index()].preds.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, h, f) {
                Some(composed) => {
                    counts.push(1);
                    ops.push(EmitOp::Fact(
                        Fact::Ub(w, snk, composed),
                        Reason::TransUb {
                            edge: (w, x, f),
                            ub: (x, snk, h),
                        },
                    ));
                }
                None => counts.push(RECOMPUTE),
            }
        }
        let walk_a_len = counts.len() as u32;
        // Walk B: the bound meets x's lower bounds.
        let mut i = 0;
        while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
            i += 1;
            match cache.try_compose(&self.algebra, h, g) {
                Some(composed) => {
                    let before = ops.len();
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.speculate_resolve(src, composed, snk, why, &mut ops);
                    counts.push((ops.len() - before) as u32);
                }
                None => counts.push(RECOMPUTE),
            }
        }
        Spec::Insert(Box::new(InsertSpec {
            x,
            y: x,
            walk_a_len,
            counts,
            ops,
        }))
    }

    /// Read-only mirror of [`System::resolve`]: appends the emissions the
    /// sequential resolution would make.
    ///
    /// Clashes already in the frozen `clash_set` are dropped here rather
    /// than recorded: the set is append-only within a solve, so a clash
    /// that is a duplicate at speculation time is still a duplicate at
    /// commit time, where the sequential path discards it with no counter
    /// or provenance effect. Dense meet-heavy workloads produce millions
    /// of repeat mismatches per round — eliding them up front is what
    /// keeps the serial merge phase short. Fresh clashes are still
    /// recorded and deduplicated by the merger (first commit wins).
    fn speculate_resolve(
        &self,
        src: SrcId,
        f: AnnId,
        snk: SnkId,
        why: Reason,
        ops: &mut Vec<EmitOp>,
    ) {
        if !self.algebra.is_useful(f) {
            return;
        }
        let src_cons = self.source(src).cons;
        match self.sink(snk) {
            Sink::Cons { cons, args } => {
                let cons = *cons;
                if src_cons != cons {
                    let clash = Clash::ConstructorMismatch {
                        lhs: src_cons,
                        rhs: cons,
                        ann: f,
                    };
                    if !self.clash_set.contains(&clash) {
                        ops.push(EmitOp::Clash(clash));
                    }
                    return;
                }
                let signature = &self.constructors.index(cons.index()).signature;
                for (i, &snk_arg) in args.iter().enumerate() {
                    let src_arg = self.source(src).args[i];
                    match signature[i] {
                        Variance::Covariant => {
                            ops.push(EmitOp::Fact(Fact::Edge(src_arg, snk_arg, f), why));
                        }
                        Variance::Contravariant => {
                            if f == self.algebra.identity() {
                                ops.push(EmitOp::Fact(Fact::Edge(snk_arg, src_arg, f), why));
                            } else {
                                let clash = Clash::ContravariantAnnotated {
                                    cons,
                                    position: i,
                                    ann: f,
                                };
                                if !self.clash_set.contains(&clash) {
                                    ops.push(EmitOp::Clash(clash));
                                }
                            }
                        }
                    }
                }
            }
            Sink::Proj {
                cons,
                index,
                target,
            } => {
                if src_cons == *cons {
                    let src_arg = self.source(src).args[*index];
                    ops.push(EmitOp::Fact(Fact::Edge(src_arg, *target, f), why));
                }
            }
        }
    }

    /// Phase 2: commits one fact using its spec when still valid, falling
    /// back to the sequential step otherwise. Returns whether the spec was
    /// used (for the `spec_hits`/`spec_reruns` counters).
    fn commit_spec(&mut self, fact: Fact, why: Option<Reason>, spec: Spec) -> bool {
        match spec {
            Spec::Rerun => self.rerun(fact, why),
            Spec::NoopEdge => {
                let Fact::Edge(x, y, _) = fact else {
                    return self.rerun(fact, why);
                };
                self.find_mut(x);
                self.find_mut(y);
                true
            }
            Spec::NoopLbUb => {
                let (Fact::Lb(x, _, _) | Fact::Ub(x, _, _)) = fact else {
                    return self.rerun(fact, why);
                };
                self.find_mut(x);
                true
            }
            Spec::DupEdge { x, y } => {
                let Fact::Edge(fx, fy, _) = fact else {
                    return self.rerun(fact, why);
                };
                if self.find_mut(fx) == x && self.find_mut(fy) == y {
                    // Still a duplicate (append-only): no side effects.
                    true
                } else {
                    self.rerun(fact, why)
                }
            }
            Spec::DupLbUb { x } => {
                let (Fact::Lb(fx, _, _) | Fact::Ub(fx, _, _)) = fact else {
                    return self.rerun(fact, why);
                };
                if self.find_mut(fx) == x {
                    true
                } else {
                    self.rerun(fact, why)
                }
            }
            Spec::Insert(spec) => self.commit_insert(fact, why, *spec),
        }
    }

    /// Sequential fallback. `process_fact` re-runs `find_mut`, which is
    /// idempotent (and journal-silent) after any compression the
    /// validation lookups already performed.
    fn rerun(&mut self, fact: Fact, why: Option<Reason>) -> bool {
        self.process_fact(fact, why);
        false
    }

    /// Replays one precomputed insert: the exact mutation sequence of
    /// [`System::process_fact`], with walk-prefix emissions replayed from
    /// the spec and sentinel/tail entries computed live.
    fn commit_insert(&mut self, fact: Fact, why: Option<Reason>, spec: InsertSpec) -> bool {
        match fact {
            Fact::Edge(fx, fy, f) => {
                let x = self.find_mut(fx);
                let y = self.find_mut(fy);
                if x != spec.x || y != spec.y {
                    return self.rerun(fact, why);
                }
                if !self.vars[x.index()].succs.insert(y, f) {
                    // Became a duplicate earlier this round; the
                    // sequential solve returns here too.
                    return true;
                }
                self.live_entries += 1;
                self.pending_counts.edges_added += 1;
                self.record_prov(ProvKey::Edge(x, y, f), why);
                self.vars[y.index()].preds.insert(x, f);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Succ(x, y, f));
                    j.ops.push(UndoOp::Pred(x, y, f));
                }
                self.touch(x);
                self.touch(y);
                if self.config.cycle_elimination
                    && f == self.algebra.identity()
                    && self.try_collapse_cycle(y, x)
                {
                    return true;
                }
                // Frozen walk prefixes replay precomputed emissions without
                // re-reading the entry log (append-only per root, so the
                // frozen indices are stable); only sentinel entries and the
                // live tail touch the tables.
                let mut ops = spec.ops.into_iter();
                let walk_a = spec.walk_a_len as usize;
                for idx in 0..walk_a {
                    if spec.counts[idx] != RECOMPUTE {
                        for _ in 0..spec.counts[idx] {
                            self.replay(ops.next());
                        }
                    } else if let Some((src, g)) = self.vars[x.index()].lbs.entry(idx) {
                        let h = self.algebra.compose(f, g);
                        let why = Reason::TransLb {
                            edge: (x, y, f),
                            lb: (x, src, g),
                        };
                        self.push_fact(Fact::Lb(y, src, h), why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = walk_a;
                while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(f, g);
                    let why = Reason::TransLb {
                        edge: (x, y, f),
                        lb: (x, src, g),
                    };
                    self.push_fact(Fact::Lb(y, src, h), why);
                }
                let frozen_b = spec.counts.len() - walk_a;
                for j in 0..frozen_b {
                    if spec.counts[walk_a + j] != RECOMPUTE {
                        for _ in 0..spec.counts[walk_a + j] {
                            self.replay(ops.next());
                        }
                    } else if let Some((snk, g)) = self.vars[y.index()].ubs.entry(j) {
                        let h = self.algebra.compose(g, f);
                        let why = Reason::TransUb {
                            edge: (x, y, f),
                            ub: (y, snk, g),
                        };
                        self.push_fact(Fact::Ub(x, snk, h), why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = frozen_b;
                while let Some((snk, g)) = self.vars[y.index()].ubs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(g, f);
                    let why = Reason::TransUb {
                        edge: (x, y, f),
                        ub: (y, snk, g),
                    };
                    self.push_fact(Fact::Ub(x, snk, h), why);
                }
                debug_assert!(ops.next().is_none(), "unconsumed speculated ops");
                true
            }
            Fact::Lb(fx, src, g) => {
                let x = self.find_mut(fx);
                if x != spec.x {
                    return self.rerun(fact, why);
                }
                let head = self.source(src).cons;
                let data = &mut self.vars[x.index()];
                let lbs_by_cons = &mut data.lbs_by_cons;
                if !data.lbs.insert_with(src, g, || {
                    lbs_by_cons.push(head, src);
                }) {
                    return true;
                }
                self.live_entries += 1;
                self.pending_counts.lbs_added += 1;
                self.record_prov(ProvKey::Lb(x, src, g), why);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Lb(x, src, g));
                }
                self.touch(x);
                let mut ops = spec.ops.into_iter();
                let walk_a = spec.walk_a_len as usize;
                for idx in 0..walk_a {
                    if spec.counts[idx] != RECOMPUTE {
                        for _ in 0..spec.counts[idx] {
                            self.replay(ops.next());
                        }
                    } else if let Some((y, f)) = self.vars[x.index()].succs.entry(idx) {
                        let h = self.algebra.compose(f, g);
                        let why = Reason::TransLb {
                            edge: (x, y, f),
                            lb: (x, src, g),
                        };
                        self.push_fact(Fact::Lb(y, src, h), why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = walk_a;
                while let Some((y, f)) = self.vars[x.index()].succs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(f, g);
                    let why = Reason::TransLb {
                        edge: (x, y, f),
                        lb: (x, src, g),
                    };
                    self.push_fact(Fact::Lb(y, src, h), why);
                }
                let frozen_b = spec.counts.len() - walk_a;
                for j in 0..frozen_b {
                    if spec.counts[walk_a + j] != RECOMPUTE {
                        for _ in 0..spec.counts[walk_a + j] {
                            self.replay(ops.next());
                        }
                    } else if let Some((snk, h)) = self.vars[x.index()].ubs.entry(j) {
                        let composed = self.algebra.compose(h, g);
                        let why = Reason::Meet {
                            var: x,
                            src,
                            src_ann: g,
                            snk,
                            snk_ann: h,
                        };
                        self.resolve(src, composed, snk, why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = frozen_b;
                while let Some((snk, h)) = self.vars[x.index()].ubs.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, g);
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.resolve(src, composed, snk, why);
                }
                debug_assert!(ops.next().is_none(), "unconsumed speculated ops");
                true
            }
            Fact::Ub(fx, snk, h) => {
                let x = self.find_mut(fx);
                if x != spec.x {
                    return self.rerun(fact, why);
                }
                if !self.vars[x.index()].ubs.insert(snk, h) {
                    return true;
                }
                self.live_entries += 1;
                self.pending_counts.ubs_added += 1;
                self.record_prov(ProvKey::Ub(x, snk, h), why);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Ub(x, snk, h));
                }
                self.touch(x);
                let mut ops = spec.ops.into_iter();
                let walk_a = spec.walk_a_len as usize;
                for idx in 0..walk_a {
                    if spec.counts[idx] != RECOMPUTE {
                        for _ in 0..spec.counts[idx] {
                            self.replay(ops.next());
                        }
                    } else if let Some((w, f)) = self.vars[x.index()].preds.entry(idx) {
                        let composed = self.algebra.compose(h, f);
                        let why = Reason::TransUb {
                            edge: (w, x, f),
                            ub: (x, snk, h),
                        };
                        self.push_fact(Fact::Ub(w, snk, composed), why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = walk_a;
                while let Some((w, f)) = self.vars[x.index()].preds.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, f);
                    let why = Reason::TransUb {
                        edge: (w, x, f),
                        ub: (x, snk, h),
                    };
                    self.push_fact(Fact::Ub(w, snk, composed), why);
                }
                let frozen_b = spec.counts.len() - walk_a;
                for j in 0..frozen_b {
                    if spec.counts[walk_a + j] != RECOMPUTE {
                        for _ in 0..spec.counts[walk_a + j] {
                            self.replay(ops.next());
                        }
                    } else if let Some((src, g)) = self.vars[x.index()].lbs.entry(j) {
                        let composed = self.algebra.compose(h, g);
                        let why = Reason::Meet {
                            var: x,
                            src,
                            src_ann: g,
                            snk,
                            snk_ann: h,
                        };
                        self.resolve(src, composed, snk, why);
                    } else {
                        debug_assert!(false, "frozen walk entry missing at commit");
                    }
                }
                let mut i = frozen_b;
                while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, g);
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.resolve(src, composed, snk, why);
                }
                debug_assert!(ops.next().is_none(), "unconsumed speculated ops");
                true
            }
        }
    }

    /// Replays one speculated emission with the exact sequential side
    /// effects.
    fn replay(&mut self, op: Option<EmitOp>) {
        match op {
            Some(EmitOp::Fact(fact, why)) => self.push_fact(fact, why),
            Some(EmitOp::Clash(clash)) => {
                if self.clash_set.insert(clash.clone()) {
                    self.clashes.push(clash);
                    self.pending_counts.clashes += 1;
                }
            }
            None => debug_assert!(false, "speculated op stream exhausted early"),
        }
    }
}
