//! The bidirectional constraint solver (paper §3).
//!
//! The solver maintains, for every variable `X`:
//!
//! * annotated transitive edges `X ⊆^f Y`;
//! * *lower bounds*: constructor expressions that flow into `X`, with the
//!   composed annotation of their path (`c(…) ⊆^f X`);
//! * *upper bounds*: constructor patterns and projections that `X` flows
//!   into (`X ⊆^f c(…)`, `X ⊆^f c⁻ⁱ(…) ⊆ Z`).
//!
//! A worklist propagates lower bounds forward and upper bounds backward
//! (hence *bidirectional*), composing annotations with the algebra's `∘` at
//! each step — the paper's transitive-closure rule. When a lower bound
//! meets an upper bound at a variable, the §3.1 resolution rules fire:
//! decomposition, mismatch (clash), or projection.
//!
//! Following the §8 optimization, constructor-annotation variables (`α`,
//! `β`, …) are never materialized during solving; queries reconstruct the
//! composed constructor annotations on demand (see the query methods).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rasc_obs as obs;

mod parallel;

use crate::algebra::{Algebra, AnnId};
use crate::annset::{AnnMap, AnnSet};
use crate::budget::{Budget, Outcome};
use crate::constraint::{Constraint, SetExpr};
use crate::error::{CoreError, Result};
use crate::id_u32;
use crate::provenance::{ExplainStep, ProvKey, Provenance, Reason};
use crate::snapshot::{
    ByteReader, ByteWriter, SnapshotAlgebra, SnapshotError, SnapshotReader, SnapshotWriter,
    TAG_ALGEBRA, TAG_SOLVED,
};
use crate::term::{ConsId, Constructor, Variance};

/// Local result alias for the snapshot paths (`Result` in this module is
/// the solver's [`CoreError`] alias).
type SnapResult<T> = std::result::Result<T, SnapshotError>;

/// An interned set variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Builds a variable id from a raw index. The caller must ensure the
    /// index is valid for the system it will be used with.
    pub fn from_index(index: usize) -> VarId {
        VarId(id_u32(index, "variable index"))
    }

    /// The variable's index within its system.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned source (constructor expression used as a lower bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct SrcId(u32);

/// An interned sink (upper-bound pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct SnkId(u32);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Source {
    pub cons: ConsId,
    pub args: Vec<VarId>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Sink {
    /// `⊆ c(Y₁, …)`.
    Cons { cons: ConsId, args: Vec<VarId> },
    /// `⊆ c⁻ⁱ(·) ⊆ target` — the upper-bound half of a projection
    /// constraint `c⁻ⁱ(X) ⊆ target` attached to `X`.
    Proj {
        cons: ConsId,
        index: usize,
        target: VarId,
    },
}

/// A manifest inconsistency discovered during solving (§3.1's
/// "no solution" rule). Recorded rather than aborting: analyses typically
/// want all inconsistencies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Clash {
    /// `c(…) ⊆^f d(…)` with `c ≠ d`.
    ConstructorMismatch {
        /// Left-hand constructor.
        lhs: ConsId,
        /// Right-hand constructor.
        rhs: ConsId,
        /// The path annotation under which they met.
        ann: AnnId,
    },
    /// A non-ε-annotated constraint reached a contravariant constructor
    /// position, for which the paper defines no propagation rule.
    ContravariantAnnotated {
        /// The constructor involved.
        cons: ConsId,
        /// The contravariant position (0-based).
        position: usize,
        /// The offending annotation.
        ann: AnnId,
    },
}

/// A constructor-expression key: head constructor plus argument variables.
pub(crate) type ExprKey = (ConsId, Vec<VarId>);

/// A resolved source/sink meeting: `(source key, sink key, g, h)`.
pub(crate) type MeetEntry = (ExprKey, ExprKey, AnnId, AnnId);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Fact {
    Edge(VarId, VarId, AnnId),
    Lb(VarId, SrcId, AnnId),
    Ub(VarId, SnkId, AnnId),
}

/// One reversible solver mutation, recorded while an epoch is open so
/// [`System::pop_epoch`] can undo exactly the delta (BANSHEE-style
/// backtracking).
#[derive(Debug)]
enum UndoOp {
    /// Remove annotation `a` from `vars[x].succs[y]`.
    Succ(VarId, VarId, AnnId),
    /// Remove annotation `a` from `vars[y].preds[x]`.
    Pred(VarId, VarId, AnnId),
    /// Remove annotation `a` from `vars[x].lbs[src]`.
    Lb(VarId, SrcId, AnnId),
    /// Remove annotation `a` from `vars[x].ubs[snk]`.
    Ub(VarId, SnkId, AnnId),
    /// Restore a union-find parent pointer (covers both unions and path
    /// compression, so pre-epoch classes survive rollback intact).
    Parent { idx: u32, old: u32 },
    /// Restore a variable's solved-form data moved out by a cycle
    /// collapse.
    VarData { idx: u32, data: Box<VarData> },
    /// Remove a projection-merging memo entry.
    ProjMerge(ConsId, usize, VarId),
    /// Remove a provenance record.
    Prov(ProvKey),
}

/// A snapshot of the monotone solver dimensions at [`System::push_epoch`]
/// time; everything created past these watermarks is dropped on rollback.
#[derive(Debug, Clone, Copy)]
struct EpochMark {
    ops_len: usize,
    n_vars: usize,
    n_constructors: usize,
    n_sources: usize,
    n_sinks: usize,
    n_constraints: usize,
    n_clashes: usize,
    facts_processed: usize,
    cycles_collapsed: usize,
    fuel_spent: usize,
    interruptions: usize,
    depth_limit_hits: usize,
}

/// The rollback journal: undo ops plus a stack of epoch marks.
#[derive(Debug, Default)]
struct Journal {
    ops: Vec<UndoOp>,
    marks: Vec<EpochMark>,
}

#[derive(Debug, Default, Clone)]
struct VarData {
    /// Interned diagnostic name (`Arc` so a copy-on-write fork shares
    /// every name instead of re-allocating thousands of strings).
    name: Arc<str>,
    /// `X ⊆^f Y` edges (indexed by endpoint, cursor log for propagation).
    succs: AnnMap<VarId>,
    preds: AnnMap<VarId>,
    lbs: AnnMap<SrcId>,
    ubs: AnnMap<SnkId>,
    /// Constructor-indexed lower-bound buckets: the live `lbs` keys whose
    /// source has head `c`, so `lower_bound_annotations`/pattern queries
    /// never rescan unrelated lower bounds (Heintze–McAllester-style
    /// constructor bucketing).
    lbs_by_cons: ConsIndex,
}

/// The per-constructor lower-bound buckets, copy-on-write layered like
/// [`AnnMap`]: an immutable `Arc`-shared base plus an overlay of buckets
/// grown since the fork. Reads chain both layers; writes (and epoch
/// rollback, which only ever removes post-fork entries) touch the overlay
/// alone.
#[derive(Debug, Default, Clone)]
struct ConsIndex {
    base: Option<Arc<HashMap<ConsId, Vec<SrcId>>>>,
    over: HashMap<ConsId, Vec<SrcId>>,
}

impl ConsIndex {
    fn push(&mut self, head: ConsId, src: SrcId) {
        self.over.entry(head).or_default().push(src);
    }

    /// Removes the most recent overlay bucket entry for `src` (rollback
    /// path: reverse-order undo puts it at the back).
    fn remove_last(&mut self, head: ConsId, src: SrcId) {
        if let Some(bucket) = self.over.get_mut(&head) {
            if let Some(pos) = bucket.iter().rposition(|&s| s == src) {
                bucket.remove(pos);
            }
            if bucket.is_empty() {
                self.over.remove(&head);
            }
        }
    }

    /// The sources with head `c`, base bucket first.
    fn bucket(&self, c: ConsId) -> impl Iterator<Item = SrcId> + '_ {
        let base: &[SrcId] = self
            .base
            .as_deref()
            .and_then(|b| b.get(&c))
            .map_or(&[], Vec::as_slice);
        let over: &[SrcId] = self.over.get(&c).map_or(&[], Vec::as_slice);
        base.iter().copied().chain(over.iter().copied())
    }

    /// Flattens the overlay onto the base (see [`AnnMap::freeze`]).
    fn freeze(&mut self) {
        if self.over.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(b) => Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            None => HashMap::new(),
        };
        for (head, bucket) in std::mem::take(&mut self.over) {
            core.entry(head).or_default().extend(bucket);
        }
        self.base = Some(Arc::new(core));
    }
}

/// An append-only vector with a copy-on-write base: the frozen prefix is
/// `Arc`-shared between forks, the tail holds everything pushed since.
/// Epoch truncation watermarks are always at or past the base length
/// (epochs only open after a fork), so `truncate` never has to cut into
/// the shared prefix.
#[derive(Debug, Clone)]
struct CowVec<T> {
    base: Option<Arc<Vec<T>>>,
    tail: Vec<T>,
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec {
            base: None,
            tail: Vec::new(),
        }
    }
}

impl<T: Clone> CowVec<T> {
    fn from_vec(v: Vec<T>) -> CowVec<T> {
        CowVec {
            base: None,
            tail: v,
        }
    }

    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len())
    }

    fn len(&self) -> usize {
        self.base_len() + self.tail.len()
    }

    fn get(&self, i: usize) -> Option<&T> {
        let nb = self.base_len();
        if i < nb {
            self.base.as_deref().map(|b| &b[i])
        } else {
            self.tail.get(i - nb)
        }
    }

    /// Panicking index (mirrors `Vec` indexing; ids are validated on
    /// construction).
    fn index(&self, i: usize) -> &T {
        self.get(i).expect("index within CowVec bounds")
    }

    fn push(&mut self, value: T) {
        self.tail.push(value);
    }

    /// Truncates to `n` total entries; `n` must not cut into the frozen
    /// base (guaranteed by the epoch-after-fork discipline).
    fn truncate(&mut self, n: usize) {
        let nb = self.base_len();
        debug_assert!(n >= nb || self.len() <= n);
        self.tail.truncate(n.saturating_sub(nb));
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        self.base
            .as_deref()
            .map(|b| b.iter())
            .into_iter()
            .flatten()
            .chain(self.tail.iter())
    }

    /// Moves the tail into the shared base (reusing the `Arc` when the
    /// tail is empty).
    fn freeze(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(b) => Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            None => Vec::new(),
        };
        core.append(&mut self.tail);
        self.base = Some(Arc::new(core));
    }
}

/// An interning table (id ↔ value both ways) with a copy-on-write base,
/// used for the solver's source and sink tables. The frozen prefix of the
/// id space and its reverse map are `Arc`-shared; values interned since
/// the fork live in the overlay. Truncation (epoch rollback) only ever
/// drops overlay entries.
#[derive(Debug, Clone)]
struct InternTable<T> {
    base: Option<Arc<InternCore<T>>>,
    list: Vec<T>,
    ids: HashMap<T, u32>,
}

impl<T> Default for InternTable<T> {
    fn default() -> Self {
        InternTable {
            base: None,
            list: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct InternCore<T> {
    list: Vec<T>,
    ids: HashMap<T, u32>,
}

impl<T> Default for InternCore<T> {
    fn default() -> Self {
        InternCore {
            list: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + std::hash::Hash> InternTable<T> {
    fn from_parts(list: Vec<T>, ids: HashMap<T, u32>) -> InternTable<T> {
        InternTable {
            base: None,
            list,
            ids,
        }
    }

    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.list.len())
    }

    fn len(&self) -> usize {
        self.base_len() + self.list.len()
    }

    fn get(&self, i: usize) -> Option<&T> {
        let nb = self.base_len();
        if i < nb {
            self.base.as_deref().map(|b| &b.list[i])
        } else {
            self.list.get(i - nb)
        }
    }

    /// Panicking index (ids handed out by `intern` are always in range).
    fn index(&self, i: usize) -> &T {
        self.get(i).expect("index within InternTable bounds")
    }

    fn lookup(&self, value: &T) -> Option<u32> {
        self.ids
            .get(value)
            .or_else(|| self.base.as_deref().and_then(|b| b.ids.get(value)))
            .copied()
    }

    /// Interns `value`, returning its stable id (existing id when already
    /// present in either layer).
    fn intern(&mut self, value: T, what: &'static str) -> u32 {
        if let Some(id) = self.lookup(&value) {
            return id;
        }
        let id = id_u32(self.len(), what);
        self.ids.insert(value.clone(), id);
        self.list.push(value);
        id
    }

    /// Truncates to `n` total entries, dropping overlay reverse-map
    /// entries alongside; `n` never cuts into the frozen base.
    fn truncate(&mut self, n: usize) {
        let nb = self.base_len();
        debug_assert!(n >= nb || self.len() <= n);
        for value in self.list.drain(n.saturating_sub(nb)..) {
            self.ids.remove(&value);
        }
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        self.base
            .as_deref()
            .map(|b| b.list.iter())
            .into_iter()
            .flatten()
            .chain(self.list.iter())
    }

    /// Moves the overlay into the shared base (reusing the `Arc` when the
    /// overlay is empty).
    fn freeze(&mut self) {
        if self.list.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(b) => Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            None => InternCore::default(),
        };
        core.list.append(&mut self.list);
        core.ids.extend(std::mem::take(&mut self.ids));
        self.base = Some(Arc::new(core));
    }
}

/// Aggregate counters describing a solved system, for benchmarks and
/// regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of set variables.
    pub vars: usize,
    /// Number of constructor declarations.
    pub constructors: usize,
    /// Distinct annotated variable-variable edges.
    pub edges: usize,
    /// Distinct annotated lower-bound entries.
    pub lower_bounds: usize,
    /// Distinct annotated upper-bound entries.
    pub upper_bounds: usize,
    /// The largest lower-bound entry count on any single variable — the
    /// paper's §4 per-variable bound is `n · |F_M^≡|`.
    pub max_lower_bounds_per_var: usize,
    /// The largest upper-bound entry count on any single variable.
    pub max_upper_bounds_per_var: usize,
    /// Worklist facts processed (including duplicates).
    pub facts_processed: usize,
    /// Interned annotations in the algebra.
    pub annotations: usize,
    /// Variables collapsed by online cycle elimination.
    pub cycles_collapsed: usize,
    /// Worklist steps charged against a *limited* [`Budget`] (unlimited
    /// solves consume no fuel).
    pub fuel_spent: usize,
    /// Bounded solves that stopped on a budget axis
    /// ([`Outcome::Interrupted`]).
    pub interruptions: usize,
    /// Online cycle searches abandoned at the configured depth bound
    /// ([`SolverConfig::cycle_search_depth`]).
    pub depth_limit_hits: usize,
}

/// Tuning knobs for the bidirectional solver: the §8 engineering the
/// paper inherits from BANSHEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Online partial cycle elimination (Fähndrich et al., cited as \[7\]):
    /// ε-annotated constraint cycles imply variable equality; members are
    /// collapsed with a union-find so work is not repeated around loops.
    pub cycle_elimination: bool,
    /// Projection merging (Su et al., cited as \[27\]): multiple projections
    /// `c⁻ⁱ(Y) ⊆ Z₁, Z₂, …` share one auxiliary variable so each
    /// component edge is discovered once.
    pub projection_merging: bool,
    /// Depth bound for the online cycle search (per inserted ε edge).
    pub cycle_search_depth: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            cycle_elimination: true,
            projection_merging: true,
            cycle_search_depth: 32,
        }
    }
}

/// An online bidirectional solver for regularly annotated set constraints.
///
/// Constraints can be added at any time ([`System::add`] /
/// [`System::add_ann`]); [`System::solve`] drains the worklist. Adding more
/// constraints after solving and re-solving is supported (the separate /
/// online analysis capability of §5.1).
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct System<A: Algebra> {
    algebra: A,
    constructors: CowVec<Constructor>,
    vars: Vec<VarData>,
    sources: InternTable<Source>,
    sinks: InternTable<Sink>,
    worklist: VecDeque<Fact>,
    constraints: CowVec<Constraint>,
    clashes: Vec<Clash>,
    clash_set: HashSet<Clash>,
    facts_processed: usize,
    config: SolverConfig,
    /// Union-find parents for cycle elimination (self-parent = root).
    parent: Vec<u32>,
    /// Memo for projection merging: (constructor, index, subject) → aux.
    proj_merge: HashMap<(ConsId, usize, VarId), VarId>,
    /// Variables collapsed by cycle elimination.
    cycles_collapsed: usize,
    /// Per-variable mutation stamps: `versions[v]` is the value of
    /// `mutation_counter` when `v`'s solved-form data last changed. Query
    /// caches compare stamps to invalidate only results whose dependency
    /// variables actually changed.
    versions: Vec<u64>,
    /// Monotone mutation counter (never decreases, not even on rollback,
    /// so stale cache stamps can never be revalidated by accident).
    mutation_counter: u64,
    /// Live solved-form entry count (annotated edges + lower bounds +
    /// upper bounds), maintained incrementally so budget checks are O(1).
    live_entries: usize,
    /// Present while at least one epoch is open.
    journal: Option<Journal>,
    /// Worklist steps charged against limited budgets.
    fuel_spent: usize,
    /// Bounded solves interrupted by their budget.
    interruptions: usize,
    /// Cycle searches abandoned at the depth bound.
    depth_limit_hits: usize,
    /// Present once provenance recording is enabled.
    prov: Option<Box<Provenance>>,
    /// Observability counter deltas not yet emitted. Updating a plain
    /// field keeps the hot path free of dispatch; deltas are flushed as
    /// [`obs`] counter events at solve boundaries and after rollbacks.
    pending_counts: PendingCounts,
    /// Reusable step-path buffers (see [`SolverScratch`]).
    scratch: SolverScratch,
}

/// Counter deltas accumulated between flush points (see
/// [`System::solve_bounded`] and [`System::pop_epoch`]). Each field maps
/// to one monotone `obs` counter; `added`/`removed` (and `…`/
/// `….rolled_back`) pairs mirror every mutation of the corresponding
/// solver statistic, so a [`rasc_obs::Recorder`] installed for a system's
/// whole lifetime reconciles exactly with its final [`SolverStats`].
#[derive(Debug, Default)]
struct PendingCounts {
    edges_added: u64,
    edges_removed: u64,
    lbs_added: u64,
    lbs_removed: u64,
    ubs_added: u64,
    ubs_removed: u64,
    facts: u64,
    facts_rolled_back: u64,
    fuel: u64,
    fuel_rolled_back: u64,
    cycles_collapsed: u64,
    cycles_uncollapsed: u64,
    clashes: u64,
    clashes_rolled_back: u64,
    interruptions: u64,
    interruptions_rolled_back: u64,
    depth_limit_hits: u64,
    depth_limit_hits_rolled_back: u64,
}

/// Reusable containers for the online cycle search. Allocating these per
/// ε edge made deep-chain workloads superlinear (every budget-exhausting
/// search re-grew four containers from empty); `clear` keeps capacity.
#[derive(Debug, Default)]
struct CycleScratch {
    stack: Vec<VarId>,
    visited: HashSet<VarId>,
    path: Vec<VarId>,
    parent_of: HashMap<VarId, VarId>,
}

impl CycleScratch {
    fn clear(&mut self) {
        self.stack.clear();
        self.visited.clear();
        self.path.clear();
        self.parent_of.clear();
    }
}

/// Per-[`System`] scratch space for the step path, taken with `mem::take`
/// around each use so capacity survives across facts. Never serialized and
/// never part of the solved form.
#[derive(Debug, Default)]
struct SolverScratch {
    cycle: CycleScratch,
    resolve_src_args: Vec<VarId>,
    resolve_snk_args: Vec<VarId>,
    resolve_variances: Vec<Variance>,
}

impl PendingCounts {
    /// Emits every nonzero delta as an `obs` counter event and resets it.
    /// Deltas are reset even when no sink is installed, so a sink only
    /// ever observes mutations made while it was installed.
    fn flush(&mut self) {
        let emit = |name: &'static str, v: &mut u64| {
            if *v != 0 {
                obs::counter(name, *v);
                *v = 0;
            }
        };
        emit("solver.edges.added", &mut self.edges_added);
        emit("solver.edges.removed", &mut self.edges_removed);
        emit("solver.lbs.added", &mut self.lbs_added);
        emit("solver.lbs.removed", &mut self.lbs_removed);
        emit("solver.ubs.added", &mut self.ubs_added);
        emit("solver.ubs.removed", &mut self.ubs_removed);
        emit("solver.facts", &mut self.facts);
        emit("solver.facts.rolled_back", &mut self.facts_rolled_back);
        emit("solver.fuel", &mut self.fuel);
        emit("solver.fuel.rolled_back", &mut self.fuel_rolled_back);
        emit("solver.cycles.collapsed", &mut self.cycles_collapsed);
        emit("solver.cycles.uncollapsed", &mut self.cycles_uncollapsed);
        emit("solver.clashes", &mut self.clashes);
        emit("solver.clashes.rolled_back", &mut self.clashes_rolled_back);
        emit("solver.interruptions", &mut self.interruptions);
        emit(
            "solver.interruptions.rolled_back",
            &mut self.interruptions_rolled_back,
        );
        emit("solver.depth_limit_hits", &mut self.depth_limit_hits);
        emit(
            "solver.depth_limit_hits.rolled_back",
            &mut self.depth_limit_hits_rolled_back,
        );
    }
}

impl<A: Algebra> System<A> {
    /// Creates an empty system over the given annotation algebra, with the
    /// default optimizations (see [`SolverConfig`]).
    pub fn new(algebra: A) -> System<A> {
        Self::with_config(algebra, SolverConfig::default())
    }

    /// Creates an empty system with explicit solver configuration (used by
    /// the ablation benchmarks).
    pub fn with_config(algebra: A, config: SolverConfig) -> System<A> {
        System {
            algebra,
            constructors: CowVec::default(),
            vars: Vec::new(),
            sources: InternTable::default(),
            sinks: InternTable::default(),
            worklist: VecDeque::new(),
            constraints: CowVec::default(),
            clashes: Vec::new(),
            clash_set: HashSet::new(),
            facts_processed: 0,
            config,
            parent: Vec::new(),
            proj_merge: HashMap::new(),
            cycles_collapsed: 0,
            versions: Vec::new(),
            mutation_counter: 0,
            live_entries: 0,
            journal: None,
            fuel_spent: 0,
            interruptions: 0,
            depth_limit_hits: 0,
            prov: None,
            pending_counts: PendingCounts::default(),
            scratch: SolverScratch::default(),
        }
    }

    /// Turns on provenance recording: from now on the solver records,
    /// per solved-form entry, the constraint or derivation step that
    /// first produced it, enabling [`System::explain`]. The pending
    /// worklist is drained first so recording starts from a fixpoint
    /// (entries solved before enabling have no recorded provenance).
    /// Idempotent.
    pub fn enable_provenance(&mut self) {
        if self.prov.is_some() {
            return;
        }
        self.solve();
        self.prov = Some(Box::new(Provenance::default()));
    }

    /// Whether provenance recording is on.
    pub fn provenance_enabled(&self) -> bool {
        self.prov.is_some()
    }

    /// Enqueues a fact, keeping the provenance reason queue in lockstep
    /// with the worklist when recording is enabled.
    fn push_fact(&mut self, fact: Fact, why: Reason) {
        self.worklist.push_back(fact);
        if let Some(p) = self.prov.as_mut() {
            p.pending.push_back(why);
        }
    }

    /// Records the first reason for a solved-form entry (later
    /// re-derivations keep the original justification). Journaled while
    /// an epoch is open.
    fn record_prov(&mut self, key: ProvKey, why: Option<Reason>) {
        let Some(why) = why else { return };
        let Some(p) = self.prov.as_mut() else { return };
        if p.has(&key) {
            return;
        }
        p.map.insert(key, why);
        if let Some(j) = self.journal.as_mut() {
            j.ops.push(UndoOp::Prov(key));
        }
    }

    /// Marks `v`'s solved-form data as changed at a fresh mutation stamp.
    fn touch(&mut self, v: VarId) {
        self.mutation_counter += 1;
        self.versions[v.index()] = self.mutation_counter;
    }

    /// The stamp of the last change to `v`'s cycle-class data. A cached
    /// query result that recorded `(v, var_version(v))` for every variable
    /// it visited remains valid while all stamps compare equal.
    pub fn var_version(&self, v: VarId) -> u64 {
        self.versions[self.find(v).index()]
    }

    /// The global mutation counter: changes whenever *any* variable's
    /// solved-form data changes (including on rollback). Whole-system
    /// queries (e.g. emptiness) cache against this.
    pub fn global_version(&self) -> u64 {
        self.mutation_counter
    }

    /// The canonical representative of `v`'s cycle-elimination class —
    /// the stable key for caching query results about `v`.
    pub fn find_root(&self, v: VarId) -> VarId {
        self.find(v)
    }

    /// The representative of `v`'s cycle-elimination class (without path
    /// compression; usable from `&self` queries).
    pub(crate) fn find(&self, v: VarId) -> VarId {
        let mut cur = v.0;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        VarId(cur)
    }

    /// Path-compressing find. Compression writes are journaled while an
    /// epoch is open: without this, a pre-epoch member compressed through
    /// a mid-epoch union would still point at the merged-away winner
    /// after rollback.
    fn find_mut(&mut self, v: VarId) -> VarId {
        let root = self.find(v);
        let mut cur = v.0;
        while self.parent[cur as usize] != cur {
            let next = self.parent[cur as usize];
            if next != root.0 {
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Parent {
                        idx: cur,
                        old: next,
                    });
                }
                self.parent[cur as usize] = root.0;
            }
            cur = next;
        }
        root
    }

    /// Collapses `loser` into `winner` (both roots): moves all solved-form
    /// data across and re-enqueues it so propagation continues from the
    /// merged variable.
    fn union_into(&mut self, winner: VarId, loser: VarId) {
        debug_assert_ne!(winner, loser);
        if let Some(j) = self.journal.as_mut() {
            j.ops.push(UndoOp::Parent {
                idx: loser.0,
                old: self.parent[loser.0 as usize],
            });
        }
        self.parent[loser.0 as usize] = winner.0;
        self.cycles_collapsed += 1;
        self.pending_counts.cycles_collapsed += 1;
        let data = std::mem::take(&mut self.vars[loser.index()]);
        self.vars[loser.index()].name = data.name.clone();
        // The loser's entries leave the solved form here; the re-enqueued
        // facts below re-count whichever of them the winner actually keeps.
        self.live_entries -= entry_count(&data);
        self.pending_counts.edges_removed += data.succs.len() as u64;
        self.pending_counts.lbs_removed += data.lbs.len() as u64;
        self.pending_counts.ubs_removed += data.ubs.len() as u64;
        let why = Reason::Collapsed { from: loser };
        for (y, ann) in data.succs.iter_entries().collect::<Vec<_>>() {
            self.push_fact(Fact::Edge(winner, y, ann), why);
        }
        for (x, ann) in data.preds.iter_entries().collect::<Vec<_>>() {
            self.push_fact(Fact::Edge(x, winner, ann), why);
        }
        for (src, ann) in data.lbs.iter_entries().collect::<Vec<_>>() {
            self.push_fact(Fact::Lb(winner, src, ann), why);
        }
        for (snk, ann) in data.ubs.iter_entries().collect::<Vec<_>>() {
            self.push_fact(Fact::Ub(winner, snk, ann), why);
        }
        if let Some(j) = self.journal.as_mut() {
            j.ops.push(UndoOp::VarData {
                idx: loser.0,
                data: Box::new(data),
            });
        }
        self.touch(winner);
        self.touch(loser);
    }

    /// Bounded DFS over ε-annotated edges looking for a path `from → to`;
    /// on success every visited node on the path is collapsed into `to`
    /// and `true` is returned.
    ///
    /// Visited-set membership and path reconstruction use a `HashSet` and
    /// a parent map — a linear `Vec` scan here made long cycle searches
    /// O(n²) (10k-node cycles took seconds; see the regression test).
    fn try_collapse_cycle(&mut self, from: VarId, to: VarId) -> bool {
        // The containers live in per-system scratch (taken around the call
        // so the borrow checker allows `&mut self` methods inside): a
        // budget-exhausting search no longer re-grows them from empty.
        let mut s = std::mem::take(&mut self.scratch.cycle);
        let found = self.collapse_cycle_with(from, to, &mut s);
        s.clear();
        self.scratch.cycle = s;
        found
    }

    fn collapse_cycle_with(&mut self, from: VarId, to: VarId, s: &mut CycleScratch) -> bool {
        let id = self.algebra.identity();
        s.stack.push(from);
        s.visited.insert(from);
        let mut budget = self.config.cycle_search_depth * 8;
        while let Some(v) = s.stack.pop() {
            if budget == 0 {
                self.depth_limit_hits += 1;
                self.pending_counts.depth_limit_hits += 1;
                return false;
            }
            budget -= 1;
            if v == to {
                // Reconstruct the path from `from` to `to` and collapse.
                let mut cur = to;
                while cur != from {
                    s.path.push(cur);
                    cur = s.parent_of[&cur];
                }
                s.path.push(from);
                let winner = self.find_mut(to);
                for i in 0..s.path.len() {
                    let node = self.find_mut(s.path[i]);
                    if node != winner {
                        self.union_into(winner, node);
                    }
                }
                return true;
            }
            let mut i = 0;
            while let Some((y, ann)) = self.vars[v.index()].succs.entry(i) {
                i += 1;
                if ann != id {
                    continue;
                }
                let y = self.find(y);
                if s.visited.insert(y) {
                    s.parent_of.insert(y, v);
                    if s.visited.len() <= self.config.cycle_search_depth {
                        s.stack.push(y);
                    }
                }
            }
        }
        false
    }

    /// The annotation algebra.
    pub fn algebra(&self) -> &A {
        &self.algebra
    }

    /// Mutable access to the annotation algebra (e.g. to intern the
    /// annotation for a word before adding a constraint).
    pub fn algebra_mut(&mut self) -> &mut A {
        &mut self.algebra
    }

    /// Creates a fresh set variable. The name is for diagnostics only and
    /// need not be unique.
    pub fn var(&mut self, name: &str) -> VarId {
        let id = VarId(id_u32(self.vars.len(), "variables"));
        self.parent.push(id.0);
        self.versions.push(0);
        self.vars.push(VarData {
            name: name.into(),
            ..VarData::default()
        });
        id
    }

    /// The diagnostic name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Declares a constructor with the given argument variances (the arity
    /// is `signature.len()`; an empty signature declares a constant).
    pub fn constructor(&mut self, name: &str, signature: &[Variance]) -> ConsId {
        let id = ConsId(id_u32(self.constructors.len(), "constructors"));
        self.constructors.push(Constructor {
            name: name.to_owned(),
            signature: signature.to_vec(),
        });
        id
    }

    /// The declaration of a constructor.
    pub fn constructor_decl(&self, c: ConsId) -> &Constructor {
        self.constructors.index(c.index())
    }

    /// Adds the unannotated constraint `lhs ⊆ rhs` (annotation `f_ε`).
    ///
    /// # Errors
    ///
    /// See [`System::add_ann`].
    pub fn add(&mut self, lhs: SetExpr, rhs: SetExpr) -> Result<()> {
        let e = self.algebra.identity();
        self.add_ann(lhs, rhs, e)
    }

    /// Adds the annotated constraint `lhs ⊆^ann rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProjectionOnRight`] if `rhs` is a projection,
    /// [`CoreError::ArityMismatch`] if a constructor is misapplied, and
    /// [`CoreError::ProjectionIndex`] for an out-of-range projection.
    pub fn add_ann(&mut self, lhs: SetExpr, rhs: SetExpr, ann: AnnId) -> Result<()> {
        self.validate(&lhs)?;
        self.validate(&rhs)?;
        if matches!(rhs, SetExpr::Proj(..)) {
            return Err(CoreError::ProjectionOnRight);
        }
        self.constraints.push(Constraint {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            ann,
        });
        let why = Reason::Constraint(self.constraints.len() - 1);
        match (lhs, rhs) {
            (SetExpr::Var(x), SetExpr::Var(y)) => {
                self.push_fact(Fact::Edge(x, y, ann), why);
            }
            (SetExpr::Cons(c, args), SetExpr::Var(y)) => {
                let src = self.intern_source(Source { cons: c, args });
                self.push_fact(Fact::Lb(y, src, ann), why);
            }
            (SetExpr::Var(x), SetExpr::Cons(c, args)) => {
                let snk = self.intern_sink(Sink::Cons { cons: c, args });
                self.push_fact(Fact::Ub(x, snk, ann), why);
            }
            (SetExpr::Cons(c1, args1), SetExpr::Cons(c2, args2)) => {
                // Resolve immediately (the first two rules of §3.1).
                let src = self.intern_source(Source {
                    cons: c1,
                    args: args1,
                });
                let snk = self.intern_sink(Sink::Cons {
                    cons: c2,
                    args: args2,
                });
                self.resolve(src, ann, snk, why);
            }
            (SetExpr::Proj(c, i, x), SetExpr::Var(z)) => {
                // Projection merging (§8 / [27]): all ε-annotated
                // projections of the same subject share one auxiliary
                // target, so component edges are discovered once.
                if self.config.projection_merging && ann == self.algebra.identity() {
                    let aux = match self.proj_merge.get(&(c, i, x)) {
                        Some(&aux) => aux,
                        None => {
                            let aux = self.var("$projmerge");
                            self.proj_merge.insert((c, i, x), aux);
                            if let Some(j) = self.journal.as_mut() {
                                j.ops.push(UndoOp::ProjMerge(c, i, x));
                            }
                            let snk = self.intern_sink(Sink::Proj {
                                cons: c,
                                index: i,
                                target: aux,
                            });
                            let e = self.algebra.identity();
                            self.push_fact(Fact::Ub(x, snk, e), why);
                            aux
                        }
                    };
                    self.push_fact(Fact::Edge(aux, z, ann), why);
                } else {
                    let snk = self.intern_sink(Sink::Proj {
                        cons: c,
                        index: i,
                        target: z,
                    });
                    self.push_fact(Fact::Ub(x, snk, ann), why);
                }
            }
            (SetExpr::Proj(c, i, x), SetExpr::Cons(c2, args2)) => {
                // Normalize via an auxiliary variable:
                // c⁻ⁱ(X) ⊆^f d(…)  ⇝  c⁻ⁱ(X) ⊆^f v ∧ v ⊆ d(…).
                let v = self.var("$proj");
                let snk = self.intern_sink(Sink::Proj {
                    cons: c,
                    index: i,
                    target: v,
                });
                self.push_fact(Fact::Ub(x, snk, ann), why);
                let snk2 = self.intern_sink(Sink::Cons {
                    cons: c2,
                    args: args2,
                });
                let e = self.algebra.identity();
                self.push_fact(Fact::Ub(v, snk2, e), why);
            }
            (_, SetExpr::Proj(..)) => unreachable!("rejected above"),
        }
        Ok(())
    }

    fn validate(&self, e: &SetExpr) -> Result<()> {
        match e {
            SetExpr::Var(v) => {
                if v.index() >= self.vars.len() {
                    return Err(CoreError::ForeignId);
                }
            }
            SetExpr::Cons(c, args) => {
                let decl = self
                    .constructors
                    .get(c.index())
                    .ok_or(CoreError::ForeignId)?;
                if decl.arity() != args.len() {
                    return Err(CoreError::ArityMismatch {
                        constructor: decl.name.clone(),
                        expected: decl.arity(),
                        found: args.len(),
                    });
                }
                for v in args {
                    if v.index() >= self.vars.len() {
                        return Err(CoreError::ForeignId);
                    }
                }
            }
            SetExpr::Proj(c, i, v) => {
                let decl = self
                    .constructors
                    .get(c.index())
                    .ok_or(CoreError::ForeignId)?;
                if *i >= decl.arity() {
                    return Err(CoreError::ProjectionIndex {
                        constructor: decl.name.clone(),
                        arity: decl.arity(),
                        index: *i,
                    });
                }
                if v.index() >= self.vars.len() {
                    return Err(CoreError::ForeignId);
                }
            }
        }
        Ok(())
    }

    fn intern_source(&mut self, s: Source) -> SrcId {
        SrcId(self.sources.intern(s, "sources"))
    }

    fn intern_sink(&mut self, s: Sink) -> SnkId {
        SnkId(self.sinks.intern(s, "sinks"))
    }

    /// The interned source named by `s` (ids are never exposed unchecked).
    pub(crate) fn source(&self, s: SrcId) -> &Source {
        self.sources.index(s.0 as usize)
    }

    /// The interned sink named by `s`.
    pub(crate) fn sink(&self, s: SnkId) -> &Sink {
        self.sinks.index(s.0 as usize)
    }

    /// Applies the §3.1 resolution rules to a met source/sink pair under
    /// path annotation `f`. `why` justifies the derived edges (and is the
    /// provenance of any clash).
    fn resolve(&mut self, src: SrcId, f: AnnId, snk: SnkId, why: Reason) {
        if !self.algebra.is_useful(f) {
            return;
        }
        // Capture the argument ids and variances into reusable scratch
        // buffers up front (taken with `mem::take` to sidestep the borrow
        // of `self`), so the per-position loop below never re-indexes the
        // interned tables or re-matches the sink shape.
        enum Shape {
            Cons(ConsId),
            Proj(ConsId, usize, VarId),
        }
        let src_cons = self.source(src).cons;
        let mut snk_args = std::mem::take(&mut self.scratch.resolve_snk_args);
        snk_args.clear();
        let shape = match self.sink(snk) {
            Sink::Cons { cons, args } => {
                snk_args.extend_from_slice(args);
                Shape::Cons(*cons)
            }
            Sink::Proj {
                cons,
                index,
                target,
            } => Shape::Proj(*cons, *index, *target),
        };
        match shape {
            Shape::Cons(cons) => {
                if src_cons != cons {
                    let clash = Clash::ConstructorMismatch {
                        lhs: src_cons,
                        rhs: cons,
                        ann: f,
                    };
                    if self.clash_set.insert(clash.clone()) {
                        self.clashes.push(clash);
                        self.pending_counts.clashes += 1;
                    }
                    self.scratch.resolve_snk_args = snk_args;
                    return;
                }
                let mut src_args = std::mem::take(&mut self.scratch.resolve_src_args);
                src_args.clear();
                src_args.extend_from_slice(&self.source(src).args);
                let mut variances = std::mem::take(&mut self.scratch.resolve_variances);
                variances.clear();
                variances.extend_from_slice(&self.constructors.index(cons.index()).signature);
                for i in 0..snk_args.len() {
                    let src_arg = src_args[i];
                    let snk_arg = snk_args[i];
                    match variances[i] {
                        Variance::Covariant => {
                            self.push_fact(Fact::Edge(src_arg, snk_arg, f), why);
                        }
                        Variance::Contravariant => {
                            if f == self.algebra.identity() {
                                let e = self.algebra.identity();
                                self.push_fact(Fact::Edge(snk_arg, src_arg, e), why);
                            } else {
                                let clash = Clash::ContravariantAnnotated {
                                    cons,
                                    position: i,
                                    ann: f,
                                };
                                if self.clash_set.insert(clash.clone()) {
                                    self.clashes.push(clash);
                                    self.pending_counts.clashes += 1;
                                }
                            }
                        }
                    }
                }
                self.scratch.resolve_src_args = src_args;
                self.scratch.resolve_variances = variances;
            }
            Shape::Proj(cons, index, target) => {
                if src_cons == cons {
                    let src_arg = self.source(src).args[index];
                    self.push_fact(Fact::Edge(src_arg, target, f), why);
                }
                // A non-matching constructor simply does not project —
                // not an inconsistency.
            }
        }
        self.scratch.resolve_snk_args = snk_args;
    }

    /// Runs resolution to a fixpoint (Lemma 3.1 guarantees termination for
    /// finite algebras).
    pub fn solve(&mut self) {
        let _ = self.solve_bounded(&Budget::unlimited());
    }

    /// Runs resolution until the fixpoint is reached *or* the budget runs
    /// out, whichever comes first.
    ///
    /// The budget is checked before each fact is popped, so an
    /// [`Outcome::Interrupted`] solve leaves the pending worklist intact.
    /// The caller then has two sound options:
    ///
    /// * **resume** — call `solve_bounded` again (with a fresh budget);
    ///   closure is monotone, so the drain converges to exactly the
    ///   fixpoint an uninterrupted solve would have reached;
    /// * **roll back** — if an epoch is open, [`System::pop_epoch`]
    ///   discards the partial work (and the pending worklist) and restores
    ///   the last consistent snapshot.
    ///
    /// Deadlines are measured from the call (each resume gets a fresh
    /// window); the clock is only consulted when a deadline is set, so
    /// solves under purely step/memory budgets are fully deterministic.
    pub fn solve_bounded(&mut self, budget: &Budget) -> Outcome {
        let _span = obs::span("solver.solve");
        let metered = !budget.is_unlimited();
        let mut meter = budget.start();
        while !self.worklist.is_empty() {
            let terms = self.vars.len() + self.sources.len() + self.sinks.len();
            if let Some(reason) = meter.check(terms, self.live_entries) {
                self.interruptions += 1;
                self.pending_counts.interruptions += 1;
                self.pending_counts.flush();
                return Outcome::Interrupted(reason);
            }
            meter.step();
            if metered {
                self.fuel_spent += 1;
                self.pending_counts.fuel += 1;
            }
            let Some(fact) = self.worklist.pop_front() else {
                break;
            };
            let why = self.prov.as_mut().and_then(|p| p.pending.pop_front());
            self.facts_processed += 1;
            self.pending_counts.facts += 1;
            self.process_fact(fact, why);
        }
        self.pending_counts.flush();
        Outcome::Complete
    }

    /// Applies one worklist fact (one "step" of the drain). `why` is the
    /// fact's provenance reason, present iff recording is enabled.
    fn process_fact(&mut self, fact: Fact, why: Option<Reason>) {
        match fact {
            Fact::Edge(x, y, f) => {
                let x = self.find_mut(x);
                let y = self.find_mut(y);
                if x == y && f == self.algebra.identity() {
                    return;
                }
                if !self.algebra.is_useful(f) {
                    return;
                }
                if !self.vars[x.index()].succs.insert(y, f) {
                    return;
                }
                self.live_entries += 1;
                self.pending_counts.edges_added += 1;
                self.record_prov(ProvKey::Edge(x, y, f), why);
                self.vars[y.index()].preds.insert(x, f);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Succ(x, y, f));
                    j.ops.push(UndoOp::Pred(x, y, f));
                }
                self.touch(x);
                self.touch(y);
                if self.config.cycle_elimination
                    && f == self.algebra.identity()
                    && self.try_collapse_cycle(y, x)
                {
                    // x → y closed an ε-cycle; the collapse re-enqueued
                    // all merged facts, so nothing more to do here.
                    return;
                }
                // Push x's lower bounds across the new edge. Snapshot
                // cursor: `push_fact` only touches the worklist and the
                // provenance queue, never `vars`, so indexing the entry log
                // one `Copy` pair at a time is clone-free and safe.
                let mut i = 0;
                while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(f, g);
                    let why = Reason::TransLb {
                        edge: (x, y, f),
                        lb: (x, src, g),
                    };
                    self.push_fact(Fact::Lb(y, src, h), why);
                }
                // Pull y's upper bounds across the new edge.
                let mut i = 0;
                while let Some((snk, g)) = self.vars[y.index()].ubs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(g, f);
                    let why = Reason::TransUb {
                        edge: (x, y, f),
                        ub: (y, snk, g),
                    };
                    self.push_fact(Fact::Ub(x, snk, h), why);
                }
            }
            Fact::Lb(x, src, g) => {
                let x = self.find_mut(x);
                if !self.algebra.is_useful(g) {
                    return;
                }
                let head = self.source(src).cons;
                let data = &mut self.vars[x.index()];
                let lbs_by_cons = &mut data.lbs_by_cons;
                if !data.lbs.insert_with(src, g, || {
                    lbs_by_cons.push(head, src);
                }) {
                    return;
                }
                self.live_entries += 1;
                self.pending_counts.lbs_added += 1;
                self.record_prov(ProvKey::Lb(x, src, g), why);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Lb(x, src, g));
                }
                self.touch(x);
                let mut i = 0;
                while let Some((y, f)) = self.vars[x.index()].succs.entry(i) {
                    i += 1;
                    let h = self.algebra.compose(f, g);
                    let why = Reason::TransLb {
                        edge: (x, y, f),
                        lb: (x, src, g),
                    };
                    self.push_fact(Fact::Lb(y, src, h), why);
                }
                let mut i = 0;
                while let Some((snk, h)) = self.vars[x.index()].ubs.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, g);
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.resolve(src, composed, snk, why);
                }
            }
            Fact::Ub(x, snk, h) => {
                let x = self.find_mut(x);
                if !self.algebra.is_useful(h) {
                    return;
                }
                if !self.vars[x.index()].ubs.insert(snk, h) {
                    return;
                }
                self.live_entries += 1;
                self.pending_counts.ubs_added += 1;
                self.record_prov(ProvKey::Ub(x, snk, h), why);
                if let Some(j) = self.journal.as_mut() {
                    j.ops.push(UndoOp::Ub(x, snk, h));
                }
                self.touch(x);
                let mut i = 0;
                while let Some((w, f)) = self.vars[x.index()].preds.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, f);
                    let why = Reason::TransUb {
                        edge: (w, x, f),
                        ub: (x, snk, h),
                    };
                    self.push_fact(Fact::Ub(w, snk, composed), why);
                }
                let mut i = 0;
                while let Some((src, g)) = self.vars[x.index()].lbs.entry(i) {
                    i += 1;
                    let composed = self.algebra.compose(h, g);
                    let why = Reason::Meet {
                        var: x,
                        src,
                        src_ann: g,
                        snk,
                        snk_ann: h,
                    };
                    self.resolve(src, composed, snk, why);
                }
            }
        }
    }

    /// Opens a rollback epoch (BANSHEE-style backtracking, §8).
    ///
    /// The worklist is drained first so the epoch boundary is a solved
    /// fixpoint; afterwards every solver mutation — edges, lower/upper
    /// bounds, union-find merges (including path compression), memoized
    /// projection-merge entries, fresh variables/constructors/sources/
    /// sinks, and clashes — is journaled until the matching
    /// [`System::pop_epoch`]. Epochs nest.
    pub fn push_epoch(&mut self) {
        self.solve();
        obs::counter("solver.epochs.pushed", 1);
        let mark = EpochMark {
            ops_len: self.journal.as_ref().map_or(0, |j| j.ops.len()),
            n_vars: self.vars.len(),
            n_constructors: self.constructors.len(),
            n_sources: self.sources.len(),
            n_sinks: self.sinks.len(),
            n_constraints: self.constraints.len(),
            n_clashes: self.clashes.len(),
            facts_processed: self.facts_processed,
            cycles_collapsed: self.cycles_collapsed,
            fuel_spent: self.fuel_spent,
            interruptions: self.interruptions,
            depth_limit_hits: self.depth_limit_hits,
        };
        self.journal
            .get_or_insert_with(Journal::default)
            .marks
            .push(mark);
    }

    /// Number of currently open epochs.
    pub fn epoch_depth(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.marks.len())
    }

    /// Undoes every mutation recorded since the matching
    /// [`System::push_epoch`], restoring the solved form, union-find
    /// classes, clash list, and stats of the pre-epoch state exactly.
    /// Returns `false` (and does nothing) when no epoch is open.
    ///
    /// Mutation stamps keep moving forward across a rollback — a cached
    /// query result taken mid-epoch can never be revalidated against the
    /// restored state by accident.
    ///
    /// The algebra's hash-cons tables are *not* shrunk: annotation ids are
    /// canonical by content, so entries interned mid-epoch are semantically
    /// inert and remain as warm memo state (the `annotations` stat may
    /// therefore exceed its pre-epoch value).
    pub fn pop_epoch(&mut self) -> bool {
        let Some(journal) = self.journal.as_mut() else {
            return false;
        };
        let Some(mark) = journal.marks.pop() else {
            return false;
        };
        // Every pending fact was derived after the epoch opened (the
        // boundary is a fixpoint), so pending work is rolled back too.
        self.worklist.clear();
        let ops: Vec<UndoOp> = journal.ops.drain(mark.ops_len..).collect();
        if journal.marks.is_empty() {
            self.journal = None;
        }
        if let Some(p) = self.prov.as_mut() {
            p.pending.clear();
        }
        obs::counter("solver.epochs.popped", 1);
        obs::histogram("solver.rollback.ops", ops.len() as u64);
        let mut touched: HashSet<u32> = HashSet::new();
        for op in ops.into_iter().rev() {
            match op {
                UndoOp::Succ(x, y, a) => {
                    if self.vars[x.index()].succs.remove(y, a) {
                        self.live_entries -= 1;
                        self.pending_counts.edges_removed += 1;
                    }
                    touched.insert(x.0);
                    touched.insert(y.0);
                }
                UndoOp::Pred(x, y, a) => {
                    self.vars[y.index()].preds.remove(x, a);
                }
                UndoOp::Lb(x, src, a) => {
                    let head = self.sources.index(src.0 as usize).cons;
                    let data = &mut self.vars[x.index()];
                    let lbs_by_cons = &mut data.lbs_by_cons;
                    // Reverse-order undo empties keys in reverse of their
                    // creation, so the bucket entry to drop sits at the
                    // back — `rposition` finds it in O(1) on this path.
                    let removed = data.lbs.remove_with(src, a, || {
                        lbs_by_cons.remove_last(head, src);
                    });
                    if removed {
                        self.live_entries -= 1;
                        self.pending_counts.lbs_removed += 1;
                    }
                    touched.insert(x.0);
                }
                UndoOp::Ub(x, snk, a) => {
                    if self.vars[x.index()].ubs.remove(snk, a) {
                        self.live_entries -= 1;
                        self.pending_counts.ubs_removed += 1;
                    }
                    touched.insert(x.0);
                }
                UndoOp::Parent { idx, old } => {
                    self.parent[idx as usize] = old;
                    touched.insert(idx);
                }
                UndoOp::VarData { idx, data } => {
                    // The collapsed loser only ever holds its name after
                    // the union (inserts go to the class root), so the
                    // restore adds exactly the journaled entries back.
                    debug_assert_eq!(entry_count(&self.vars[idx as usize]), 0);
                    self.live_entries += entry_count(&data);
                    self.pending_counts.edges_added += data.succs.len() as u64;
                    self.pending_counts.lbs_added += data.lbs.len() as u64;
                    self.pending_counts.ubs_added += data.ubs.len() as u64;
                    self.vars[idx as usize] = *data;
                    touched.insert(idx);
                }
                UndoOp::ProjMerge(c, i, v) => {
                    self.proj_merge.remove(&(c, i, v));
                }
                UndoOp::Prov(key) => {
                    if let Some(p) = self.prov.as_mut() {
                        p.map.remove(&key);
                    }
                }
            }
        }
        // Drop everything created after the watermarks.
        self.sources.truncate(mark.n_sources);
        self.sinks.truncate(mark.n_sinks);
        self.pending_counts.clashes_rolled_back +=
            self.clashes.len().saturating_sub(mark.n_clashes) as u64;
        for c in self.clashes.drain(mark.n_clashes..) {
            self.clash_set.remove(&c);
        }
        self.vars.truncate(mark.n_vars);
        self.parent.truncate(mark.n_vars);
        self.versions.truncate(mark.n_vars);
        self.constructors.truncate(mark.n_constructors);
        self.constraints.truncate(mark.n_constraints);
        self.pending_counts.facts_rolled_back +=
            (self.facts_processed - mark.facts_processed) as u64;
        self.pending_counts.cycles_uncollapsed +=
            (self.cycles_collapsed - mark.cycles_collapsed) as u64;
        self.pending_counts.fuel_rolled_back += (self.fuel_spent - mark.fuel_spent) as u64;
        self.pending_counts.interruptions_rolled_back +=
            (self.interruptions - mark.interruptions) as u64;
        self.pending_counts.depth_limit_hits_rolled_back +=
            (self.depth_limit_hits - mark.depth_limit_hits) as u64;
        self.facts_processed = mark.facts_processed;
        self.cycles_collapsed = mark.cycles_collapsed;
        self.fuel_spent = mark.fuel_spent;
        self.interruptions = mark.interruptions;
        self.depth_limit_hits = mark.depth_limit_hits;
        // Advance the stamps of every variable the rollback touched.
        for idx in touched {
            if (idx as usize) < mark.n_vars {
                self.touch(VarId(idx));
            }
        }
        self.mutation_counter += 1;
        self.pending_counts.flush();
        true
    }

    /// Closes the innermost open epoch *keeping* its work: the epoch mark
    /// is discarded without undoing anything, so the mutations made since
    /// the matching [`System::push_epoch`] become part of the enclosing
    /// epoch (or permanent, if none). Returns `false` when no epoch is
    /// open.
    ///
    /// Together with [`System::pop_epoch`] this makes a
    /// push/mutate/commit-or-pop sequence transactional.
    pub fn commit_epoch(&mut self) -> bool {
        let Some(journal) = self.journal.as_mut() else {
            return false;
        };
        if journal.marks.pop().is_none() {
            return false;
        }
        if journal.marks.is_empty() {
            self.journal = None;
        }
        obs::counter("solver.epochs.committed", 1);
        true
    }

    /// Number of facts waiting on the worklist (nonzero after an
    /// interrupted [`System::solve_bounded`]).
    pub fn pending_facts(&self) -> usize {
        self.worklist.len()
    }

    /// The live solved-form entry count (annotated edges + lower bounds +
    /// upper bounds) — the quantity capped by
    /// [`Budget::with_max_entries`](crate::Budget::with_max_entries).
    /// Maintained incrementally; O(1).
    pub fn solved_entries(&self) -> usize {
        self.live_entries
    }

    /// The interned term count (variables + sources + sinks) — the
    /// quantity capped by
    /// [`Budget::with_max_terms`](crate::Budget::with_max_terms).
    pub fn term_count(&self) -> usize {
        self.vars.len() + self.sources.len() + self.sinks.len()
    }

    /// The surface constraints added so far, in order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.constraints.iter()
    }

    /// Number of surface constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The `i`-th surface constraint (insertion order).
    pub fn constraint(&self, i: usize) -> Option<&Constraint> {
        self.constraints.get(i)
    }

    /// The manifest inconsistencies discovered so far.
    pub fn clashes(&self) -> &[Clash] {
        &self.clashes
    }

    /// Whether the system is consistent (no clashes).
    pub fn is_consistent(&self) -> bool {
        self.clashes.is_empty()
    }

    /// The annotations under which the *constant* (or constructor
    /// expression head) `c` is a direct lower bound of `x` in the solved
    /// form — i.e. all `f` with `c(…) ⊆^f X`.
    pub fn lower_bound_annotations(&self, x: VarId, c: ConsId) -> Vec<AnnId> {
        let x = self.find(x);
        let data = &self.vars[x.index()];
        // Constructor-indexed: only `c`-headed sources are visited, and
        // their annotation sets are already sorted and deduplicated, so
        // the common one-source case returns without sorting anything.
        let sets: Vec<&AnnSet> = data
            .lbs_by_cons
            .bucket(c)
            .flat_map(|src| data.lbs.sets(src))
            .collect();
        merge_sorted_anns(&sets)
    }

    /// All solved-form lower bounds of `x`: `(constructor, args, annotation)`
    /// triples, borrowed from the solved form (no per-entry clone of the
    /// argument vector) in insertion order.
    pub fn lower_bounds(&self, x: VarId) -> impl Iterator<Item = (ConsId, &[VarId], AnnId)> + '_ {
        let x = self.find(x);
        self.vars[x.index()].lbs.iter_entries().map(|(src, a)| {
            let s = self.source(src);
            (s.cons, s.args.as_slice(), a)
        })
    }

    /// The annotated variable-variable edges leaving `x` in the solved
    /// form.
    pub fn edges_from(&self, x: VarId) -> Vec<(VarId, AnnId)> {
        let x = self.find(x);
        self.vars[x.index()]
            .succs
            .iter_entries()
            .map(|(y, a)| (self.find(y), a))
            .collect()
    }

    /// Aggregate statistics about the solved system.
    pub fn stats(&self) -> SolverStats {
        let mut edges = 0;
        let mut lower = 0;
        let mut upper = 0;
        let mut max_lower = 0;
        let mut max_upper = 0;
        for v in &self.vars {
            edges += v.succs.len();
            let l = v.lbs.len();
            let u = v.ubs.len();
            lower += l;
            upper += u;
            max_lower = max_lower.max(l);
            max_upper = max_upper.max(u);
        }
        SolverStats {
            vars: self.vars.len(),
            constructors: self.constructors.len(),
            edges,
            lower_bounds: lower,
            upper_bounds: upper,
            max_lower_bounds_per_var: max_lower,
            max_upper_bounds_per_var: max_upper,
            facts_processed: self.facts_processed,
            annotations: self.algebra.len(),
            cycles_collapsed: self.cycles_collapsed,
            fuel_spent: self.fuel_spent,
            interruptions: self.interruptions,
            depth_limit_hits: self.depth_limit_hits,
        }
    }

    /// Explains why constructor `c` appears in `v`'s solution: the chain
    /// of surface constraints and derivation steps that produced the
    /// (lexicographically first) solved-form lower bound `c(…) ⊆^g v`.
    ///
    /// Returns an empty chain when provenance recording is not enabled
    /// (see [`System::enable_provenance`]), or when no such lower bound
    /// exists. Steps are pre-order: each derived entry is followed by the
    /// explanations of its premises.
    pub fn explain(&self, v: VarId, c: ConsId) -> Vec<ExplainStep> {
        let Some(prov) = self.prov.as_deref() else {
            return Vec::new();
        };
        let root = self.find(v);
        let data = &self.vars[root.index()];
        let mut candidates: Vec<(u32, AnnId)> = Vec::new();
        for src in data.lbs_by_cons.bucket(c) {
            for anns in data.lbs.sets(src) {
                for &a in anns.as_slice() {
                    candidates.push((src.0, a));
                }
            }
        }
        candidates.sort();
        let Some(&(src_raw, ann)) = candidates.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        self.explain_key(
            prov,
            ProvKey::Lb(root, SrcId(src_raw), ann),
            &mut out,
            &mut seen,
            0,
        );
        out
    }

    /// Recursive provenance walk: emits the step for `key`, then the
    /// steps of its premises (bounded by a visited set and a depth cap).
    fn explain_key(
        &self,
        prov: &Provenance,
        key: ProvKey,
        out: &mut Vec<ExplainStep>,
        seen: &mut HashSet<ProvKey>,
        depth: usize,
    ) {
        if depth > 64 || !seen.insert(key) {
            return;
        }
        let reason = prov
            .reason(&key)
            .or_else(|| prov.reason(&self.canonical_key(key)));
        let Some(reason) = reason else {
            out.push(ExplainStep {
                constraint: None,
                rule: "axiom",
                description: format!(
                    "{} (solved before provenance recording was enabled)",
                    self.describe_key(key)
                ),
            });
            return;
        };
        match *reason {
            Reason::Constraint(i) => {
                out.push(ExplainStep {
                    constraint: Some(i),
                    rule: "constraint",
                    description: format!(
                        "{} — from constraint #{i}: {}",
                        self.describe_key(key),
                        self.describe_constraint(i)
                    ),
                });
            }
            Reason::TransLb { edge, lb } => {
                out.push(ExplainStep {
                    constraint: None,
                    rule: "trans-lb",
                    description: format!(
                        "{} — lower bound pushed across edge {}",
                        self.describe_key(key),
                        self.describe_key(ProvKey::Edge(edge.0, edge.1, edge.2))
                    ),
                });
                self.explain_key(
                    prov,
                    ProvKey::Edge(edge.0, edge.1, edge.2),
                    out,
                    seen,
                    depth + 1,
                );
                self.explain_key(prov, ProvKey::Lb(lb.0, lb.1, lb.2), out, seen, depth + 1);
            }
            Reason::TransUb { edge, ub } => {
                out.push(ExplainStep {
                    constraint: None,
                    rule: "trans-ub",
                    description: format!(
                        "{} — upper bound pulled back across edge {}",
                        self.describe_key(key),
                        self.describe_key(ProvKey::Edge(edge.0, edge.1, edge.2))
                    ),
                });
                self.explain_key(
                    prov,
                    ProvKey::Edge(edge.0, edge.1, edge.2),
                    out,
                    seen,
                    depth + 1,
                );
                self.explain_key(prov, ProvKey::Ub(ub.0, ub.1, ub.2), out, seen, depth + 1);
            }
            Reason::Meet {
                var,
                src,
                src_ann,
                snk,
                snk_ann,
            } => {
                out.push(ExplainStep {
                    constraint: None,
                    rule: "resolve",
                    description: format!(
                        "{} — §3.1 resolution at {}",
                        self.describe_key(key),
                        self.var_name_safe(var)
                    ),
                });
                self.explain_key(prov, ProvKey::Lb(var, src, src_ann), out, seen, depth + 1);
                self.explain_key(prov, ProvKey::Ub(var, snk, snk_ann), out, seen, depth + 1);
            }
            Reason::Collapsed { from } => {
                out.push(ExplainStep {
                    constraint: None,
                    rule: "collapse",
                    description: format!(
                        "{} — re-derived when {} was collapsed into its ε-cycle class",
                        self.describe_key(key),
                        self.var_name_safe(from)
                    ),
                });
            }
        }
    }

    /// Maps every variable component of `key` to its current canonical
    /// representative (keys are recorded pre-collapse).
    fn canonical_key(&self, key: ProvKey) -> ProvKey {
        match key {
            ProvKey::Edge(x, y, a) => ProvKey::Edge(self.find(x), self.find(y), a),
            ProvKey::Lb(x, s, a) => ProvKey::Lb(self.find(x), s, a),
            ProvKey::Ub(x, s, a) => ProvKey::Ub(self.find(x), s, a),
        }
    }

    /// A variable name that tolerates ids dropped by rollback.
    fn var_name_safe(&self, v: VarId) -> &str {
        self.vars
            .get(self.find(v).index())
            .map_or("<dropped>", |d| &*d.name)
    }

    /// Renders a provenance key in the paper's notation.
    fn describe_key(&self, key: ProvKey) -> String {
        let ann = |a: AnnId| {
            if a == self.algebra.identity() {
                String::new()
            } else {
                format!("^{}", self.algebra.describe(a))
            }
        };
        match key {
            ProvKey::Edge(x, y, a) => format!(
                "{} ⊆{} {}",
                self.var_name_safe(x),
                ann(a),
                self.var_name_safe(y)
            ),
            ProvKey::Lb(x, src, a) => {
                let applied = self
                    .sources
                    .get(src.0 as usize)
                    .map_or_else(|| "<dropped>".to_owned(), |s| self.render_source(s));
                format!("{applied} ⊆{} {}", ann(a), self.var_name_safe(x))
            }
            ProvKey::Ub(x, snk, a) => {
                let applied = self
                    .sinks
                    .get(snk.0 as usize)
                    .map_or_else(|| "<dropped>".to_owned(), |s| self.render_sink(s));
                format!("{} ⊆{} {applied}", self.var_name_safe(x), ann(a))
            }
        }
    }

    fn render_source(&self, s: &Source) -> String {
        let head = self.constructors.index(s.cons.index()).name();
        if s.args.is_empty() {
            head.to_owned()
        } else {
            let args: Vec<&str> = s.args.iter().map(|&a| self.var_name_safe(a)).collect();
            format!("{head}({})", args.join(", "))
        }
    }

    fn render_sink(&self, s: &Sink) -> String {
        match s {
            Sink::Cons { cons, args } => {
                let head = self.constructors.index(cons.index()).name();
                if args.is_empty() {
                    head.to_owned()
                } else {
                    let args: Vec<&str> = args.iter().map(|&a| self.var_name_safe(a)).collect();
                    format!("{head}({})", args.join(", "))
                }
            }
            Sink::Proj {
                cons,
                index,
                target,
            } => {
                format!(
                    "{}⁻{}(·) ⊆ {}",
                    self.constructors.index(cons.index()).name(),
                    index + 1,
                    self.var_name_safe(*target)
                )
            }
        }
    }

    /// Renders surface constraint `i` (tolerating rolled-back indices).
    fn describe_constraint(&self, i: usize) -> String {
        let Some(con) = self.constraints.get(i) else {
            return "<rolled back>".to_owned();
        };
        let render = |e: &SetExpr| match e {
            SetExpr::Var(v) => self.var_name_safe(*v).to_owned(),
            SetExpr::Cons(c, args) => {
                let head = self.constructors.index(c.index()).name();
                if args.is_empty() {
                    head.to_owned()
                } else {
                    let args: Vec<&str> = args.iter().map(|&a| self.var_name_safe(a)).collect();
                    format!("{head}({})", args.join(", "))
                }
            }
            SetExpr::Proj(c, idx, v) => format!(
                "{}⁻{}({})",
                self.constructors.index(c.index()).name(),
                idx + 1,
                self.var_name_safe(*v)
            ),
        };
        let ann = if con.ann == self.algebra.identity() {
            String::new()
        } else {
            format!("^{}", self.algebra.describe(con.ann))
        };
        format!("{} ⊆{ann} {}", render(&con.lhs), render(&con.rhs))
    }

    /// Renders the solved form in the paper's notation (for diagnostics
    /// and teaching): transitive variable constraints, lower bounds, and
    /// upper bounds, with annotations shown via the algebra's
    /// [`Algebra::describe`].
    pub fn render_solved_form(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let ann_str = |a: AnnId| {
            if a == self.algebra.identity() {
                String::new()
            } else {
                format!("^{}", self.algebra.describe(a))
            }
        };
        for (i, v) in self.vars.iter().enumerate() {
            let name = &v.name;
            if self.find(VarId(i as u32)).index() != i {
                continue; // collapsed into its cycle representative
            }
            // Entry logs render in insertion order — deterministic across
            // runs, and restored byte-identically by epoch rollback.
            for (src, a) in v.lbs.iter_entries() {
                let s = self.source(src);
                let rendered_args: Vec<&str> = s
                    .args
                    .iter()
                    .map(|a| &*self.vars[self.find(*a).index()].name)
                    .collect();
                let head = self.constructors.index(s.cons.index()).name();
                let applied = if rendered_args.is_empty() {
                    head.to_owned()
                } else {
                    format!("{head}({})", rendered_args.join(", "))
                };
                let _ = writeln!(out, "{applied} ⊆{} {name}", ann_str(a));
            }
            for (y, a) in v.succs.iter_entries() {
                let target = &self.vars[self.find(y).index()].name;
                let _ = writeln!(out, "{name} ⊆{} {target}", ann_str(a));
            }
            for (snk, a) in v.ubs.iter_entries() {
                match self.sink(snk) {
                    Sink::Cons { cons, args } => {
                        let rendered_args: Vec<&str> = args
                            .iter()
                            .map(|a| &*self.vars[self.find(*a).index()].name)
                            .collect();
                        let head = self.constructors.index(cons.index()).name();
                        let applied = if rendered_args.is_empty() {
                            head.to_owned()
                        } else {
                            format!("{head}({})", rendered_args.join(", "))
                        };
                        let _ = writeln!(out, "{name} ⊆{} {applied}", ann_str(a));
                    }
                    Sink::Proj {
                        cons,
                        index,
                        target,
                    } => {
                        let head = self.constructors.index(cons.index()).name();
                        let t = &self.vars[self.find(*target).index()].name;
                        let _ = writeln!(out, "{head}⁻{}({name}) ⊆{} {t}", index + 1, ann_str(a));
                    }
                }
            }
        }
        out
    }

    /// The projection sinks attached to `x` in the solved form, as
    /// `(projection target, composed annotation)` pairs — the
    /// "close-paren" edges used by PN queries.
    pub(crate) fn proj_sinks_of(&self, x: VarId) -> Vec<(VarId, AnnId)> {
        let x = self.find(x);
        let mut out = Vec::new();
        for (snk, h) in self.vars[x.index()].ubs.iter_entries() {
            if let Sink::Proj { target, .. } = *self.sink(snk) {
                out.push((self.find(target), h));
            }
        }
        out
    }

    /// All distinct constructor-expression keys occurring as sources or
    /// constructor sinks (for the query-time reconstruction of constructor
    /// annotation variables).
    pub(crate) fn constructor_expr_keys(&self) -> Vec<ExprKey> {
        // Hash-backed dedup (the linear `keys.contains` scan was quadratic
        // in the number of interned expressions); emission order is still
        // first-occurrence order.
        let mut seen: HashSet<ExprKey> = HashSet::new();
        let mut keys: Vec<ExprKey> = Vec::new();
        for s in self.sources.iter() {
            let key = (s.cons, s.args.clone());
            if seen.insert(key.clone()) {
                keys.push(key);
            }
        }
        for s in self.sinks.iter() {
            if let Sink::Cons { cons, args } = s {
                let key = (*cons, args.clone());
                if seen.insert(key.clone()) {
                    keys.push(key);
                }
            }
        }
        keys
    }

    /// All `(source, constructor-sink)` meetings at `x` with matching
    /// heads: `(src key, sink key, g, h)` for `src ⊆^g x` and `x ⊆^h snk`.
    pub(crate) fn source_sink_meets(&self, x: VarId) -> Vec<MeetEntry> {
        let data = &self.vars[self.find(x).index()];
        let mut out = Vec::new();
        for (&src, gs) in data.lbs.iter() {
            let source = self.source(src);
            for (&snk, hs) in data.ubs.iter() {
                let Sink::Cons { cons, args } = self.sink(snk) else {
                    continue;
                };
                if *cons != source.cons {
                    continue;
                }
                for &g in gs.as_slice() {
                    for &h in hs.as_slice() {
                        out.push((
                            (source.cons, source.args.clone()),
                            (*cons, args.clone()),
                            g,
                            h,
                        ));
                    }
                }
            }
        }
        out
    }

    pub(crate) fn lbs_of(&self, x: VarId) -> impl Iterator<Item = (&Source, &[AnnId])> {
        self.vars[self.find(x).index()]
            .lbs
            .iter()
            .map(|(src, anns)| (self.source(*src), anns.as_slice()))
    }
}

impl<A: Algebra + SnapshotAlgebra> System<A> {
    /// Serializes the algebra and the full solved form into `snap` as the
    /// [`TAG_ALGEBRA`] and [`TAG_SOLVED`] sections. The encoding is
    /// deterministic: entry logs are written in insertion order and every
    /// hash-keyed table is sorted before writing, so identical systems
    /// produce identical bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::State`] unless the system is at a fixpoint
    /// (empty worklist — call [`System::solve`] first) with no open epoch.
    pub fn snapshot_sections(&self, snap: &mut SnapshotWriter) -> SnapResult<()> {
        if self.pending_facts() != 0 {
            return Err(SnapshotError::state(format!(
                "cannot snapshot with {} pending worklist facts (solve to a fixpoint first)",
                self.pending_facts()
            )));
        }
        if self.epoch_depth() != 0 {
            return Err(SnapshotError::state(format!(
                "cannot snapshot with {} open epochs (commit or pop them first)",
                self.epoch_depth()
            )));
        }
        let mut alg = ByteWriter::new();
        self.algebra.snapshot_write(&mut alg);
        snap.section(TAG_ALGEBRA, alg);

        let mut w = ByteWriter::new();
        w.bool(self.config.cycle_elimination);
        w.bool(self.config.projection_merging);
        w.u64(self.config.cycle_search_depth as u64);
        w.seq_len(self.constructors.len());
        for c in self.constructors.iter() {
            w.str(&c.name);
            w.seq_len(c.signature.len());
            for v in &c.signature {
                w.u8(match v {
                    Variance::Covariant => 0,
                    Variance::Contravariant => 1,
                });
            }
        }
        w.u64(self.vars.len() as u64);
        w.seq_len(self.sources.len());
        for s in self.sources.iter() {
            w.u32(s.cons.0);
            let args: Vec<u32> = s.args.iter().map(|v| v.0).collect();
            w.u32_seq(&args);
        }
        w.seq_len(self.sinks.len());
        for s in self.sinks.iter() {
            match s {
                Sink::Cons { cons, args } => {
                    w.u8(0);
                    w.u32(cons.0);
                    let args: Vec<u32> = args.iter().map(|v| v.0).collect();
                    w.u32_seq(&args);
                }
                Sink::Proj {
                    cons,
                    index,
                    target,
                } => {
                    w.u8(1);
                    w.u32(cons.0);
                    w.u64(*index as u64);
                    w.u32(target.0);
                }
            }
        }
        for v in &self.vars {
            w.str(&v.name);
            write_log(&mut w, v.succs.len(), v.succs.iter_entries(), |k: VarId| {
                k.0
            });
            write_log(&mut w, v.preds.len(), v.preds.iter_entries(), |k: VarId| {
                k.0
            });
            write_log(&mut w, v.lbs.len(), v.lbs.iter_entries(), |k: SrcId| k.0);
            write_log(&mut w, v.ubs.len(), v.ubs.iter_entries(), |k: SnkId| k.0);
        }
        w.u32_seq(&self.parent);
        w.seq_len(self.versions.len());
        for &ver in &self.versions {
            w.u64(ver);
        }
        w.u64(self.mutation_counter);
        let mut pm: Vec<(u32, u64, u32, u32)> = self
            .proj_merge
            .iter()
            .map(|(&(c, i, x), &aux)| (c.0, i as u64, x.0, aux.0))
            .collect();
        pm.sort_unstable();
        w.seq_len(pm.len());
        for (c, i, x, aux) in pm {
            w.u32(c);
            w.u64(i);
            w.u32(x);
            w.u32(aux);
        }
        w.seq_len(self.constraints.len());
        for con in self.constraints.iter() {
            write_expr(&mut w, &con.lhs);
            write_expr(&mut w, &con.rhs);
            w.u32(con.ann.0);
        }
        w.seq_len(self.clashes.len());
        for cl in &self.clashes {
            match cl {
                Clash::ConstructorMismatch { lhs, rhs, ann } => {
                    w.u8(0);
                    w.u32(lhs.0);
                    w.u32(rhs.0);
                    w.u32(ann.0);
                }
                Clash::ContravariantAnnotated {
                    cons,
                    position,
                    ann,
                } => {
                    w.u8(1);
                    w.u32(cons.0);
                    w.u64(*position as u64);
                    w.u32(ann.0);
                }
            }
        }
        w.u64(self.facts_processed as u64);
        w.u64(self.cycles_collapsed as u64);
        w.u64(self.fuel_spent as u64);
        w.u64(self.interruptions as u64);
        w.u64(self.depth_limit_hits as u64);
        match self.prov.as_deref() {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                let mut entries: Vec<(ProvKey, Reason)> = p.iter().map(|(&k, &r)| (k, r)).collect();
                entries.sort_unstable_by_key(|&(k, _)| prov_sort_key(k));
                w.seq_len(entries.len());
                for (k, reason) in entries {
                    write_prov_key(&mut w, k);
                    write_reason(&mut w, reason);
                }
            }
        }
        snap.section(TAG_SOLVED, w);
        Ok(())
    }

    /// Serializes into a standalone snapshot container holding just the
    /// [`TAG_ALGEBRA`] and [`TAG_SOLVED`] sections (higher layers append
    /// their own sections via [`System::snapshot_sections`]).
    ///
    /// # Errors
    ///
    /// See [`System::snapshot_sections`].
    pub fn snapshot_bytes(&self) -> SnapResult<Vec<u8>> {
        let mut snap = SnapshotWriter::new();
        self.snapshot_sections(&mut snap)?;
        Ok(snap.finish())
    }

    /// Rebuilds a system from a parsed snapshot container, validating
    /// every id against the restored tables — out-of-range variables,
    /// constructors, sources, sinks, or annotations are reported as
    /// [`SnapshotError::Corrupt`], never silently mis-restored.
    ///
    /// The restored system is at a fixpoint with an empty worklist, no
    /// open epochs, and exactly the stats/clashes/provenance of the
    /// snapshotted one.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on any structural or range violation.
    pub fn restore_sections(reader: &SnapshotReader<'_>) -> SnapResult<System<A>> {
        let mut ar = reader.section(TAG_ALGEBRA)?;
        let algebra = A::snapshot_read(&mut ar)?;
        ar.finish()?;
        let n_anns = algebra.len();

        let mut r = reader.section(TAG_SOLVED)?;
        let config = SolverConfig {
            cycle_elimination: r.bool()?,
            projection_merging: r.bool()?,
            cycle_search_depth: r_usize(r.u64()?)?,
        };
        let n_cons = r.seq_len()?;
        let mut constructors = Vec::with_capacity(n_cons);
        for _ in 0..n_cons {
            let name = r.str()?;
            let n_sig = r.seq_len()?;
            let mut signature = Vec::with_capacity(n_sig);
            for _ in 0..n_sig {
                signature.push(match r.u8()? {
                    0 => Variance::Covariant,
                    1 => Variance::Contravariant,
                    other => {
                        return Err(SnapshotError::corrupt(format!(
                            "invalid variance byte {other}"
                        )))
                    }
                });
            }
            constructors.push(Constructor { name, signature });
        }
        let n_vars = r_usize(r.u64()?)?;
        let var_id = |v: u32| -> SnapResult<VarId> {
            if (v as usize) < n_vars {
                Ok(VarId(v))
            } else {
                Err(SnapshotError::corrupt(format!(
                    "variable id {v} out of range ({n_vars} variables)"
                )))
            }
        };
        let cons_id = |c: u32| -> SnapResult<ConsId> {
            if (c as usize) < n_cons {
                Ok(ConsId(c))
            } else {
                Err(SnapshotError::corrupt(format!(
                    "constructor id {c} out of range ({n_cons} constructors)"
                )))
            }
        };
        let ann_id = |a: u32| -> SnapResult<AnnId> {
            if (a as usize) < n_anns {
                Ok(AnnId(a))
            } else {
                Err(SnapshotError::corrupt(format!(
                    "annotation id {a} out of range ({n_anns} annotations)"
                )))
            }
        };

        let n_sources = r.seq_len()?;
        let mut sources = Vec::with_capacity(n_sources);
        let mut source_ids = HashMap::with_capacity(n_sources);
        for i in 0..n_sources {
            let cons = cons_id(r.u32()?)?;
            let mut args = Vec::new();
            for raw in r.u32_seq()? {
                args.push(var_id(raw)?);
            }
            if args.len() != constructors[cons.index()].arity() {
                return Err(SnapshotError::corrupt(format!(
                    "source {i} applies constructor {} to {} args",
                    constructors[cons.index()].name,
                    args.len()
                )));
            }
            let s = Source { cons, args };
            if source_ids.insert(s.clone(), i as u32).is_some() {
                return Err(SnapshotError::corrupt(format!("duplicate source {i}")));
            }
            sources.push(s);
        }
        let n_sinks = r.seq_len()?;
        let mut sinks = Vec::with_capacity(n_sinks);
        let mut sink_ids = HashMap::with_capacity(n_sinks);
        for i in 0..n_sinks {
            let sink = match r.u8()? {
                0 => {
                    let cons = cons_id(r.u32()?)?;
                    let mut args = Vec::new();
                    for raw in r.u32_seq()? {
                        args.push(var_id(raw)?);
                    }
                    if args.len() != constructors[cons.index()].arity() {
                        return Err(SnapshotError::corrupt(format!(
                            "sink {i} applies constructor {} to {} args",
                            constructors[cons.index()].name,
                            args.len()
                        )));
                    }
                    Sink::Cons { cons, args }
                }
                1 => {
                    let cons = cons_id(r.u32()?)?;
                    let index = r_usize(r.u64()?)?;
                    let target = var_id(r.u32()?)?;
                    if index >= constructors[cons.index()].arity() {
                        return Err(SnapshotError::corrupt(format!(
                            "sink {i} projects position {index} of {}-ary constructor",
                            constructors[cons.index()].arity()
                        )));
                    }
                    Sink::Proj {
                        cons,
                        index,
                        target,
                    }
                }
                other => return Err(SnapshotError::corrupt(format!("invalid sink tag {other}"))),
            };
            if sink_ids.insert(sink.clone(), i as u32).is_some() {
                return Err(SnapshotError::corrupt(format!("duplicate sink {i}")));
            }
            sinks.push(sink);
        }
        let src_id = |s: u32| -> SnapResult<SrcId> {
            if (s as usize) < n_sources {
                Ok(SrcId(s))
            } else {
                Err(SnapshotError::corrupt(format!(
                    "source id {s} out of range ({n_sources} sources)"
                )))
            }
        };
        let snk_id = |s: u32| -> SnapResult<SnkId> {
            if (s as usize) < n_sinks {
                Ok(SnkId(s))
            } else {
                Err(SnapshotError::corrupt(format!(
                    "sink id {s} out of range ({n_sinks} sinks)"
                )))
            }
        };

        let mut vars: Vec<VarData> = Vec::with_capacity(n_vars);
        let mut live_entries = 0usize;
        for vi in 0..n_vars {
            let mut data = VarData {
                name: r.str()?.into(),
                ..VarData::default()
            };
            if !data
                .succs
                .load_log(read_typed_log(&mut r, var_id, ann_id)?, |_| {})
            {
                return Err(dup_entry("succ", vi));
            }
            if !data
                .preds
                .load_log(read_typed_log(&mut r, var_id, ann_id)?, |_| {})
            {
                return Err(dup_entry("pred", vi));
            }
            let lbs_by_cons = &mut data.lbs_by_cons;
            if !data
                .lbs
                .load_log(read_typed_log(&mut r, src_id, ann_id)?, |src| {
                    let head = sources[src.0 as usize].cons;
                    lbs_by_cons.push(head, src);
                })
            {
                return Err(dup_entry("lower-bound", vi));
            }
            if !data
                .ubs
                .load_log(read_typed_log(&mut r, snk_id, ann_id)?, |_| {})
            {
                return Err(dup_entry("upper-bound", vi));
            }
            live_entries += entry_count(&data);
            vars.push(data);
        }
        let parent = r.u32_seq()?;
        if parent.len() != n_vars {
            return Err(SnapshotError::corrupt(format!(
                "union-find has {} parents for {n_vars} variables",
                parent.len()
            )));
        }
        for &p in &parent {
            var_id(p)?;
        }
        let n_versions = r.seq_len()?;
        if n_versions != n_vars {
            return Err(SnapshotError::corrupt(format!(
                "{n_versions} version stamps for {n_vars} variables"
            )));
        }
        let mut versions = Vec::with_capacity(n_versions);
        for _ in 0..n_versions {
            versions.push(r.u64()?);
        }
        let mutation_counter = r.u64()?;
        let n_pm = r.seq_len()?;
        let mut proj_merge = HashMap::with_capacity(n_pm);
        for _ in 0..n_pm {
            let c = cons_id(r.u32()?)?;
            let i = r_usize(r.u64()?)?;
            let x = var_id(r.u32()?)?;
            let aux = var_id(r.u32()?)?;
            if proj_merge.insert((c, i, x), aux).is_some() {
                return Err(SnapshotError::corrupt("duplicate projection-merge entry"));
            }
        }
        let n_constraints = r.seq_len()?;
        let mut constraints = Vec::with_capacity(n_constraints);
        for _ in 0..n_constraints {
            let lhs = read_expr(&mut r, &var_id, &cons_id)?;
            let rhs = read_expr(&mut r, &var_id, &cons_id)?;
            let ann = ann_id(r.u32()?)?;
            constraints.push(Constraint { lhs, rhs, ann });
        }
        let n_clashes = r.seq_len()?;
        let mut clashes = Vec::with_capacity(n_clashes);
        let mut clash_set = HashSet::with_capacity(n_clashes);
        for _ in 0..n_clashes {
            let clash = match r.u8()? {
                0 => Clash::ConstructorMismatch {
                    lhs: cons_id(r.u32()?)?,
                    rhs: cons_id(r.u32()?)?,
                    ann: ann_id(r.u32()?)?,
                },
                1 => Clash::ContravariantAnnotated {
                    cons: cons_id(r.u32()?)?,
                    position: r_usize(r.u64()?)?,
                    ann: ann_id(r.u32()?)?,
                },
                other => return Err(SnapshotError::corrupt(format!("invalid clash tag {other}"))),
            };
            if !clash_set.insert(clash.clone()) {
                return Err(SnapshotError::corrupt("duplicate clash entry"));
            }
            clashes.push(clash);
        }
        let facts_processed = r_usize(r.u64()?)?;
        let cycles_collapsed = r_usize(r.u64()?)?;
        let fuel_spent = r_usize(r.u64()?)?;
        let interruptions = r_usize(r.u64()?)?;
        let depth_limit_hits = r_usize(r.u64()?)?;
        let prov = if r.bool()? {
            let n_prov = r.seq_len()?;
            let mut map = HashMap::with_capacity(n_prov);
            for _ in 0..n_prov {
                let key = read_prov_key(&mut r, &var_id, &src_id, &snk_id, &ann_id)?;
                let reason = read_reason(&mut r, &var_id, &src_id, &snk_id, &ann_id)?;
                if let Reason::Constraint(i) = reason {
                    if i >= n_constraints {
                        return Err(SnapshotError::corrupt(format!(
                            "provenance cites constraint {i} of {n_constraints}"
                        )));
                    }
                }
                if map.insert(key, reason).is_some() {
                    return Err(SnapshotError::corrupt("duplicate provenance key"));
                }
            }
            Some(Box::new(Provenance {
                base: None,
                map,
                pending: VecDeque::new(),
            }))
        } else {
            None
        };
        r.finish()?;

        Ok(System {
            algebra,
            constructors: CowVec::from_vec(constructors),
            vars,
            sources: InternTable::from_parts(sources, source_ids),
            sinks: InternTable::from_parts(sinks, sink_ids),
            worklist: VecDeque::new(),
            constraints: CowVec::from_vec(constraints),
            clashes,
            clash_set,
            facts_processed,
            config,
            parent,
            proj_merge,
            cycles_collapsed,
            versions,
            mutation_counter,
            live_entries,
            journal: None,
            fuel_spent,
            interruptions,
            depth_limit_hits,
            prov,
            pending_counts: PendingCounts::default(),
            scratch: SolverScratch::default(),
        })
    }

    /// Rebuilds a system from standalone snapshot bytes (the counterpart
    /// of [`System::snapshot_bytes`]).
    ///
    /// # Errors
    ///
    /// See [`System::restore_sections`].
    pub fn restore_bytes(bytes: &[u8]) -> SnapResult<System<A>> {
        let reader = SnapshotReader::parse(bytes)?;
        Self::restore_sections(&reader)
    }
}

/// An immutable, solved, shareable base system: the read-only layer under
/// copy-on-write session forks ([`System::fork`]).
///
/// Produced by [`System::into_base`], which freezes every layered store
/// (entry logs, constructor buckets, intern tables, constraints,
/// provenance) into `Arc`-shared cores. Forks bump those `Arc`s instead of
/// re-deserializing or re-solving, so forking is near-constant time and
/// each fork's private memory is proportional to its own deltas.
#[derive(Debug)]
pub struct BaseSystem<A: Algebra>(System<A>);

impl<A: Algebra> BaseSystem<A> {
    /// Read-only access to the underlying solved system (queries only —
    /// the base is never mutated).
    pub fn system(&self) -> &System<A> {
        &self.0
    }

    /// Aggregate statistics of the frozen solved form.
    pub fn stats(&self) -> SolverStats {
        self.0.stats()
    }
}

impl<A: Algebra> System<A> {
    /// Freezes this solved system into an immutable [`BaseSystem`] that
    /// [`System::fork`] can share across sessions.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::State`] unless the system is at a fixpoint (empty
    /// worklist) with no open epochs — the same precondition as
    /// snapshotting, and what guarantees that epochs opened *after* a fork
    /// only ever journal overlay entries.
    pub fn into_base(mut self) -> SnapResult<BaseSystem<A>> {
        if self.pending_facts() != 0 {
            return Err(SnapshotError::state(format!(
                "cannot freeze a base with {} pending worklist facts (solve first)",
                self.pending_facts()
            )));
        }
        if self.epoch_depth() != 0 {
            return Err(SnapshotError::state(format!(
                "cannot freeze a base with {} open epochs (commit or pop them first)",
                self.epoch_depth()
            )));
        }
        self.pending_counts.flush();
        for v in &mut self.vars {
            v.succs.freeze();
            v.preds.freeze();
            v.lbs.freeze();
            v.ubs.freeze();
            v.lbs_by_cons.freeze();
        }
        self.constructors.freeze();
        self.constraints.freeze();
        self.sources.freeze();
        self.sinks.freeze();
        if let Some(p) = self.prov.as_mut() {
            p.freeze();
        }
        Ok(BaseSystem(self))
    }

    /// Creates a mutable copy-on-write fork of a frozen base: all
    /// solved-form tiers, intern tables, constraints, and provenance are
    /// shared by `Arc`; only deltas made through the fork allocate. The
    /// fork answers every query identically to the base (including stats
    /// and provenance) and supports the full grow/solve/epoch surface.
    pub fn fork(base: &BaseSystem<A>) -> System<A>
    where
        A: Clone,
    {
        let b = &base.0;
        System {
            algebra: b.algebra.clone(),
            constructors: b.constructors.clone(),
            vars: b.vars.clone(),
            sources: b.sources.clone(),
            sinks: b.sinks.clone(),
            worklist: VecDeque::new(),
            constraints: b.constraints.clone(),
            clashes: b.clashes.clone(),
            clash_set: b.clash_set.clone(),
            facts_processed: b.facts_processed,
            config: b.config,
            parent: b.parent.clone(),
            proj_merge: b.proj_merge.clone(),
            cycles_collapsed: b.cycles_collapsed,
            versions: b.versions.clone(),
            mutation_counter: b.mutation_counter,
            live_entries: b.live_entries,
            journal: None,
            fuel_spent: b.fuel_spent,
            interruptions: b.interruptions,
            depth_limit_hits: b.depth_limit_hits,
            prov: b.prov.clone(),
            pending_counts: PendingCounts::default(),
            scratch: SolverScratch::default(),
        }
    }
}

fn r_usize(v: u64) -> SnapResult<usize> {
    usize::try_from(v).map_err(|_| SnapshotError::corrupt(format!("value {v} overflows usize")))
}

fn dup_entry(what: &str, var: usize) -> SnapshotError {
    SnapshotError::corrupt(format!("duplicate {what} entry on variable {var}"))
}

fn write_log<K: Copy>(
    w: &mut ByteWriter,
    len: usize,
    entries: impl Iterator<Item = (K, AnnId)>,
    key: impl Fn(K) -> u32,
) {
    w.seq_len(len);
    for (k, a) in entries {
        w.u32(key(k));
        w.u32(a.0);
    }
}

fn read_typed_log<K>(
    r: &mut ByteReader<'_>,
    key: impl Fn(u32) -> SnapResult<K>,
    ann: impl Fn(u32) -> SnapResult<AnnId>,
) -> SnapResult<Vec<(K, AnnId)>> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
    for _ in 0..n {
        let k = key(r.u32()?)?;
        let a = ann(r.u32()?)?;
        out.push((k, a));
    }
    Ok(out)
}

fn write_expr(w: &mut ByteWriter, e: &SetExpr) {
    match e {
        SetExpr::Var(v) => {
            w.u8(0);
            w.u32(v.0);
        }
        SetExpr::Cons(c, args) => {
            w.u8(1);
            w.u32(c.0);
            let args: Vec<u32> = args.iter().map(|v| v.0).collect();
            w.u32_seq(&args);
        }
        SetExpr::Proj(c, i, v) => {
            w.u8(2);
            w.u32(c.0);
            w.u64(*i as u64);
            w.u32(v.0);
        }
    }
}

fn read_expr(
    r: &mut ByteReader<'_>,
    var_id: &impl Fn(u32) -> SnapResult<VarId>,
    cons_id: &impl Fn(u32) -> SnapResult<ConsId>,
) -> SnapResult<SetExpr> {
    match r.u8()? {
        0 => Ok(SetExpr::Var(var_id(r.u32()?)?)),
        1 => {
            let c = cons_id(r.u32()?)?;
            let mut args = Vec::new();
            for raw in r.u32_seq()? {
                args.push(var_id(raw)?);
            }
            Ok(SetExpr::Cons(c, args))
        }
        2 => {
            let c = cons_id(r.u32()?)?;
            let i = r_usize(r.u64()?)?;
            let v = var_id(r.u32()?)?;
            Ok(SetExpr::Proj(c, i, v))
        }
        other => Err(SnapshotError::corrupt(format!(
            "invalid set-expression tag {other}"
        ))),
    }
}

fn prov_sort_key(k: ProvKey) -> (u8, u32, u32, u32) {
    match k {
        ProvKey::Edge(x, y, a) => (0, x.0, y.0, a.0),
        ProvKey::Lb(x, s, a) => (1, x.0, s.0, a.0),
        ProvKey::Ub(x, s, a) => (2, x.0, s.0, a.0),
    }
}

fn write_prov_key(w: &mut ByteWriter, k: ProvKey) {
    let (tag, a, b, ann) = prov_sort_key(k);
    w.u8(tag);
    w.u32(a);
    w.u32(b);
    w.u32(ann);
}

fn read_prov_key(
    r: &mut ByteReader<'_>,
    var_id: &impl Fn(u32) -> SnapResult<VarId>,
    src_id: &impl Fn(u32) -> SnapResult<SrcId>,
    snk_id: &impl Fn(u32) -> SnapResult<SnkId>,
    ann_id: &impl Fn(u32) -> SnapResult<AnnId>,
) -> SnapResult<ProvKey> {
    let tag = r.u8()?;
    let a = r.u32()?;
    let b = r.u32()?;
    let ann = ann_id(r.u32()?)?;
    match tag {
        0 => Ok(ProvKey::Edge(var_id(a)?, var_id(b)?, ann)),
        1 => Ok(ProvKey::Lb(var_id(a)?, src_id(b)?, ann)),
        2 => Ok(ProvKey::Ub(var_id(a)?, snk_id(b)?, ann)),
        other => Err(SnapshotError::corrupt(format!(
            "invalid provenance key tag {other}"
        ))),
    }
}

fn write_reason(w: &mut ByteWriter, reason: Reason) {
    match reason {
        Reason::Constraint(i) => {
            w.u8(0);
            w.u64(i as u64);
        }
        Reason::TransLb { edge, lb } => {
            w.u8(1);
            w.u32(edge.0 .0);
            w.u32(edge.1 .0);
            w.u32(edge.2 .0);
            w.u32(lb.0 .0);
            w.u32(lb.1 .0);
            w.u32(lb.2 .0);
        }
        Reason::TransUb { edge, ub } => {
            w.u8(2);
            w.u32(edge.0 .0);
            w.u32(edge.1 .0);
            w.u32(edge.2 .0);
            w.u32(ub.0 .0);
            w.u32(ub.1 .0);
            w.u32(ub.2 .0);
        }
        Reason::Meet {
            var,
            src,
            src_ann,
            snk,
            snk_ann,
        } => {
            w.u8(3);
            w.u32(var.0);
            w.u32(src.0);
            w.u32(src_ann.0);
            w.u32(snk.0);
            w.u32(snk_ann.0);
        }
        Reason::Collapsed { from } => {
            w.u8(4);
            w.u32(from.0);
        }
    }
}

fn read_reason(
    r: &mut ByteReader<'_>,
    var_id: &impl Fn(u32) -> SnapResult<VarId>,
    src_id: &impl Fn(u32) -> SnapResult<SrcId>,
    snk_id: &impl Fn(u32) -> SnapResult<SnkId>,
    ann_id: &impl Fn(u32) -> SnapResult<AnnId>,
) -> SnapResult<Reason> {
    match r.u8()? {
        0 => Ok(Reason::Constraint(r_usize(r.u64()?)?)),
        1 => Ok(Reason::TransLb {
            edge: (var_id(r.u32()?)?, var_id(r.u32()?)?, ann_id(r.u32()?)?),
            lb: (var_id(r.u32()?)?, src_id(r.u32()?)?, ann_id(r.u32()?)?),
        }),
        2 => Ok(Reason::TransUb {
            edge: (var_id(r.u32()?)?, var_id(r.u32()?)?, ann_id(r.u32()?)?),
            ub: (var_id(r.u32()?)?, snk_id(r.u32()?)?, ann_id(r.u32()?)?),
        }),
        3 => Ok(Reason::Meet {
            var: var_id(r.u32()?)?,
            src: src_id(r.u32()?)?,
            src_ann: ann_id(r.u32()?)?,
            snk: snk_id(r.u32()?)?,
            snk_ann: ann_id(r.u32()?)?,
        }),
        4 => Ok(Reason::Collapsed {
            from: var_id(r.u32()?)?,
        }),
        other => Err(SnapshotError::corrupt(format!(
            "invalid provenance reason tag {other}"
        ))),
    }
}

/// Counts a variable's solved-form entries the same way [`SolverStats`]
/// does (succs + lbs + ubs; preds mirror succs and are not counted).
/// O(1) per category thanks to the entry logs.
fn entry_count(data: &VarData) -> usize {
    data.succs.len() + data.lbs.len() + data.ubs.len()
}

/// Merges the sorted annotation slices of several [`AnnSet`]s into one
/// sorted, duplicate-free vec without a full re-sort (the per-constructor
/// bucket query path: usually a single source per head).
fn merge_sorted_anns(sets: &[&AnnSet]) -> Vec<AnnId> {
    match sets {
        [] => Vec::new(),
        [one] => one.as_slice().to_vec(),
        many => {
            let mut out: Vec<AnnId> = Vec::with_capacity(many.iter().map(|s| s.len()).sum());
            for s in many {
                out.extend_from_slice(s.as_slice());
            }
            out.sort_unstable();
            out.dedup();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::MonoidAlgebra;
    use rasc_automata::{Alphabet, Dfa};

    fn one_bit_system() -> (
        System<MonoidAlgebra>,
        rasc_automata::SymbolId,
        rasc_automata::SymbolId,
    ) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let m = Dfa::one_bit(&sigma, g, k);
        (System::new(MonoidAlgebra::new(&m)), g, k)
    }

    #[test]
    fn snapshot_round_trips_the_solved_form() {
        let (mut sys, g, k) = one_bit_system();
        sys.enable_provenance();
        let c = sys.constructor("c", &[]);
        let d = sys.constructor("d", &[]);
        let pair = sys.constructor("pair", &[Variance::Covariant, Variance::Covariant]);
        let (x, y, z, a, b) = (
            sys.var("X"),
            sys.var("Y"),
            sys.var("Z"),
            sys.var("A"),
            sys.var("B"),
        );
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::var(x), SetExpr::var(y), fk).unwrap();
        sys.add_ann(SetExpr::var(y), SetExpr::var(z), fg).unwrap();
        // A cycle so union-find state is nontrivial.
        sys.add(SetExpr::var(a), SetExpr::var(b)).unwrap();
        sys.add(SetExpr::var(b), SetExpr::var(a)).unwrap();
        // A clash and a projection.
        sys.add(SetExpr::var(x), SetExpr::cons(d, [])).unwrap();
        sys.add(SetExpr::cons_vars(pair, [x, y]), SetExpr::var(a))
            .unwrap();
        sys.add(SetExpr::proj(pair, 0, a), SetExpr::var(b)).unwrap();
        sys.solve();

        let bytes = sys.snapshot_bytes().unwrap();
        let back: System<MonoidAlgebra> = System::restore_bytes(&bytes).unwrap();
        assert_eq!(back.stats(), sys.stats());
        assert_eq!(back.clashes(), sys.clashes());
        assert_eq!(back.num_constraints(), sys.num_constraints());
        assert_eq!(back.render_solved_form(), sys.render_solved_form());
        assert_eq!(
            back.lower_bound_annotations(z, c),
            sys.lower_bound_annotations(z, c)
        );
        assert_eq!(back.explain(b, c).len(), sys.explain(b, c).len());
        assert_eq!(back.find_root(b), sys.find_root(b), "union-find survives");
        // Deterministic serialization: snapshotting the restored system
        // reproduces the bytes exactly.
        assert_eq!(back.snapshot_bytes().unwrap(), bytes);
        // The restored system keeps solving correctly.
        let mut back = back;
        let e = sys.algebra().identity();
        let w2 = back.var("W2");
        back.add_ann(SetExpr::var(z), SetExpr::var(w2), e).unwrap();
        back.solve();
        assert_eq!(back.lower_bound_annotations(w2, c), vec![fg]);
    }

    #[test]
    fn snapshot_preconditions_are_typed_state_errors() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let x = sys.var("X");
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        // Pending worklist → State error.
        assert!(matches!(
            sys.snapshot_bytes(),
            Err(SnapshotError::State { .. })
        ));
        sys.solve();
        sys.push_epoch();
        assert!(matches!(
            sys.snapshot_bytes(),
            Err(SnapshotError::State { .. })
        ));
        sys.commit_epoch();
        assert!(sys.snapshot_bytes().is_ok());
    }

    #[test]
    fn transitive_closure_composes_annotations() {
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y, z) = (sys.var("X"), sys.var("Y"), sys.var("Z"));
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::var(x), SetExpr::var(y), fk).unwrap();
        sys.add_ann(SetExpr::var(y), SetExpr::var(z), fg).unwrap();
        sys.solve();
        // c ⊆^{f_g} X, X ⊆^{f_k} Y ⇒ c ⊆^{f_k∘f_g = f_k} Y.
        assert_eq!(sys.lower_bound_annotations(y, c), vec![fk]);
        // then ⊆^{f_g} Z ⇒ c ⊆^{f_g} Z.
        assert_eq!(sys.lower_bound_annotations(z, c), vec![fg]);
    }

    #[test]
    fn decomposition_rule() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        // o(W) ⊆^g X ⊆ o(Y): decomposition gives W ⊆^g Y.
        sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::cons_vars(o, [y]))
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(z))
            .unwrap();
        sys.solve();
        assert!(sys.is_consistent());
        // W ⊆^{f_g} Y so c ⊆^{f_g ∘ f_g = f_g} Y.
        assert_eq!(sys.lower_bound_annotations(y, c), vec![fg]);
    }

    #[test]
    fn mismatched_constructors_clash() {
        let (mut sys, _, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let d = sys.constructor("d", &[]);
        let x = sys.var("X");
        sys.add(SetExpr::cons(c, []), SetExpr::var(x)).unwrap();
        sys.add(SetExpr::var(x), SetExpr::cons(d, [])).unwrap();
        sys.solve();
        assert_eq!(sys.clashes().len(), 1);
        assert!(matches!(
            sys.clashes()[0],
            Clash::ConstructorMismatch { .. }
        ));
    }

    #[test]
    fn projection_rule() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let pair = sys.constructor("pair", &[Variance::Covariant, Variance::Covariant]);
        let (a, b, y, z) = (sys.var("A"), sys.var("B"), sys.var("Y"), sys.var("Z"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(pair, [a, b]), SetExpr::var(y))
            .unwrap();
        sys.add(SetExpr::proj(pair, 0, y), SetExpr::var(z)).unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(z, c), vec![fg]);
        // Nothing flowed from the second component.
        assert!(sys.lower_bound_annotations(z, pair).is_empty());
    }

    #[test]
    fn annotated_projection_composes() {
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (a, y, z) = (sys.var("A"), sys.var("Y"), sys.var("Z"));
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [a]), SetExpr::var(y))
            .unwrap();
        // o⁻¹(Y) ⊆^k Z: the projected component is appended k.
        sys.add_ann(SetExpr::proj(o, 0, y), SetExpr::var(z), fk)
            .unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(z, c), vec![fk]);
    }

    #[test]
    fn online_solving_is_incremental() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.solve();
        assert!(sys.lower_bound_annotations(y, c).is_empty());
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(y, c), vec![fg]);
    }

    #[test]
    fn contravariant_epsilon_flows_reversed() {
        let (mut sys, _, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let f = sys.constructor("f", &[Variance::Contravariant]);
        let (a, b, x) = (sys.var("A"), sys.var("B"), sys.var("X"));
        sys.add(SetExpr::cons(c, []), SetExpr::var(b)).unwrap();
        sys.add(SetExpr::cons_vars(f, [a]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::cons_vars(f, [b]))
            .unwrap();
        sys.solve();
        // Contravariance: B flows into A.
        assert_eq!(sys.lower_bound_annotations(a, c).len(), 1);
        assert!(sys.is_consistent());
    }

    #[test]
    fn contravariant_annotated_is_a_clash() {
        let (mut sys, g, _) = one_bit_system();
        let f = sys.constructor("f", &[Variance::Contravariant]);
        let (a, b, x) = (sys.var("A"), sys.var("B"), sys.var("X"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons_vars(f, [a]), SetExpr::var(x), fg)
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::cons_vars(f, [b]))
            .unwrap();
        sys.solve();
        assert!(matches!(
            sys.clashes()[0],
            Clash::ContravariantAnnotated { .. }
        ));
    }

    #[test]
    fn arity_and_projection_validation() {
        let (mut sys, _, _) = one_bit_system();
        let pair = sys.constructor("pair", &[Variance::Covariant, Variance::Covariant]);
        let x = sys.var("X");
        let err = sys
            .add(SetExpr::cons_vars(pair, [x]), SetExpr::var(x))
            .unwrap_err();
        assert!(matches!(err, CoreError::ArityMismatch { .. }));
        let err = sys
            .add(SetExpr::proj(pair, 2, x), SetExpr::var(x))
            .unwrap_err();
        assert!(matches!(err, CoreError::ProjectionIndex { .. }));
        let err = sys
            .add(SetExpr::var(x), SetExpr::proj(pair, 0, x))
            .unwrap_err();
        assert_eq!(err, CoreError::ProjectionOnRight);
    }

    #[test]
    fn per_variable_bounds_respect_section_4() {
        // §4: each variable has at most n·|F_M^≡| lower and upper bounds,
        // where n counts the distinct source/sink expressions.
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let vars: Vec<VarId> = (0..12).map(|i| sys.var(&format!("v{i}"))).collect();
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(vars[0]), fg)
            .unwrap();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j && (i + j) % 3 == 0 {
                    let ann = if i % 2 == 0 { fg } else { fk };
                    sys.add_ann(SetExpr::var(vars[i]), SetExpr::var(vars[j]), ann)
                        .unwrap();
                }
            }
        }
        sys.solve();
        let stats = sys.stats();
        let f_bound = sys.algebra().len();
        // One source expression: per-variable lower bounds ≤ 1·|F|.
        assert!(
            stats.max_lower_bounds_per_var <= f_bound,
            "{} > {}",
            stats.max_lower_bounds_per_var,
            f_bound
        );
    }

    #[test]
    fn solved_form_renders_the_papers_notation() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (w, x, y) = (sys.var("W"), sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [w]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::proj(o, 0, x), SetExpr::var(y)).unwrap();
        sys.solve();
        let rendered = sys.render_solved_form();
        assert!(rendered.contains("c ⊆^"), "{rendered}");
        assert!(rendered.contains("o(W) ⊆ X"), "{rendered}");
        assert!(
            rendered.contains("W ⊆"),
            "derived edge from projection: {rendered}"
        );
    }

    #[test]
    fn pop_epoch_restores_solved_form_and_stats() {
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        let before_stats = sys.stats();
        let before_form = sys.render_solved_form();
        assert_eq!(sys.epoch_depth(), 0);

        sys.push_epoch();
        assert_eq!(sys.epoch_depth(), 1);
        let z = sys.var("Z");
        let d = sys.constructor("d", &[]);
        sys.add_ann(SetExpr::var(y), SetExpr::var(z), fk).unwrap();
        sys.add(SetExpr::cons(d, []), SetExpr::var(z)).unwrap();
        sys.add(SetExpr::var(z), SetExpr::cons(c, [])).unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(z, c), vec![fk]);
        assert!(!sys.is_consistent(), "d ⊆ Z ⊆ c(...) clashes");

        assert!(sys.pop_epoch());
        assert_eq!(sys.epoch_depth(), 0);
        assert_eq!(sys.stats(), before_stats);
        assert_eq!(sys.render_solved_form(), before_form);
        assert!(sys.is_consistent());
        assert_eq!(sys.num_vars(), 2);
        assert!(!sys.pop_epoch(), "no epoch left to pop");
    }

    #[test]
    fn nested_epochs_unwind_independently() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.push_epoch();
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        let mid_form = sys.render_solved_form();
        let mid_stats = sys.stats();
        sys.push_epoch();
        let z = sys.var("Z");
        sys.add(SetExpr::var(y), SetExpr::var(z)).unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(z, c), vec![fg]);
        assert!(sys.pop_epoch());
        assert_eq!(sys.render_solved_form(), mid_form);
        assert_eq!(sys.stats(), mid_stats);
        assert_eq!(sys.lower_bound_annotations(y, c), vec![fg]);
        assert!(sys.pop_epoch());
        assert!(sys.lower_bound_annotations(y, c).is_empty());
    }

    #[test]
    fn pop_epoch_unwinds_cycle_collapses() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y, z) = (sys.var("X"), sys.var("Y"), sys.var("Z"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        let before = sys.stats();
        sys.push_epoch();
        // Close an ε-cycle X → Y → Z → X: collapses all three.
        sys.add(SetExpr::var(y), SetExpr::var(z)).unwrap();
        sys.add(SetExpr::var(z), SetExpr::var(x)).unwrap();
        sys.solve();
        assert!(sys.stats().cycles_collapsed > before.cycles_collapsed);
        assert_eq!(sys.find(z), sys.find(x));
        assert!(sys.pop_epoch());
        let after = sys.stats();
        assert_eq!(after, before);
        assert_ne!(sys.find(z), sys.find(x), "classes separated again");
        assert_eq!(sys.lower_bound_annotations(y, c), vec![fg]);
        assert!(sys.lower_bound_annotations(z, c).is_empty());
    }

    #[test]
    fn version_stamps_move_forward_across_rollback() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.solve();
        let v0 = sys.var_version(y);
        let g0 = sys.global_version();
        sys.push_epoch();
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        let v1 = sys.var_version(y);
        assert!(v1 > v0, "mid-epoch change stamped");
        sys.pop_epoch();
        assert!(sys.var_version(y) > v1, "rollback re-stamps, never rewinds");
        assert!(sys.global_version() > g0);
    }

    #[test]
    fn useless_annotations_are_pruned() {
        // L = g exactly: annotation gg is a substring of no word and must
        // be dropped by the solver.
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let m = rasc_automata::Regex::parse("g", &sigma)
            .unwrap()
            .compile(&sigma);
        let mut sys = System::new(MonoidAlgebra::new(&m));
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::var(x), SetExpr::var(y), fg).unwrap();
        sys.solve();
        assert!(
            sys.lower_bound_annotations(y, c).is_empty(),
            "gg cannot extend to a word of L(M) and is pruned"
        );
    }

    #[test]
    fn explain_traces_derivation_to_surface_constraints() {
        // The §2.4 running example: c ⊆^g W, o(W) ⊆^g X, X ⊆ o(Y),
        // o(Y) ⊆ Z — solving derives c ⊆^{f_g} Y via resolution and
        // transitive closure.
        let (mut sys, g, _k) = one_bit_system();
        sys.enable_provenance();
        assert!(sys.provenance_enabled());
        let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let fg = sys.algebra_mut().word(&[g]);
        let eps = sys.algebra().identity();
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::var(x), SetExpr::cons_vars(o, [y]), eps)
            .unwrap();
        sys.add_ann(SetExpr::cons_vars(o, [y]), SetExpr::var(z), eps)
            .unwrap();
        sys.solve();

        let steps = sys.explain(y, c);
        assert!(!steps.is_empty(), "derivation chain must be non-empty");
        // The chain bottoms out in the surface constraints that caused
        // the flow: c ⊆^g W (index 0) and the resolution participants.
        assert!(
            steps.iter().any(|s| s.constraint == Some(0)),
            "chain cites constraint #0: {steps:#?}"
        );
        assert!(
            steps.iter().any(|s| s.rule == "resolve"),
            "W flows to Y only through §3.1 resolution: {steps:#?}"
        );
        // A variable with no such lower bound has nothing to explain.
        assert!(sys.explain(x, c).is_empty());
    }

    #[test]
    fn explain_is_empty_without_provenance() {
        let (mut sys, g, _k) = one_bit_system();
        let w = sys.var("W");
        let c = sys.constructor("c", &[]);
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        sys.solve();
        assert_eq!(sys.lower_bound_annotations(w, c).len(), 1);
        assert!(sys.explain(w, c).is_empty(), "recording never enabled");
    }

    #[test]
    fn provenance_rolls_back_with_its_epoch() {
        let (mut sys, g, _k) = one_bit_system();
        sys.enable_provenance();
        let (w, y) = (sys.var("W"), sys.var("Y"));
        let c = sys.constructor("c", &[]);
        let fg = sys.algebra_mut().word(&[g]);
        let eps = sys.algebra().identity();
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        sys.push_epoch();
        sys.add_ann(SetExpr::var(w), SetExpr::var(y), eps).unwrap();
        sys.solve();
        assert!(!sys.explain(y, c).is_empty(), "derived inside the epoch");
        sys.pop_epoch();
        assert!(
            sys.explain(y, c).is_empty(),
            "the lower bound and its provenance rolled back together"
        );
        // Re-deriving after rollback records a fresh, correct reason.
        sys.add_ann(SetExpr::var(w), SetExpr::var(y), eps).unwrap();
        sys.solve();
        let steps = sys.explain(y, c);
        assert!(steps.iter().any(|s| s.constraint == Some(1)), "{steps:#?}");
    }

    #[test]
    fn new_stats_counters_track_budgets_and_roll_back() {
        use crate::budget::InterruptReason;
        let (mut sys, g, _k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let fg = sys.algebra_mut().word(&[g]);
        let mut prev = sys.var("V0");
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(prev), fg)
            .unwrap();
        sys.push_epoch();
        let before = sys.stats();
        assert_eq!(before.fuel_spent, 0, "unlimited solves consume no fuel");
        for i in 1..20 {
            let v = sys.var(&format!("V{i}"));
            sys.add_ann(SetExpr::var(prev), SetExpr::var(v), fg)
                .unwrap();
            prev = v;
        }
        let outcome = sys.solve_bounded(&Budget::unlimited().with_steps(3));
        assert_eq!(outcome, Outcome::Interrupted(InterruptReason::Steps));
        let mid = sys.stats();
        assert_eq!(mid.fuel_spent, 3);
        assert_eq!(mid.interruptions, 1);
        sys.pop_epoch();
        assert_eq!(sys.stats(), before, "all new counters restored exactly");
    }

    /// Regression test for the cycle-search visited set: with the old
    /// linear `Vec::contains` scan a 10k-node ε-cycle cost O(n²) inside a
    /// single worklist step; the hash-backed walk collapses it comfortably
    /// within a modest step budget (DFS work is not metered, so the budget
    /// bounds only the fact drain — the deadline below is the backstop).
    #[test]
    fn ten_thousand_node_cycle_collapses_within_budget() {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let m = Dfa::one_bit(&sigma, g, k);
        let mut sys = System::with_config(
            MonoidAlgebra::new(&m),
            SolverConfig {
                cycle_search_depth: 20_000,
                ..SolverConfig::default()
            },
        );
        const N: usize = 10_000;
        let vars: Vec<VarId> = (0..N).map(|i| sys.var(&format!("v{i}"))).collect();
        for i in 0..N {
            sys.add(SetExpr::var(vars[i]), SetExpr::var(vars[(i + 1) % N]))
                .unwrap();
        }
        let outcome = sys.solve_bounded(
            &Budget::unlimited()
                .with_steps(500_000)
                .with_deadline_millis(60_000),
        );
        assert_eq!(outcome, Outcome::Complete);
        assert!(sys.stats().cycles_collapsed >= 1);
        let root = sys.find_root(vars[0]);
        assert!(
            vars.iter().all(|&v| sys.find_root(v) == root),
            "all 10k cycle members collapsed into one class"
        );
    }

    /// The hash-backed dedup in `constructor_expr_keys` must keep the old
    /// first-occurrence emission order (downstream annotation-variable
    /// reconstruction numbers keys by position).
    #[test]
    fn constructor_expr_keys_keep_first_occurrence_order() {
        let (mut sys, g, _k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let d = sys.constructor("d", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (w, x, y) = (sys.var("W"), sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg)
            .unwrap();
        sys.add_ann(SetExpr::cons_vars(o, [w]), SetExpr::var(x), fg)
            .unwrap();
        // Duplicates of earlier keys plus a sink-only key.
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(y), fg)
            .unwrap();
        sys.add(SetExpr::var(y), SetExpr::cons(d, [])).unwrap();
        sys.solve();
        let keys = sys.constructor_expr_keys();
        let heads: Vec<ConsId> = keys.iter().map(|(cons, _)| *cons).collect();
        assert_eq!(heads, vec![c, o, d], "first-occurrence order, deduped");
    }
}
