//! The n-bit gen/kill algebra (§3.3) with bit-parallel composition.

use std::collections::HashMap;

use super::{Algebra, AnnId};

/// Annotations for the paper's *n-bit language*: the product of `n`
/// 1-bit gen/kill machines (Figure 1), used for interprocedural bit-vector
/// dataflow (§3.3).
///
/// Each annotation is a dataflow transfer function
/// `out = (in & !kill) | gen`. The product monoid has `3ⁿ` elements but
/// each is just a pair of masks, so composition is two bitwise operations
/// instead of a table lookup — a specialization the paper's generic
/// construction would realize via a `2ⁿ`-state product automaton. The
/// equivalence of the two is checked by cross-validation tests for small
/// `n` (see `tests/algebra_cross_check.rs`).
///
/// # Example
///
/// ```
/// use rasc_core::algebra::{Algebra, GenKillAlgebra};
///
/// let mut alg = GenKillAlgebra::new(2);
/// let gen0 = alg.transfer(0b01, 0);   // gen fact 0
/// let kill0 = alg.transfer(0, 0b01);  // kill fact 0
/// let path = alg.compose(kill0, gen0); // gen then kill
/// assert_eq!(alg.apply(path, 0b00), 0b00);
/// let path2 = alg.compose(gen0, kill0); // kill then gen
/// assert_eq!(alg.apply(path2, 0b00), 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct GenKillAlgebra {
    bits: u32,
    mask: u64,
    /// Interned `(gen, kill)` pairs; invariant: `gen & kill == 0` (a gen
    /// overrides a kill of the same bit, so kill bits shadowed by gen are
    /// normalized away).
    anns: Vec<(u64, u64)>,
    by_ann: HashMap<(u64, u64), AnnId>,
}

impl GenKillAlgebra {
    /// Creates the algebra tracking `bits` dataflow facts (at most 64).
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn new(bits: u32) -> GenKillAlgebra {
        assert!(bits <= 64, "at most 64 dataflow facts are supported");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut alg = GenKillAlgebra {
            bits,
            mask,
            anns: Vec::new(),
            by_ann: HashMap::new(),
        };
        alg.intern(0, 0); // identity
        alg
    }

    /// The number of tracked facts.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Interns the transfer function with the given gen and kill masks.
    ///
    /// Masks are truncated to the tracked facts; kill bits also present in
    /// `gen` are dropped (gen wins, matching `out = (in & !kill) | gen`).
    pub fn transfer(&mut self, gen: u64, kill: u64) -> AnnId {
        let gen = gen & self.mask;
        let kill = kill & self.mask & !gen;
        self.intern(gen, kill)
    }

    /// The gen mask of an annotation.
    pub fn gen(&self, a: AnnId) -> u64 {
        self.anns[a.index()].0
    }

    /// The kill mask of an annotation.
    pub fn kill(&self, a: AnnId) -> u64 {
        self.anns[a.index()].1
    }

    /// Applies the transfer function to an input fact vector.
    pub fn apply(&self, a: AnnId, input: u64) -> u64 {
        let (gen, kill) = self.anns[a.index()];
        ((input & self.mask) & !kill) | gen
    }

    fn intern(&mut self, gen: u64, kill: u64) -> AnnId {
        if let Some(&id) = self.by_ann.get(&(gen, kill)) {
            return id;
        }
        let id = AnnId(crate::id_u32(self.anns.len(), "annotations"));
        self.anns.push((gen, kill));
        self.by_ann.insert((gen, kill), id);
        id
    }
}

impl Algebra for GenKillAlgebra {
    fn identity(&self) -> AnnId {
        AnnId(0)
    }

    fn compose(&mut self, later: AnnId, earlier: AnnId) -> AnnId {
        let (g2, k2) = self.anns[later.index()];
        let (g1, k1) = self.anns[earlier.index()];
        // Standard gen/kill composition: f₂ ∘ f₁.
        let gen = g2 | (g1 & !k2);
        let kill = (k2 | k1) & !gen;
        self.intern(gen, kill)
    }

    fn try_compose(&self, later: AnnId, earlier: AnnId) -> Option<AnnId> {
        let (g2, k2) = self.anns[later.index()];
        let (g1, k1) = self.anns[earlier.index()];
        let gen = g2 | (g1 & !k2);
        let kill = (k2 | k1) & !gen;
        self.by_ann.get(&(gen, kill)).copied()
    }

    fn is_accepting(&self, a: AnnId) -> bool {
        // A word of the product language is accepted by fact i's machine
        // iff fact i holds after running from the empty fact set; "some
        // fact holds" is the natural acceptance for the product-of-accepts
        // query. Per-fact queries use [`GenKillAlgebra::apply`].
        self.anns[a.index()].0 != 0
    }

    fn describe(&self, a: AnnId) -> String {
        let (gen, kill) = self.anns[a.index()];
        format!("gen={gen:#b} kill={kill:#b}")
    }

    fn len(&self) -> usize {
        self.anns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let mut alg = GenKillAlgebra::new(4);
        let t = alg.transfer(0b0101, 0b1010);
        let e = alg.identity();
        assert_eq!(alg.compose(t, e), t);
        assert_eq!(alg.compose(e, t), t);
    }

    #[test]
    fn gen_overrides_same_bit_kill() {
        let mut alg = GenKillAlgebra::new(1);
        // transfer with both gen and kill on bit 0 behaves as pure gen
        let t = alg.transfer(1, 1);
        assert_eq!(alg.apply(t, 0), 1);
        assert_eq!(alg.apply(t, 1), 1);
        assert_eq!(t, alg.transfer(1, 0), "normalized to the same id");
    }

    #[test]
    fn composition_matches_sequential_application() {
        let mut alg = GenKillAlgebra::new(8);
        let cases = [(0x0f, 0x30), (0x01, 0x0e), (0x00, 0xff), (0xaa, 0x55)];
        for &(g1, k1) in &cases {
            for &(g2, k2) in &cases {
                let f1 = alg.transfer(g1, k1);
                let f2 = alg.transfer(g2, k2);
                let comp = alg.compose(f2, f1);
                for input in [0x00u64, 0xff, 0x5a, 0x21] {
                    let seq = alg.apply(f2, alg.apply(f1, input));
                    assert_eq!(alg.apply(comp, input), seq);
                }
            }
        }
    }

    #[test]
    fn masks_are_truncated() {
        let mut alg = GenKillAlgebra::new(2);
        let t = alg.transfer(u64::MAX, 0);
        assert_eq!(alg.gen(t), 0b11);
    }

    #[test]
    fn accepting_means_some_fact_generated() {
        let mut alg = GenKillAlgebra::new(2);
        let g = alg.transfer(0b10, 0);
        let k = alg.transfer(0, 0b10);
        assert!(alg.is_accepting(g));
        assert!(!alg.is_accepting(k));
        let gk = alg.compose(k, g);
        assert!(!alg.is_accepting(gk));
    }

    #[test]
    fn idempotence_of_gens_and_kills() {
        // §3.3: gens and kills are idempotent.
        let mut alg = GenKillAlgebra::new(1);
        let g = alg.transfer(1, 0);
        let k = alg.transfer(0, 1);
        assert_eq!(alg.compose(g, g), g);
        assert_eq!(alg.compose(k, k), k);
        // and a gen cancels an adjacent matching kill: k then g = g.
        assert_eq!(alg.compose(g, k), g);
    }
}
