//! The plain transition-monoid algebra.

use rasc_automata::{Dfa, FnId, Monoid, StateId, SymbolId};

use super::{Algebra, AnnId};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotAlgebra, SnapshotError};

/// Annotations drawn from the transition monoid `F_M^≡` of a regular
/// language `L(M)` — the paper's standard construction (§2.4).
///
/// The machine is minimized and completed internally (the paper requires a
/// minimal machine for Theorem 2.1 and for the pruning of necessarily
/// non-accepting annotations). Monoid elements are interned lazily: on
/// adversarial machines (Figure 2) only the functions that actually arise
/// in a constraint graph are materialized.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Dfa};
/// use rasc_core::algebra::{Algebra, MonoidAlgebra};
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// let k = sigma.intern("k");
/// let mut alg = MonoidAlgebra::new(&Dfa::one_bit(&sigma, g, k));
/// let fg = alg.symbol(g);
/// let fk = alg.symbol(k);
/// let fgk = alg.compose(fk, fg); // g then k
/// assert!(!alg.is_accepting(fgk));
/// let fgkg = alg.compose(fg, fgk); // g, k, then g again
/// assert!(alg.is_accepting(fgkg));
/// ```
#[derive(Debug, Clone)]
pub struct MonoidAlgebra {
    monoid: Monoid,
    /// Machine states reachable from the start state.
    reachable: Vec<bool>,
    /// Machine states from which an accepting state is reachable.
    coreachable: Vec<bool>,
}

impl MonoidAlgebra {
    /// Creates the algebra for the language of `machine`.
    ///
    /// The machine is minimized and completed; the original state identities
    /// are not preserved.
    pub fn new(machine: &Dfa) -> MonoidAlgebra {
        let minimal = machine.minimize();
        let monoid = Monoid::lazy_of_dfa(&minimal);
        let n = minimal.len();
        // The minimized machine contains only reachable states.
        let reachable = vec![true; n];
        let mut coreachable = vec![false; n];
        // BFS backwards from accepting states.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in minimal.states() {
            for sym_idx in 0..minimal.alphabet_len() {
                if let Some(t) = minimal.delta(s, SymbolId::from_index(sym_idx)) {
                    rev[t.index()].push(s.index());
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| minimal.is_accepting(StateId::from_index(i)))
            .collect();
        for &i in &queue {
            coreachable[i] = true;
        }
        while let Some(i) = queue.pop() {
            for &p in &rev[i] {
                if !coreachable[p] {
                    coreachable[p] = true;
                    queue.push(p);
                }
            }
        }
        MonoidAlgebra {
            monoid,
            reachable,
            coreachable,
        }
    }

    /// The generator annotation `f_σ` for an alphabet symbol.
    pub fn symbol(&self, sym: SymbolId) -> AnnId {
        ann(self.monoid.generator(sym))
    }

    /// The annotation of a whole word.
    pub fn word(&mut self, word: &[SymbolId]) -> AnnId {
        ann(self.monoid.of_word(word))
    }

    /// Like [`Algebra::compose`] but usable on a `&mut` receiver in
    /// expression position (`compose` through the trait needs the trait in
    /// scope).
    pub fn compose_now(&mut self, later: AnnId, earlier: AnnId) -> AnnId {
        ann(self.monoid.compose(fnid(later), fnid(earlier)))
    }

    /// Access to the underlying monoid.
    pub fn monoid(&self) -> &Monoid {
        &self.monoid
    }

    /// The machine state `f(s₀)` — the forward (right-congruence) class.
    pub fn forward_class(&self, a: AnnId) -> StateId {
        self.monoid.forward_class(fnid(a))
    }

    /// Whether an accepting state is reachable from machine state `s` —
    /// i.e. whether a forward-propagated path in state `s` can still be
    /// extended to a word of `L(M)`.
    pub fn state_useful(&self, s: StateId) -> bool {
        self.coreachable[s.index()]
    }

    /// Applies a representative function (by annotation id) to a machine
    /// state.
    pub fn apply(&self, a: AnnId, s: StateId) -> StateId {
        self.monoid.apply(fnid(a), s)
    }

    /// The machine's start state (of the internal minimized machine).
    pub fn start_state(&self) -> StateId {
        self.monoid.start_state()
    }

    /// Whether machine state `s` is accepting.
    pub fn state_accepting(&self, s: StateId) -> bool {
        self.monoid.state_accepting(s)
    }
}

fn ann(f: FnId) -> AnnId {
    AnnId(f.index() as u32)
}

fn fnid(a: AnnId) -> FnId {
    FnId::from_index(a.index())
}

impl Algebra for MonoidAlgebra {
    fn identity(&self) -> AnnId {
        ann(self.monoid.identity())
    }

    fn compose(&mut self, later: AnnId, earlier: AnnId) -> AnnId {
        self.compose_now(later, earlier)
    }

    fn try_compose(&self, later: AnnId, earlier: AnnId) -> Option<AnnId> {
        self.monoid.try_compose(fnid(later), fnid(earlier)).map(ann)
    }

    fn is_accepting(&self, a: AnnId) -> bool {
        self.monoid.is_accepting(fnid(a))
    }

    fn is_useful(&self, a: AnnId) -> bool {
        // f is useful iff some reachable state maps to a co-reachable one:
        // then ∃x, y with x·w·y ∈ L(M).
        self.monoid
            .repr_fn(fnid(a))
            .images()
            .enumerate()
            .any(|(s, img)| self.reachable[s] && self.coreachable[img.index()])
    }

    fn describe(&self, a: AnnId) -> String {
        let f = self.monoid.repr_fn(fnid(a));
        let images: Vec<String> = f.images().map(|s| s.index().to_string()).collect();
        format!("[{}]", images.join(","))
    }

    fn len(&self) -> usize {
        self.monoid.len()
    }
}

impl SnapshotAlgebra for MonoidAlgebra {
    fn snapshot_write(&self, w: &mut ByteWriter) {
        let m = &self.monoid;
        w.u32(m.n_states() as u32);
        w.u32(m.start_state().index() as u32);
        let accepting: Vec<bool> = (0..m.n_states())
            .map(|i| m.state_accepting(StateId::from_index(i)))
            .collect();
        w.bool_seq(&accepting);
        w.bool_seq(&self.reachable);
        w.bool_seq(&self.coreachable);
        w.u32(m.identity().index() as u32);
        let gens: Vec<u32> = m.generators().iter().map(|g| g.index() as u32).collect();
        w.u32_seq(&gens);
        w.seq_len(m.len());
        for f in m.fn_ids() {
            let images: Vec<u32> = m.repr_fn(f).images().map(|s| s.index() as u32).collect();
            w.u32_seq(&images);
        }
    }

    fn snapshot_read(r: &mut ByteReader<'_>) -> Result<MonoidAlgebra, SnapshotError> {
        let n_states = r.u32()? as usize;
        let start = r.u32()? as usize;
        let accepting = r.bool_seq()?;
        let reachable = r.bool_seq()?;
        let coreachable = r.bool_seq()?;
        let identity = r.u32()? as usize;
        let generators = r.u32_seq()?;
        let n_fns = r.seq_len()?;
        let mut fn_images = Vec::with_capacity(n_fns);
        for _ in 0..n_fns {
            fn_images.push(r.u32_seq()?);
        }
        if reachable.len() != n_states || coreachable.len() != n_states {
            return Err(SnapshotError::corrupt(format!(
                "reachability vectors sized {}/{} for {n_states} states",
                reachable.len(),
                coreachable.len()
            )));
        }
        let monoid =
            Monoid::from_parts(n_states, start, accepting, fn_images, identity, &generators)
                .map_err(|detail| {
                    SnapshotError::corrupt(format!("monoid table rejected: {detail}"))
                })?;
        Ok(MonoidAlgebra {
            monoid,
            reachable,
            coreachable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::{Alphabet, Regex};

    #[test]
    fn one_bit_accepting() {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let mut alg = MonoidAlgebra::new(&Dfa::one_bit(&sigma, g, k));
        let fg = alg.word(&[g]);
        let fk = alg.word(&[k]);
        let fe = alg.identity();
        assert!(alg.is_accepting(fg));
        assert!(!alg.is_accepting(fk));
        assert!(!alg.is_accepting(fe));
        assert!(alg.is_useful(fk), "k can be followed by g");
    }

    #[test]
    fn useless_annotations_detected() {
        // L = a (exactly). After two a's the machine is dead forever.
        let sigma = Alphabet::from_names(["a"]);
        let a = sigma.lookup("a").unwrap();
        let m = Regex::parse("a", &sigma).unwrap().compile(&sigma);
        let mut alg = MonoidAlgebra::new(&m);
        let fa = alg.word(&[a]);
        let faa = alg.word(&[a, a]);
        assert!(alg.is_accepting(fa));
        assert!(alg.is_useful(fa));
        assert!(!alg.is_useful(faa), "aa is a substring of no word in L");
    }

    #[test]
    fn snapshot_round_trips_the_algebra() {
        let sigma = Alphabet::from_names(["a", "b"]);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        let m = Regex::parse("a b* a", &sigma).unwrap().compile(&sigma);
        let mut alg = MonoidAlgebra::new(&m);
        let fa = alg.word(&[a]);
        let _ = alg.word(&[a, b]);
        let _ = alg.word(&[a, b, a]);
        let mut w = ByteWriter::new();
        alg.snapshot_write(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut back = MonoidAlgebra::snapshot_read(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), alg.len());
        for i in 0..alg.len() {
            let id = AnnId(i as u32);
            assert_eq!(alg.describe(id), back.describe(id), "fn {i}");
            assert_eq!(alg.is_accepting(id), back.is_accepting(id), "fn {i}");
            assert_eq!(alg.is_useful(id), back.is_useful(id), "fn {i}");
        }
        assert_eq!(back.compose(fa, back.identity()), fa);
        // A corrupted byte inside the table is a typed error, not a panic.
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0x40;
        let mut r = ByteReader::new(&broken);
        assert!(MonoidAlgebra::snapshot_read(&mut r).is_err());
    }

    #[test]
    fn identity_annotation_is_neutral() {
        let sigma = Alphabet::from_names(["a", "b"]);
        let m = Regex::parse("a b", &sigma).unwrap().compile(&sigma);
        let mut alg = MonoidAlgebra::new(&m);
        let fa = alg.word(&[sigma.lookup("a").unwrap()]);
        let e = alg.identity();
        assert_eq!(alg.compose(fa, e), fa);
        assert_eq!(alg.compose(e, fa), fa);
    }
}
