//! Parametric annotations via substitution environments (§6.4).
//!
//! Properties like the file-state automaton (Figure 5) have *parametric*
//! transitions `open(x)` / `close(x)`: the parameter must match between the
//! open and the close. Instead of instantiating the property automaton per
//! parameter value (impossible — the automaton is compiled away before the
//! program is seen), the solver composes *substitution environments*: maps
//! from instantiated parameters to representative functions, plus a
//! *residual* function recording non-parametric transitions.

use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};

use rasc_automata::{Dfa, FnId, Monoid, SymbolId};

use super::{Algebra, AnnId};

/// An interned parameter name (e.g. the `x` in `open(x)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(u32);

/// An interned parameter *value* label (e.g. the program variable `fd1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u32);

/// The key of a substitution-environment entry: a consistent set of
/// `(parameter, label)` instantiations, e.g. `(x: fd1)` or
/// `(x: "i", y: "j")`.
pub type EntryKey = BTreeMap<ParamId, LabelId>;

/// A substitution environment `[(x: fd₁) ↦ f; (x: fd₂) ↦ g | r]`:
/// per-instantiation representative functions plus a residual.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubstEnv {
    /// Entries sorted by key for canonical interning.
    entries: Vec<(EntryKey, FnId)>,
    /// The residual function (non-parametric transitions already folded
    /// into every existing entry).
    residual: FnId,
}

impl SubstEnv {
    /// The entries, sorted by key.
    pub fn entries(&self) -> &[(EntryKey, FnId)] {
        &self.entries
    }

    /// The residual function.
    pub fn residual(&self) -> FnId {
        self.residual
    }

    /// `φ(i)`: the function of the *largest* entry `i` is compatible with,
    /// defaulting to the residual (every key is compatible with the
    /// residual by convention).
    ///
    /// Entry `i` is compatible with entry `j` (`i ≼ j`) when all common
    /// parameters agree and `i` has at least as many instantiations as `j`.
    pub fn lookup(&self, key: &EntryKey) -> FnId {
        self.entries
            .iter()
            .filter(|(k, _)| compatible(key, k))
            .max_by_key(|(k, _)| (k.len(), std::cmp::Reverse(k.clone())))
            .map_or(self.residual, |(_, f)| *f)
    }
}

/// `i ≼ j`: common parameters agree and `|i| ≥ |j|`.
fn compatible(i: &EntryKey, j: &EntryKey) -> bool {
    if i.len() < j.len() {
        return false;
    }
    j.iter().all(|(p, l)| i.get(p).is_none_or(|l2| l2 == l))
}

/// Two keys can be merged when shared parameters agree.
fn consistent(a: &EntryKey, b: &EntryKey) -> bool {
    a.iter().all(|(p, l)| b.get(p).is_none_or(|l2| l2 == l))
}

fn merge(a: &EntryKey, b: &EntryKey) -> EntryKey {
    let mut out = a.clone();
    for (&p, &l) in b {
        out.insert(p, l);
    }
    out
}

/// The parametric annotation algebra: substitution environments over the
/// transition monoid of a base property automaton.
///
/// # Example
///
/// The paper's Figure 5–7 file-state property:
///
/// ```
/// use rasc_automata::PropertySpec;
/// use rasc_core::algebra::{Algebra, SubstAlgebra};
///
/// let spec = PropertySpec::parse(
///     "start state Closed : | open(x) -> Opened;\n\
///      accept state Opened : | close(x) -> Closed;",
/// ).unwrap();
/// let (sigma, dfa) = spec.compile();
/// let mut alg = SubstAlgebra::new(&dfa);
/// let x = alg.param("x");
/// let fd1 = alg.label("fd1");
/// let fd2 = alg.label("fd2");
/// let open = sigma.lookup("open").unwrap();
/// let close = sigma.lookup("close").unwrap();
///
/// let phi1 = alg.instantiate(open, &[(x, fd1)]);
/// let phi2 = alg.instantiate(open, &[(x, fd2)]);
/// let phi3 = alg.instantiate(close, &[(x, fd1)]);
/// let path = {
///     let p = alg.compose(phi2, phi1);
///     alg.compose(phi3, p)
/// };
/// // fd2 is still open (an accepting instantiation), fd1 is closed.
/// assert!(alg.is_accepting(path));
/// let open_params = alg.accepting_instances(path);
/// assert_eq!(open_params.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SubstAlgebra {
    monoid: Monoid,
    params: Vec<String>,
    labels: Vec<String>,
    envs: Vec<SubstEnv>,
    by_env: HashMap<SubstEnv, AnnId>,
    memo: HashMap<(AnnId, AnnId), AnnId>,
}

impl SubstAlgebra {
    /// Creates the algebra over the property automaton `machine`.
    ///
    /// Unlike [`super::MonoidAlgebra`], the machine is *not* minimized:
    /// parametric properties report which instantiation is in which state,
    /// so state identities matter. It is completed.
    pub fn new(machine: &Dfa) -> SubstAlgebra {
        let monoid = Monoid::lazy_of_dfa(&machine.complete());
        let mut alg = SubstAlgebra {
            monoid,
            params: Vec::new(),
            labels: Vec::new(),
            envs: Vec::new(),
            by_env: HashMap::new(),
            memo: HashMap::new(),
        };
        let identity = SubstEnv {
            entries: Vec::new(),
            residual: alg.monoid.identity(),
        };
        alg.intern(identity);
        alg
    }

    /// Interns a parameter name.
    pub fn param(&mut self, name: &str) -> ParamId {
        if let Some(i) = self.params.iter().position(|p| p == name) {
            return ParamId(i as u32);
        }
        self.params.push(name.to_owned());
        ParamId((self.params.len() - 1) as u32)
    }

    /// Interns a parameter-value label (e.g. a program variable name).
    pub fn label(&mut self, name: &str) -> LabelId {
        if let Some(i) = self.labels.iter().position(|p| p == name) {
            return LabelId(i as u32);
        }
        self.labels.push(name.to_owned());
        LabelId((self.labels.len() - 1) as u32)
    }

    /// The name of a parameter.
    pub fn param_name(&self, p: ParamId) -> &str {
        &self.params[p.0 as usize]
    }

    /// The name of a label.
    pub fn label_name(&self, l: LabelId) -> &str {
        &self.labels[l.0 as usize]
    }

    /// A *non-parametric* annotation: the empty environment with residual
    /// `f_σ` (the paper's graceful degradation — `[ | r]` is written `r`).
    pub fn plain(&mut self, sym: SymbolId) -> AnnId {
        let f = self.monoid.generator(sym);
        self.intern(SubstEnv {
            entries: Vec::new(),
            residual: f,
        })
    }

    /// A parametric annotation: the symbol `sym` instantiated at the given
    /// `(parameter, label)` pairs, e.g. `open(x := fd1)`.
    ///
    /// Produces `[(x: fd1) ↦ f_σ | f_ε]` (Figure 7).
    pub fn instantiate(&mut self, sym: SymbolId, pairs: &[(ParamId, LabelId)]) -> AnnId {
        let f = self.monoid.generator(sym);
        let key: EntryKey = pairs.iter().copied().collect();
        let identity = self.monoid.identity();
        self.intern(SubstEnv {
            entries: vec![(key, f)],
            residual: identity,
        })
    }

    /// The environment behind an annotation id.
    pub fn env(&self, a: AnnId) -> &SubstEnv {
        &self.envs[a.index()]
    }

    /// The instantiations whose representative function is accepting —
    /// e.g. the file descriptors still open at this program point.
    pub fn accepting_instances(&self, a: AnnId) -> Vec<(EntryKey, FnId)> {
        self.envs[a.index()]
            .entries
            .iter()
            .filter(|(_, f)| self.monoid.is_accepting(*f))
            .cloned()
            .collect()
    }

    /// The underlying transition monoid.
    pub fn monoid(&self) -> &Monoid {
        &self.monoid
    }

    fn intern(&mut self, env: SubstEnv) -> AnnId {
        if let Some(&id) = self.by_env.get(&env) {
            return id;
        }
        let id = AnnId(crate::id_u32(self.envs.len(), "annotations"));
        self.by_env.insert(env.clone(), id);
        self.envs.push(env);
        id
    }
}

impl Algebra for SubstAlgebra {
    fn identity(&self) -> AnnId {
        AnnId(0)
    }

    fn compose(&mut self, later: AnnId, earlier: AnnId) -> AnnId {
        if later == self.identity() {
            return earlier;
        }
        if earlier == self.identity() {
            return later;
        }
        if let Some(&id) = self.memo.get(&(later, earlier)) {
            return id;
        }
        let phi1 = self.envs[later.index()].clone();
        let phi2 = self.envs[earlier.index()].clone();

        // Candidate result keys: all consistent merges of an entry (or the
        // implicit residual, ∅) from each side.
        let empty = EntryKey::new();
        let keys1: Vec<&EntryKey> = phi1
            .entries
            .iter()
            .map(|(k, _)| k)
            .chain([&empty])
            .collect();
        let keys2: Vec<&EntryKey> = phi2
            .entries
            .iter()
            .map(|(k, _)| k)
            .chain([&empty])
            .collect();
        // A `BTreeSet` both dedups the merges and yields them sorted.
        let mut result_keys: BTreeSet<EntryKey> = BTreeSet::new();
        for k1 in &keys1 {
            for k2 in &keys2 {
                if consistent(k1, k2) {
                    let m = merge(k1, k2);
                    if !m.is_empty() {
                        result_keys.insert(m);
                    }
                }
            }
        }

        // (φ₁ ∘ φ₂)(i) = φ₁(i) ∘ φ₂(i).
        let mut entries = Vec::with_capacity(result_keys.len());
        for key in result_keys {
            let f1 = phi1.lookup(&key);
            let f2 = phi2.lookup(&key);
            let f = self.monoid.compose(f1, f2);
            entries.push((key, f));
        }
        let residual = self.monoid.compose(phi1.residual, phi2.residual);
        let id = self.intern(SubstEnv { entries, residual });
        self.memo.insert((later, earlier), id);
        id
    }

    fn try_compose(&self, later: AnnId, earlier: AnnId) -> Option<AnnId> {
        if later == self.identity() {
            return Some(earlier);
        }
        if earlier == self.identity() {
            return Some(later);
        }
        // The full environment product may intern new monoid elements, so
        // only memo hits are answerable read-only.
        self.memo.get(&(later, earlier)).copied()
    }

    fn is_accepting(&self, a: AnnId) -> bool {
        let env = &self.envs[a.index()];
        env.entries
            .iter()
            .any(|(_, f)| self.monoid.is_accepting(*f))
            || self.monoid.is_accepting(env.residual)
    }

    fn describe(&self, a: AnnId) -> String {
        let env = &self.envs[a.index()];
        let mut parts = Vec::new();
        for (key, f) in &env.entries {
            let pairs: Vec<String> = key
                .iter()
                .map(|(p, l)| format!("{}: {}", self.param_name(*p), self.label_name(*l)))
                .collect();
            parts.push(format!("({}) ↦ f{}", pairs.join(", "), f.index()));
        }
        format!("[{} | f{}]", parts.join("; "), env.residual.index())
    }

    fn len(&self) -> usize {
        self.envs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::PropertySpec;

    fn file_state() -> (SubstAlgebra, SymbolId, SymbolId) {
        let spec = PropertySpec::parse(
            "start state Closed : | open(x) -> Opened;\n\
             accept state Opened : | close(x) -> Closed;",
        )
        .unwrap();
        let (sigma, dfa) = spec.compile();
        let alg = SubstAlgebra::new(&dfa);
        (
            alg,
            sigma.lookup("open").unwrap(),
            sigma.lookup("close").unwrap(),
        )
    }

    #[test]
    fn figure_6_example() {
        // open(fd1); open(fd2); close(fd1): fd2 open, fd1 closed.
        let (mut alg, open, close) = file_state();
        let x = alg.param("x");
        let fd1 = alg.label("fd1");
        let fd2 = alg.label("fd2");
        let phi1 = alg.instantiate(open, &[(x, fd1)]);
        let phi2 = alg.instantiate(open, &[(x, fd2)]);
        let phi3 = alg.instantiate(close, &[(x, fd1)]);
        let p12 = alg.compose(phi2, phi1);
        let p123 = alg.compose(phi3, p12);

        let env = alg.env(p123);
        assert_eq!(env.entries().len(), 2);
        let accepting = alg.accepting_instances(p123);
        assert_eq!(accepting.len(), 1, "only fd2 remains open");
        let (key, _) = &accepting[0];
        let label = *key.values().next().unwrap();
        assert_eq!(alg.label_name(label), "fd2");
    }

    #[test]
    fn double_close_is_fine() {
        let (mut alg, open, close) = file_state();
        let x = alg.param("x");
        let fd = alg.label("fd");
        let o = alg.instantiate(open, &[(x, fd)]);
        let c = alg.instantiate(close, &[(x, fd)]);
        let oc = alg.compose(c, o);
        assert!(!alg.is_accepting(oc));
        let occ = alg.compose(c, oc);
        assert!(!alg.is_accepting(occ));
    }

    #[test]
    fn residual_incorporated_into_new_instantiations() {
        // A non-parametric transition happening before an instantiation
        // must affect that instantiation's function.
        let spec = PropertySpec::parse(
            "start state A : | reset -> A | open(x) -> B;\n\
             accept state B;",
        )
        .unwrap();
        let (sigma, dfa) = spec.compile();
        let mut alg = SubstAlgebra::new(&dfa);
        let x = alg.param("x");
        let fd = alg.label("fd");
        let reset = alg.plain(sigma.lookup("reset").unwrap());
        let open = alg.instantiate(sigma.lookup("open").unwrap(), &[(x, fd)]);
        // reset then open(fd): accepting for fd.
        let path = alg.compose(open, reset);
        assert!(alg.is_accepting(path));
        assert_eq!(alg.accepting_instances(path).len(), 1);
    }

    #[test]
    fn nonparametric_annotations_degrade_to_plain_monoid() {
        let (mut alg, open, close) = file_state();
        let o = alg.plain(open);
        let c = alg.plain(close);
        let oc = alg.compose(c, o);
        assert!(alg.env(oc).entries().is_empty());
        assert!(!alg.is_accepting(oc));
        let oo = alg.compose(o, o);
        assert!(alg.is_accepting(oo));
    }

    #[test]
    fn multiple_parameters_merge_compatible_entries() {
        let spec = PropertySpec::parse(
            "start state S : | pair(x, y) -> T | sole(x) -> T;\n\
             accept state T;",
        )
        .unwrap();
        let (sigma, dfa) = spec.compile();
        let mut alg = SubstAlgebra::new(&dfa);
        let x = alg.param("x");
        let y = alg.param("y");
        let (i, j, k) = (alg.label("i"), alg.label("j"), alg.label("k"));
        let pair_sym = sigma.lookup("pair").unwrap();
        let sole_sym = sigma.lookup("sole").unwrap();
        let a = alg.instantiate(pair_sym, &[(x, i), (y, j)]);
        let b = alg.instantiate(sole_sym, &[(x, k)]);
        let comp = alg.compose(b, a);
        let env = alg.env(comp);
        // Keys: {x:i, y:j} (incompatible with {x:k} — x disagrees) and {x:k}.
        assert_eq!(env.entries().len(), 2);
        // Compatible case: sole(x:i) merges with pair(x:i, y:j).
        let b2 = alg.instantiate(sole_sym, &[(x, i)]);
        let comp2 = alg.compose(b2, a);
        let env2 = alg.env(comp2);
        assert!(env2
            .entries()
            .iter()
            .any(|(key, _)| key.len() == 2 && key.get(&x) == Some(&i) && key.get(&y) == Some(&j)));
    }

    #[test]
    fn identity_is_neutral() {
        let (mut alg, open, _) = file_state();
        let x = alg.param("x");
        let fd = alg.label("fd");
        let o = alg.instantiate(open, &[(x, fd)]);
        let e = alg.identity();
        assert_eq!(alg.compose(o, e), o);
        assert_eq!(alg.compose(e, o), o);
    }
}
