//! Annotation algebras: the values constraints are annotated with.
//!
//! The solver is generic over an [`Algebra`]: a finite monoid of interned
//! annotation values with an *accepting* predicate. Three implementations
//! cover the paper's applications:
//!
//! * [`MonoidAlgebra`] — representative functions `F_M^≡` of an arbitrary
//!   regular language (§2.4), with the §3.1 optimization of pruning
//!   annotations that can never extend to an accepting word;
//! * [`GenKillAlgebra`] — the n-bit gen/kill language (§3.3) with O(1)
//!   bit-parallel composition;
//! * [`SubstAlgebra`] — parametric annotations via substitution
//!   environments (§6.4), supporting multiple parameters.

mod genkill;
mod monoid_alg;
mod subst;

pub use genkill::GenKillAlgebra;
pub use monoid_alg::MonoidAlgebra;
pub use subst::{LabelId, ParamId, SubstAlgebra, SubstEnv};

/// An interned annotation value.
///
/// Ids are only meaningful relative to the [`Algebra`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnnId(pub(crate) u32);

impl AnnId {
    /// The annotation's index within its algebra.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite annotation monoid with interned elements.
///
/// `compose` takes `&mut self` because elements are interned on demand
/// (the paper's composition table, built lazily).
pub trait Algebra {
    /// The identity annotation `f_ε` (the representative of the empty
    /// word).
    fn identity(&self) -> AnnId;

    /// `later ∘ earlier`: the annotation of a path that performs `earlier`
    /// first (the paper's transitive-closure composition
    /// `se₁ ⊆^f X ⊆^g se₂ ⇒ se₁ ⊆^{g∘f} se₂`).
    fn compose(&mut self, later: AnnId, earlier: AnnId) -> AnnId;

    /// Read-only composition: `Some(compose(later, earlier))` when the
    /// result is already interned and reachable without mutating any
    /// table, else `None`.
    ///
    /// Implementations must guarantee that a `Some(id)` is exactly the id
    /// a subsequent [`Algebra::compose`] call would return; the parallel
    /// solver's speculation phase relies on this to precompute facts
    /// against a frozen read view. The default is conservatively `None`
    /// (speculation falls back to sequential replay).
    fn try_compose(&self, later: AnnId, earlier: AnnId) -> Option<AnnId> {
        let _ = (later, earlier);
        None
    }

    /// Whether the annotation represents *full words* of the annotation
    /// language — membership in the paper's `F_accept` (§3.2).
    fn is_accepting(&self, a: AnnId) -> bool;

    /// Whether the annotation could still participate in an accepting word
    /// (`∃ x, y. x·w·y ∈ L(M)`). Returning `false` lets the solver drop
    /// the constraint entirely — the paper's observation that a minimized
    /// machine obviates the `match` operation (§3.1).
    fn is_useful(&self, a: AnnId) -> bool {
        let _ = a;
        true
    }

    /// Human-readable rendering for diagnostics.
    fn describe(&self, a: AnnId) -> String;

    /// The number of interned annotations so far.
    fn len(&self) -> usize;

    /// Whether no annotations are interned (never true in practice: the
    /// identity always is).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
