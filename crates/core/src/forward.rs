//! The forward unidirectional solver (paper §5).
//!
//! A forward solver only pushes *lower bounds* from sources toward sinks;
//! upper bounds stay at the variable where they were asserted. This loses
//! the online/separate-analysis ability of the bidirectional solver but
//! allows a coarser congruence: by the right congruence `≡_r`, the class of
//! a path annotation starting at the machine's start state is determined by
//! the single state `δ(w, s₀)`, so the number of derived annotations per
//! (source, variable) pair is `|S|` instead of up to `|S|^{|S|}` (§5.1).
//!
//! Concretely, this solver tracks *constant* (nullary) sources by machine
//! state. Constructor sources keep full representative functions — their
//! path annotation is re-applied to component flows at projection
//! resolution, which requires a genuine function (see DESIGN.md for the
//! discussion); the asymptotic win applies to the constant dimension, which
//! carries the reachability facts in the paper's applications (the `pc`
//! constant of §6, dataflow facts of §3.3).

use std::collections::{HashMap, HashSet, VecDeque};

use rasc_automata::{Dfa, StateId};

use crate::algebra::{Algebra, AnnId, MonoidAlgebra};
use crate::error::{CoreError, Result};
use crate::solver::VarId;
use crate::term::{ConsId, Constructor, Variance};

/// A source or sink pattern in the forward solver's normalized form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pattern {
    Cons {
        cons: ConsId,
        args: Vec<VarId>,
    },
    Proj {
        cons: ConsId,
        index: usize,
        target: VarId,
    },
}

/// A clash discovered by the forward solver.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ForwardClash {
    /// Mismatched constructors met.
    ConstructorMismatch {
        /// Left-hand constructor.
        lhs: ConsId,
        /// Right-hand constructor.
        rhs: ConsId,
    },
}

#[derive(Debug, Default)]
struct VarData {
    name: String,
    succs: HashMap<VarId, Vec<AnnId>>,
    /// Constant lower bounds by right-congruence class (machine state).
    const_lbs: HashMap<ConsId, Vec<StateId>>,
    /// Constructor lower bounds by full representative function.
    cons_lbs: HashMap<u32, Vec<AnnId>>,
    /// Static upper bounds `(pattern, annotation)`.
    sinks: Vec<(u32, AnnId)>,
}

#[derive(Debug, Clone, Copy)]
enum Fact {
    Edge(VarId, VarId, AnnId),
    ConstLb(VarId, ConsId, StateId),
    ConsLb(VarId, u32, AnnId),
}

/// A forward (source-to-sink) solver for annotated set constraints.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Dfa};
/// use rasc_core::forward::ForwardSystem;
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// let k = sigma.intern("k");
/// let m = Dfa::one_bit(&sigma, g, k);
/// let mut sys = ForwardSystem::new(&m);
/// let pc = sys.constant("pc");
/// let (x, y) = (sys.var("X"), sys.var("Y"));
/// sys.add_constant(pc, x);
/// let fg = sys.word(&[g]);
/// sys.add_edge(x, y, fg);
/// sys.solve();
/// assert!(sys.constant_accepting(y, pc));
/// assert!(!sys.constant_accepting(x, pc));
/// ```
#[derive(Debug)]
pub struct ForwardSystem {
    algebra: MonoidAlgebra,
    constructors: Vec<Constructor>,
    vars: Vec<VarData>,
    patterns: Vec<Pattern>,
    pattern_ids: HashMap<Pattern, u32>,
    worklist: VecDeque<Fact>,
    clashes: Vec<ForwardClash>,
    /// Hash companion of `clashes` for O(1) dedup; `clashes` keeps the
    /// deterministic discovery order the public API reports.
    clash_set: HashSet<ForwardClash>,
    facts_processed: usize,
}

impl ForwardSystem {
    /// Creates a forward solver over the annotation language `L(machine)`.
    pub fn new(machine: &Dfa) -> ForwardSystem {
        ForwardSystem {
            algebra: MonoidAlgebra::new(machine),
            constructors: Vec::new(),
            vars: Vec::new(),
            patterns: Vec::new(),
            pattern_ids: HashMap::new(),
            worklist: VecDeque::new(),
            clashes: Vec::new(),
            clash_set: HashSet::new(),
            facts_processed: 0,
        }
    }

    /// Interns the annotation for a word of the machine's alphabet.
    pub fn word(&mut self, word: &[rasc_automata::SymbolId]) -> AnnId {
        self.algebra.word(word)
    }

    /// The identity annotation.
    pub fn identity(&self) -> AnnId {
        self.algebra.identity()
    }

    /// Creates a fresh set variable.
    pub fn var(&mut self, name: &str) -> VarId {
        let id = VarId(crate::id_u32(self.vars.len(), "variables"));
        self.vars.push(VarData {
            name: name.to_owned(),
            ..VarData::default()
        });
        id
    }

    /// The diagnostic name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Declares a constant (nullary constructor).
    pub fn constant(&mut self, name: &str) -> ConsId {
        self.declare(name, &[])
    }

    /// Declares a constructor; only covariant signatures are supported by
    /// the forward solver.
    ///
    /// # Panics
    ///
    /// Panics if the signature contains a contravariant position.
    pub fn declare(&mut self, name: &str, signature: &[Variance]) -> ConsId {
        assert!(
            signature.iter().all(|v| *v == Variance::Covariant),
            "the forward solver supports covariant constructors only"
        );
        let id = ConsId(crate::id_u32(self.constructors.len(), "constructors"));
        self.constructors.push(Constructor {
            name: name.to_owned(),
            signature: signature.to_vec(),
        });
        id
    }

    /// Adds `c ⊆ X` for a constant `c` (initial state class `δ(ε, s₀)`).
    pub fn add_constant(&mut self, c: ConsId, x: VarId) {
        let s0 = self.algebra.start_state();
        self.worklist.push_back(Fact::ConstLb(x, c, s0));
    }

    /// Adds `c ⊆^f X` for a constant `c` with an initial annotation.
    pub fn add_constant_ann(&mut self, c: ConsId, x: VarId, ann: AnnId) {
        let s0 = self.algebra.start_state();
        let s = self.algebra.apply(ann, s0);
        self.worklist.push_back(Fact::ConstLb(x, c, s));
    }

    /// Adds `c(args) ⊆^f X` for a non-nullary constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] on misapplication.
    pub fn add_source(&mut self, c: ConsId, args: &[VarId], x: VarId, ann: AnnId) -> Result<()> {
        let decl = &self.constructors[c.index()];
        if decl.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                constructor: decl.name().to_owned(),
                expected: decl.arity(),
                found: args.len(),
            });
        }
        if args.is_empty() {
            self.add_constant_ann(c, x, ann);
            return Ok(());
        }
        let pat = self.intern(Pattern::Cons {
            cons: c,
            args: args.to_vec(),
        });
        self.worklist.push_back(Fact::ConsLb(x, pat, ann));
        Ok(())
    }

    /// Adds the upper bound `X ⊆^f c(args)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] on misapplication.
    pub fn add_sink(&mut self, x: VarId, c: ConsId, args: &[VarId], ann: AnnId) -> Result<()> {
        let decl = &self.constructors[c.index()];
        if decl.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                constructor: decl.name().to_owned(),
                expected: decl.arity(),
                found: args.len(),
            });
        }
        let pat = self.intern(Pattern::Cons {
            cons: c,
            args: args.to_vec(),
        });
        self.attach_sink(x, pat, ann);
        Ok(())
    }

    /// Adds the projection constraint `c⁻ⁱ(X) ⊆^f target` (0-based index).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProjectionIndex`] if the index is out of range.
    pub fn add_projection(
        &mut self,
        c: ConsId,
        index: usize,
        x: VarId,
        target: VarId,
        ann: AnnId,
    ) -> Result<()> {
        let decl = &self.constructors[c.index()];
        if index >= decl.arity() {
            return Err(CoreError::ProjectionIndex {
                constructor: decl.name().to_owned(),
                arity: decl.arity(),
                index,
            });
        }
        let pat = self.intern(Pattern::Proj {
            cons: c,
            index,
            target,
        });
        self.attach_sink(x, pat, ann);
        Ok(())
    }

    /// Adds a variable-variable edge `X ⊆^f Y`.
    pub fn add_edge(&mut self, x: VarId, y: VarId, ann: AnnId) {
        self.worklist.push_back(Fact::Edge(x, y, ann));
    }

    fn intern(&mut self, p: Pattern) -> u32 {
        if let Some(&id) = self.pattern_ids.get(&p) {
            return id;
        }
        let id = crate::id_u32(self.patterns.len(), "patterns");
        self.pattern_ids.insert(p.clone(), id);
        self.patterns.push(p);
        id
    }

    fn attach_sink(&mut self, x: VarId, pat: u32, ann: AnnId) {
        self.vars[x.index()].sinks.push((pat, ann));
        // Resolve against lower bounds already at x.
        let consts: Vec<(ConsId, StateId)> = self.vars[x.index()]
            .const_lbs
            .iter()
            .flat_map(|(&c, ss)| ss.iter().map(move |&s| (c, s)))
            .collect();
        for (c, _s) in consts {
            self.resolve_const(c, pat);
        }
        let conses: Vec<(u32, AnnId)> = self.vars[x.index()]
            .cons_lbs
            .iter()
            .flat_map(|(&p, fs)| fs.iter().map(move |&f| (p, f)))
            .collect();
        for (src, f) in conses {
            self.resolve_cons(src, f, pat, ann);
        }
    }

    fn record_clash(&mut self, clash: ForwardClash) {
        if self.clash_set.insert(clash.clone()) {
            self.clashes.push(clash);
        }
    }

    fn resolve_const(&mut self, c: ConsId, pat: u32) {
        match self.patterns[pat as usize].clone() {
            Pattern::Cons { cons, .. } => {
                if cons != c {
                    self.record_clash(ForwardClash::ConstructorMismatch { lhs: c, rhs: cons });
                }
            }
            Pattern::Proj { .. } => {
                // Constants have no components to project.
            }
        }
    }

    fn resolve_cons(&mut self, src: u32, f: AnnId, pat: u32, sink_ann: AnnId) {
        let Pattern::Cons {
            cons: c,
            args: src_args,
        } = self.patterns[src as usize].clone()
        else {
            unreachable!("sources are constructor patterns")
        };
        match self.patterns[pat as usize].clone() {
            Pattern::Cons { cons, args } => {
                if cons != c {
                    self.record_clash(ForwardClash::ConstructorMismatch { lhs: c, rhs: cons });
                    return;
                }
                for (i, &a) in src_args.iter().enumerate() {
                    self.worklist.push_back(Fact::Edge(a, args[i], f));
                }
            }
            Pattern::Proj {
                cons,
                index,
                target,
            } => {
                if cons == c {
                    let composed = self.algebra.compose(sink_ann, f);
                    self.worklist
                        .push_back(Fact::Edge(src_args[index], target, composed));
                }
            }
        }
    }

    /// Runs forward resolution to a fixpoint.
    pub fn solve(&mut self) {
        while let Some(fact) = self.worklist.pop_front() {
            self.facts_processed += 1;
            match fact {
                Fact::Edge(x, y, f) => {
                    if x == y && f == self.algebra.identity() {
                        continue;
                    }
                    if !insert(self.vars[x.index()].succs.entry(y).or_default(), f) {
                        continue;
                    }
                    let consts: Vec<(ConsId, StateId)> = self.vars[x.index()]
                        .const_lbs
                        .iter()
                        .flat_map(|(&c, ss)| ss.iter().map(move |&s| (c, s)))
                        .collect();
                    for (c, s) in consts {
                        let s2 = self.algebra.apply(f, s);
                        self.worklist.push_back(Fact::ConstLb(y, c, s2));
                    }
                    let conses: Vec<(u32, AnnId)> = self.vars[x.index()]
                        .cons_lbs
                        .iter()
                        .flat_map(|(&p, gs)| gs.iter().map(move |&g| (p, g)))
                        .collect();
                    for (p, g) in conses {
                        let h = self.algebra.compose(f, g);
                        self.worklist.push_back(Fact::ConsLb(y, p, h));
                    }
                }
                Fact::ConstLb(x, c, s) => {
                    if !self.algebra.state_useful(s) {
                        continue;
                    }
                    if !insert_state(self.vars[x.index()].const_lbs.entry(c).or_default(), s) {
                        continue;
                    }
                    let sinks = self.vars[x.index()].sinks.clone();
                    for (pat, _) in sinks {
                        self.resolve_const(c, pat);
                    }
                    let succs: Vec<(VarId, AnnId)> = self.vars[x.index()]
                        .succs
                        .iter()
                        .flat_map(|(&y, fs)| fs.iter().map(move |&f| (y, f)))
                        .collect();
                    for (y, f) in succs {
                        let s2 = self.algebra.apply(f, s);
                        self.worklist.push_back(Fact::ConstLb(y, c, s2));
                    }
                }
                Fact::ConsLb(x, p, g) => {
                    if !self.algebra.is_useful(g) {
                        continue;
                    }
                    if !insert(self.vars[x.index()].cons_lbs.entry(p).or_default(), g) {
                        continue;
                    }
                    let sinks = self.vars[x.index()].sinks.clone();
                    for (pat, sink_ann) in sinks {
                        self.resolve_cons(p, g, pat, sink_ann);
                    }
                    let succs: Vec<(VarId, AnnId)> = self.vars[x.index()]
                        .succs
                        .iter()
                        .flat_map(|(&y, fs)| fs.iter().map(move |&f| (y, f)))
                        .collect();
                    for (y, f) in succs {
                        let h = self.algebra.compose(f, g);
                        self.worklist.push_back(Fact::ConsLb(y, p, h));
                    }
                }
            }
        }
    }

    /// The machine states (right-congruence classes) with which constant
    /// `c` reaches variable `x`.
    pub fn constant_states(&self, x: VarId, c: ConsId) -> Vec<StateId> {
        self.vars[x.index()]
            .const_lbs
            .get(&c)
            .cloned()
            .unwrap_or_default()
    }

    /// Whether constant `c` reaches `x` along a path whose word is in
    /// `L(M)`.
    pub fn constant_accepting(&self, x: VarId, c: ConsId) -> bool {
        self.constant_states(x, c)
            .iter()
            .any(|&s| self.algebra.state_accepting(s))
    }

    /// Whether constant `c` occurs at any depth in the least solution of
    /// `x` with an accepting composed annotation (forward analogue of the
    /// bidirectional occurrence query).
    pub fn occurs_accepting(&mut self, x: VarId, target: ConsId) -> bool {
        // BFS over (var, outer-function) pairs; constants finish with a
        // state application.
        let id = self.algebra.identity();
        let mut seen = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert((x, id));
        queue.push_back((x, id));
        while let Some((v, outer)) = queue.pop_front() {
            let consts: Vec<(ConsId, StateId)> = self.vars[v.index()]
                .const_lbs
                .iter()
                .flat_map(|(&c, ss)| ss.iter().map(move |&s| (c, s)))
                .collect();
            for (c, s) in consts {
                if c == target {
                    let fin = self.algebra.apply(outer, s);
                    if self.algebra.state_accepting(fin) {
                        return true;
                    }
                }
            }
            let conses: Vec<(u32, AnnId)> = self.vars[v.index()]
                .cons_lbs
                .iter()
                .flat_map(|(&p, gs)| gs.iter().map(move |&g| (p, g)))
                .collect();
            for (p, g) in conses {
                let total = self.algebra.compose(outer, g);
                let Pattern::Cons { args, .. } = &self.patterns[p as usize] else {
                    continue;
                };
                for &arg in args {
                    if seen.insert((arg, total)) {
                        queue.push_back((arg, total));
                    }
                }
            }
        }
        false
    }

    /// For every variable, the machine states at which the constant
    /// `target` occurs at any depth — the forward analogue of the
    /// bidirectional solver's bottom-up occurrence map. One fixpoint pass
    /// for a whole-program violation scan.
    #[allow(clippy::needless_range_loop)] // x is a variable id
    pub fn constant_occurrence_states(&mut self, target: ConsId) -> Vec<Vec<StateId>> {
        let n = self.vars.len();
        let mut occ: Vec<Vec<StateId>> = vec![Vec::new(); n];
        // uses[y] = (x, g) for each constructor lower bound of x with y as
        // an argument.
        let mut uses: Vec<Vec<(usize, AnnId)>> = vec![Vec::new(); n];
        let mut worklist: VecDeque<(usize, StateId)> = VecDeque::new();
        for x in 0..n {
            if let Some(states) = self.vars[x].const_lbs.get(&target) {
                for &s in states {
                    if insert_state(&mut occ[x], s) {
                        worklist.push_back((x, s));
                    }
                }
            }
            let entries: Vec<(u32, Vec<AnnId>)> = self.vars[x]
                .cons_lbs
                .iter()
                .map(|(&p, gs)| (p, gs.clone()))
                .collect();
            for (p, gs) in entries {
                let Pattern::Cons { args, .. } = &self.patterns[p as usize] else {
                    continue;
                };
                for &arg in args {
                    for &g in &gs {
                        uses[arg.index()].push((x, g));
                    }
                }
            }
        }
        while let Some((y, s)) = worklist.pop_front() {
            for &(x, g) in &uses[y].clone() {
                let s2 = self.algebra.apply(g, s);
                if insert_state(&mut occ[x], s2) {
                    worklist.push_back((x, s2));
                }
            }
        }
        occ
    }

    /// Whether machine state `s` is accepting (exposed for interpreting
    /// [`ForwardSystem::constant_occurrence_states`]).
    pub fn state_accepting(&self, s: StateId) -> bool {
        self.algebra.state_accepting(s)
    }

    /// The clashes discovered so far.
    pub fn clashes(&self) -> &[ForwardClash] {
        &self.clashes
    }

    /// `(variables, facts processed, interned annotations)` counters.
    pub fn stats(&self) -> (usize, usize, usize) {
        (self.vars.len(), self.facts_processed, self.algebra.len())
    }
}

fn insert(set: &mut Vec<AnnId>, a: AnnId) -> bool {
    match set.binary_search(&a) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, a);
            true
        }
    }
}

fn insert_state(set: &mut Vec<StateId>, s: StateId) -> bool {
    match set.binary_search(&s) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, s);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::Alphabet;

    fn one_bit() -> (Alphabet, Dfa) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let dfa = Dfa::one_bit(&sigma, g, k);
        (sigma, dfa)
    }

    #[test]
    fn constant_state_tracking() {
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        let mut sys = ForwardSystem::new(&m);
        let c = sys.constant("c");
        let (x, y, z) = (sys.var("X"), sys.var("Y"), sys.var("Z"));
        let fg = sys.word(&[g]);
        let fk = sys.word(&[k]);
        sys.add_constant(c, x);
        sys.add_edge(x, y, fg);
        sys.add_edge(y, z, fk);
        sys.solve();
        assert!(sys.constant_accepting(y, c));
        assert!(!sys.constant_accepting(z, c));
        // Only one state per var per constant in a linear chain.
        assert_eq!(sys.constant_states(y, c).len(), 1);
    }

    #[test]
    fn projection_resolution_reapplies_path() {
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let mut sys = ForwardSystem::new(&m);
        let pc = sys.constant("pc");
        let o = sys.declare("o", &[Variance::Covariant]);
        let (s1, fe, fx, s2) = (sys.var("S1"), sys.var("Fe"), sys.var("Fx"), sys.var("S2"));
        let e = sys.identity();
        let fg = sys.word(&[g]);
        sys.add_constant(pc, s1);
        // call: o(S1) ⊆ Fe; callee does g: Fe ⊆^g Fx; return: o⁻¹(Fx) ⊆ S2.
        sys.add_source(o, &[s1], fe, e).unwrap();
        sys.add_edge(fe, fx, fg);
        sys.add_projection(o, 0, fx, s2, e).unwrap();
        sys.solve();
        assert!(sys.constant_accepting(s2, pc), "pc passed through g");
        assert!(
            sys.occurs_accepting(fx, pc),
            "pc wrapped in o at callee exit"
        );
        // The one-pass occurrence map agrees with the per-var query.
        let occ = sys.constant_occurrence_states(pc);
        for v in [s1, fe, fx, s2] {
            let accepting = occ[v.index()].iter().any(|&s| sys.state_accepting(s));
            assert_eq!(accepting, sys.occurs_accepting(v, pc));
        }
    }

    #[test]
    fn mismatch_clash_detected() {
        let (_, m) = one_bit();
        let mut sys = ForwardSystem::new(&m);
        let c = sys.constant("c");
        let d = sys.constant("d");
        let x = sys.var("X");
        sys.add_constant(c, x);
        let e = sys.identity();
        sys.add_sink(x, d, &[], e).unwrap();
        sys.solve();
        assert_eq!(sys.clashes().len(), 1);
    }

    #[test]
    fn forward_tracks_states_not_functions() {
        // On a diamond with many annotated paths, constants collapse to at
        // most |S| states per variable.
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        let mut sys = ForwardSystem::new(&m);
        let c = sys.constant("c");
        let src = sys.var("SRC");
        let dst = sys.var("DST");
        sys.add_constant(c, src);
        let fg = sys.word(&[g]);
        let fk = sys.word(&[k]);
        for i in 0..10 {
            let mid = sys.var(&format!("M{i}"));
            sys.add_edge(src, mid, if i % 2 == 0 { fg } else { fk });
            sys.add_edge(mid, dst, if i % 3 == 0 { fg } else { fk });
        }
        sys.solve();
        assert!(sys.constant_states(dst, c).len() <= 2);
    }
}
