//! Regularly annotated set constraints — the paper's core contribution.
//!
//! A *regularly annotated set constraint* is an inclusion `se₁ ⊆ˣ se₂`
//! between set expressions, where `x` is a word over a regular annotation
//! language `L(M)`. Solutions assign each set variable a downward-closed set
//! of *annotated* ground terms; the constraint requires
//! `ρ(se₁)·x ⊆ ρ(se₂)`, where `·x` appends `x` to the annotation of every
//! constructor in a term (paper §2).
//!
//! By Theorems 2.1/2.3 it suffices to track, instead of words, the
//! *representative functions* of their `≡_M` classes — elements of the
//! machine's transition monoid. This crate provides:
//!
//! * [`algebra`] — annotation algebras: the plain transition monoid
//!   ([`algebra::MonoidAlgebra`]), parametric substitution environments for
//!   properties like `open(x)`/`close(x)` ([`algebra::SubstAlgebra`], §6.4),
//!   and an O(1) gen/kill bit-vector algebra ([`algebra::GenKillAlgebra`],
//!   §3.3);
//! * [`System`] — an online bidirectional solver implementing the paper's
//!   resolution rules (§3.1);
//! * [`forward`] — the forward unidirectional solver exploiting the coarser
//!   right congruence (§5);
//! * [`backward`] — the backward solver for the regular-reachability
//!   fragment (§5);
//! * query-style entailment methods on solved systems (§3.2), including
//!   recursive occurrence queries, emptiness, witness extraction, and the
//!   stack-aware intersection queries of §7.5.
//!
//! # Example
//!
//! The paper's Example 2.4 over the 1-bit machine `M_1bit`:
//!
//! ```
//! use rasc_automata::{Alphabet, Dfa};
//! use rasc_core::algebra::{Algebra, MonoidAlgebra};
//! use rasc_core::{SetExpr, System, Variance};
//!
//! let mut sigma = Alphabet::new();
//! let g = sigma.intern("g");
//! let k = sigma.intern("k");
//! let m = Dfa::one_bit(&sigma, g, k);
//! let mut sys = System::new(MonoidAlgebra::new(&m));
//!
//! let (w, x, y, z) = (sys.var("W"), sys.var("X"), sys.var("Y"), sys.var("Z"));
//! let c = sys.constructor("c", &[]);
//! let o = sys.constructor("o", &[Variance::Covariant]);
//!
//! let fg = sys.algebra_mut().word(&[g]);
//! let eps = sys.algebra().identity();
//! // c ⊆^g W        o(W) ⊆^g X
//! // X ⊆ o(Y)       o(Y) ⊆ Z
//! sys.add_ann(SetExpr::cons(c, []), SetExpr::var(w), fg).unwrap();
//! sys.add_ann(SetExpr::cons(o, [SetExpr::var(w)]), SetExpr::var(x), fg).unwrap();
//! sys.add_ann(SetExpr::var(x), SetExpr::cons(o, [SetExpr::var(y)]), eps).unwrap();
//! sys.add_ann(SetExpr::cons(o, [SetExpr::var(y)]), SetExpr::var(z), eps).unwrap();
//! sys.solve();
//!
//! // The solved form contains c ⊆^{f_g} Y (via W ⊆^g Y and f_g ∘ f_g = f_g).
//! let anns = sys.lower_bound_annotations(y, c);
//! assert_eq!(anns.len(), 1);
//! assert!(sys.algebra().is_accepting(anns[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
mod annset;
pub mod backward;
mod budget;
mod constraint;
mod error;
pub mod forward;
mod pattern;
mod provenance;
mod query;
pub mod snapshot;
mod solver;
mod term;

pub use budget::{Budget, CancelToken, Clock, InterruptReason, MonotonicClock, Outcome};
pub use constraint::{Constraint, SetExpr};
pub use error::{CoreError, Result};
pub use pattern::{AnnPred, TermPattern};
pub use provenance::ExplainStep;
pub use query::OccurrenceWitness;
pub use snapshot::{SnapshotAlgebra, SnapshotError};
pub use solver::{BaseSystem, Clash, SolverConfig, SolverStats, System, VarId};
pub use term::{ConsId, Constructor, GroundTerm, Variance};

/// Converts an interning index to a `u32` id.
///
/// Overflow here is a *capacity invariant*, not a fallible path: a system
/// with 2³² interned items exhausts memory long before this trips, so the
/// failure mode is a documented panic rather than a threaded error.
pub(crate) fn id_u32(n: usize, what: &str) -> u32 {
    match u32::try_from(n) {
        Ok(v) => v,
        Err(_) => panic!("capacity overflow: too many {what} (limit 2^32)"),
    }
}
