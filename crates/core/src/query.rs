//! Entailment queries on solved systems (paper §3.2).
//!
//! Following the §8 optimization, the solver never materializes the
//! representative-function variables that annotate constructors; the
//! queries here reconstruct the composed constructor annotations during the
//! entailment computation itself, by a memoized descent over
//! `(variable, annotation)` pairs.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::algebra::{Algebra, AnnId};
use crate::solver::{System, VarId};
use crate::term::{ConsId, GroundTerm};

/// A witness for an occurrence query: the chain of constructors wrapping
/// the matched constant, outermost first.
///
/// In the pushdown-model-checking encoding (§6.2) the wrapping constructors
/// are per-call-site constructors `o_i`, so the witness is a possible
/// runtime stack leading to the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccurrenceWitness {
    /// Wrapping constructors, outermost first (empty when the constant
    /// reaches the queried variable at the top level).
    pub stack: Vec<ConsId>,
    /// The constant's composed annotation (an accepting one).
    pub ann: AnnId,
}

impl<A: Algebra> System<A> {
    /// All composed annotations with which the constant `target` occurs
    /// *at any depth* inside the least solution of `x`.
    ///
    /// This is the paper's general query: whether a set of terms containing
    /// `target` annotated in certain states intersects `ρ(X)` (§3.2). The
    /// result is a finite set of algebra elements.
    pub fn occurrence_annotations(&mut self, x: VarId, target: ConsId) -> Vec<AnnId> {
        let id = self.algebra().identity();
        let mut found = Vec::new();
        let mut seen: HashSet<(VarId, AnnId)> = HashSet::new();
        let mut queue: VecDeque<(VarId, AnnId)> = VecDeque::new();
        seen.insert((x, id));
        queue.push_back((x, id));
        while let Some((v, outer)) = queue.pop_front() {
            let entries: Vec<(ConsId, Vec<VarId>, Vec<AnnId>)> = self
                .lbs_of(v)
                .map(|(s, anns)| (s.cons, s.args.clone(), anns.to_vec()))
                .collect();
            for (cons, args, anns) in entries {
                for f in anns {
                    let total = self.algebra_mut().compose(outer, f);
                    if cons == target {
                        found.push(total);
                    }
                    for &arg in &args {
                        if seen.insert((arg, total)) {
                            queue.push_back((arg, total));
                        }
                    }
                }
            }
        }
        found.sort();
        found.dedup();
        found
    }

    /// Whether `target` occurs at any depth in `ρ(X)` with an *accepting*
    /// composed annotation — the paper's
    /// `C ⊨ ⋁_{f ∈ F_accept} t ⊆^f X` entailment.
    pub fn occurs_accepting(&mut self, x: VarId, target: ConsId) -> bool {
        self.occurrence_witness(x, target).is_some()
    }

    /// Like [`System::occurs_accepting`], also returning the wrapping
    /// constructor stack (a witness path, §6.2).
    pub fn occurrence_witness(&mut self, x: VarId, target: ConsId) -> Option<OccurrenceWitness> {
        // BFS over (variable, outer-annotation) pairs, recording parents to
        // reconstruct the wrapping stack.
        let id = self.algebra().identity();
        let start = (x, id);
        let mut parents: HashMap<(VarId, AnnId), ((VarId, AnnId), ConsId)> = HashMap::new();
        let mut seen: HashSet<(VarId, AnnId)> = HashSet::new();
        let mut queue: VecDeque<(VarId, AnnId)> = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some((v, outer)) = queue.pop_front() {
            // Collect this variable's lower bounds first (borrow split).
            let entries: Vec<(ConsId, Vec<VarId>, Vec<AnnId>)> = self
                .lbs_of(v)
                .map(|(s, anns)| (s.cons, s.args.clone(), anns.to_vec()))
                .collect();
            for (cons, args, anns) in entries {
                for f in anns {
                    let total = self.algebra_mut().compose(outer, f);
                    if cons == target && self.algebra().is_accepting(total) {
                        // Reconstruct the wrapping stack.
                        let mut stack = Vec::new();
                        let mut cur = (v, outer);
                        while let Some(&(prev, via)) = parents.get(&cur) {
                            stack.push(via);
                            cur = prev;
                        }
                        stack.reverse();
                        return Some(OccurrenceWitness { stack, ann: total });
                    }
                    for &arg in &args {
                        let next = (arg, total);
                        if seen.insert(next) {
                            parents.insert(next, ((v, outer), cons));
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
        None
    }

    /// For every variable, the set of composed annotations at which the
    /// constant `target` occurs at any depth in its least solution.
    ///
    /// Computed *bottom-up* in a single fixpoint, so checking a whole
    /// program's worth of variables (the §6.2 violation scan) costs one
    /// pass instead of one descent per variable:
    /// `occ(X) = {f | (target, f) ∈ lb(X)} ∪
    ///           {f ∘ h | (c(…,Y,…), f) ∈ lb(X), h ∈ occ(Y)}`.
    #[allow(clippy::needless_range_loop)] // x is a variable id
    pub fn constant_occurrence_map(&mut self, target: ConsId) -> Vec<Vec<AnnId>> {
        let n = self.num_vars();
        let mut occ: Vec<Vec<AnnId>> = vec![Vec::new(); n];
        // arg-uses[y] = (x, f, via-constructor) for each lb entry of x whose
        // source has y as an argument.
        let mut uses: Vec<Vec<(usize, AnnId)>> = vec![Vec::new(); n];
        let mut worklist: VecDeque<(usize, AnnId)> = VecDeque::new();
        for x in 0..n {
            let entries: Vec<(ConsId, Vec<VarId>, Vec<AnnId>)> = self
                .lbs_of(VarId(x as u32))
                .map(|(s, anns)| (s.cons, s.args.clone(), anns.to_vec()))
                .collect();
            for (cons, args, anns) in entries {
                for &f in &anns {
                    if cons == target && insert_sorted(&mut occ[x], f) {
                        worklist.push_back((x, f));
                    }
                    for &arg in &args {
                        uses[arg.index()].push((x, f));
                    }
                }
            }
        }
        while let Some((y, h)) = worklist.pop_front() {
            for &(x, f) in &uses[y].clone() {
                let composed = self.algebra_mut().compose(f, h);
                if insert_sorted(&mut occ[x], composed) {
                    worklist.push_back((x, composed));
                }
            }
        }
        occ
    }

    /// Whether the least solution of `x` is non-empty.
    ///
    /// Constructors are non-strict (§2.1), but the *least* solution of a
    /// constructor expression is empty whenever a component variable's
    /// least solution is empty, so this is a standard productivity
    /// fixpoint.
    pub fn nonempty(&self, x: VarId) -> bool {
        self.alive_vars()[x.index()]
    }

    /// Per-variable emptiness of the least solution.
    fn alive_vars(&self) -> Vec<bool> {
        let mut alive = vec![false; self.num_vars()];
        loop {
            let mut changed = false;
            for v in 0..self.num_vars() {
                if alive[v] {
                    continue;
                }
                let v_id = VarId(v as u32);
                let productive = self
                    .lbs_of(v_id)
                    .any(|(s, _)| s.args.iter().all(|a| alive[self.find(*a).index()]));
                if productive {
                    alive[v] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Mirror liveness through the cycle-elimination classes: stale ids
        // share their root's fate.
        for v in 0..alive.len() {
            let root = self.find(VarId(v as u32)).index();
            if alive[root] {
                alive[v] = true;
            }
        }
        alive
    }

    /// Whether the least solutions of `x` and `y` share a ground term
    /// (ignoring annotations) — the *stack-aware alias query* of §7.5:
    /// an empty intersection proves the two labels are never aliased, even
    /// when their flat points-to sets overlap.
    pub fn intersect_nonempty(&self, x: VarId, y: VarId) -> bool {
        // Discover the pair graph reachable from (x, y), then run a
        // Knaster–Tarski least-fixpoint iteration over it.
        let mut pairs: Vec<(VarId, VarId)> = Vec::new();
        let mut index: HashMap<(VarId, VarId), usize> = HashMap::new();
        let mut stack = vec![(x, y)];
        index.insert((x, y), 0);
        pairs.push((x, y));
        while let Some((a, b)) = stack.pop() {
            let a_entries: Vec<(ConsId, Vec<VarId>)> = self
                .lbs_of(a)
                .map(|(s, _)| (s.cons, s.args.clone()))
                .collect();
            let b_entries: Vec<(ConsId, Vec<VarId>)> = self
                .lbs_of(b)
                .map(|(s, _)| (s.cons, s.args.clone()))
                .collect();
            for (ca, args_a) in &a_entries {
                for (cb, args_b) in &b_entries {
                    if ca != cb {
                        continue;
                    }
                    for (&pa, &pb) in args_a.iter().zip(args_b) {
                        if let std::collections::hash_map::Entry::Vacant(e) = index.entry((pa, pb))
                        {
                            e.insert(pairs.len());
                            pairs.push((pa, pb));
                            stack.push((pa, pb));
                        }
                    }
                }
            }
        }
        let mut truth = vec![false; pairs.len()];
        loop {
            let mut changed = false;
            for (i, &(a, b)) in pairs.iter().enumerate() {
                if truth[i] {
                    continue;
                }
                let a_entries: Vec<(ConsId, Vec<VarId>)> = self
                    .lbs_of(a)
                    .map(|(s, _)| (s.cons, s.args.clone()))
                    .collect();
                let holds = a_entries.iter().any(|(ca, args_a)| {
                    self.lbs_of(b).any(|(sb, _)| {
                        sb.cons == *ca
                            && args_a
                                .iter()
                                .zip(&sb.args)
                                .all(|(&pa, &pb)| truth[index[&(pa, pb)]])
                    })
                });
                if holds {
                    truth[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        truth[0]
    }

    /// Like [`System::occurrence_annotations`] but along *PN paths*
    /// (partially matched reachability, §6.2/§7.3): in addition to matched
    /// flows and flows into unreturned calls (term depth), the probe may
    /// traverse projection constraints *unmatched* — the N-part of a PN
    /// path, a return not matched by a call on the path.
    ///
    /// Callers decide acceptance: for fully matched queries use
    /// [`Algebra::is_accepting`]; for may-contain/PN queries,
    /// [`Algebra::is_useful`] characterizes substrings of accepted words
    /// (for bracket-like languages those are exactly the N-then-P forms).
    pub fn pn_occurrence_annotations(&mut self, x: VarId, target: ConsId) -> Vec<AnnId> {
        // Phase 1: Q(v) = annotations with which the bare target sits at
        // the top level of v, closed under (a) solved edges and (b)
        // unmatched projection hops.
        let mut q: Vec<Vec<AnnId>> = vec![Vec::new(); self.num_vars()];
        let mut worklist: VecDeque<(VarId, AnnId)> = VecDeque::new();
        for v in 0..self.num_vars() {
            let v = self.find(VarId(v as u32));
            for f in self.lower_bound_annotations(v, target) {
                if insert_sorted(&mut q[v.index()], f) {
                    worklist.push_back((v, f));
                }
            }
        }
        while let Some((v, f)) = worklist.pop_front() {
            for (w, g) in self.edges_from(v) {
                let h = self.algebra_mut().compose(g, f);
                if self.algebra().is_useful(h) && insert_sorted(&mut q[w.index()], h) {
                    worklist.push_back((w, h));
                }
            }
            for (target_var, g) in self.proj_sinks_of(v) {
                let h = self.algebra_mut().compose(g, f);
                if self.algebra().is_useful(h) && insert_sorted(&mut q[target_var.index()], h) {
                    worklist.push_back((target_var, h));
                }
            }
        }
        // Phase 2: descend from x through term structure, combining with Q.
        // Work with canonical (cycle-collapsed) ids: phase 1 inserted its
        // hop results at canonical variables only.
        let id = self.algebra().identity();
        let mut out: Vec<AnnId> = Vec::new();
        let mut seen: HashSet<(VarId, AnnId)> = HashSet::new();
        let mut bfs: VecDeque<(VarId, AnnId)> = VecDeque::new();
        let x0 = self.find(x);
        seen.insert((x0, id));
        bfs.push_back((x0, id));
        while let Some((v, outer)) = bfs.pop_front() {
            for f in q[v.index()].clone() {
                let total = self.algebra_mut().compose(outer, f);
                insert_sorted(&mut out, total);
            }
            let entries: Vec<(Vec<VarId>, Vec<AnnId>)> = self
                .lbs_of(v)
                .map(|(s, anns)| (s.args.clone(), anns.to_vec()))
                .collect();
            for (args, anns) in entries {
                for f in anns {
                    let total = self.algebra_mut().compose(outer, f);
                    for &arg in &args {
                        let arg = self.find(arg);
                        if seen.insert((arg, total)) {
                            bfs.push_back((arg, total));
                        }
                    }
                }
            }
        }
        out
    }

    /// Reconstructs the *constructor annotation variables* (`α`, `β`, …)
    /// that the solver — following the §8 optimization — never
    /// materializes during resolution.
    ///
    /// Each constructor expression `c^β(X…)` occurring in the constraints
    /// is seeded with `f_ε` (the query convention `f_ε ⊆ β` of §3.2), and
    /// each resolution `c^α(…) ⊆^f c^β(…)` contributes `f ∘ α ⊆ β`,
    /// iterated to a fixpoint. Returns, for each expression (keyed by
    /// constructor and argument variables), its annotation set.
    pub fn constructor_annotations(&mut self) -> HashMap<(ConsId, Vec<VarId>), Vec<AnnId>> {
        let id = self.algebra().identity();
        let mut ann: HashMap<(ConsId, Vec<VarId>), Vec<AnnId>> = HashMap::new();
        // Seed every constructor expression occurring anywhere.
        let exprs = self.constructor_expr_keys();
        for key in exprs {
            ann.entry(key).or_default().push(id);
        }
        // A function constraint `f∘α ⊆ β` is only *semantically* forced
        // when the source expression denotes a non-empty set in the least
        // solution (an empty source satisfies the inclusion for any β).
        let alive = self.alive_vars();
        // Fixpoint over resolutions: for every variable where a source
        // meets a constructor sink of the same head, push f∘α into β.
        loop {
            let mut changed = false;
            for x in 0..self.num_vars() {
                let x = VarId(x as u32);
                let meets = self.source_sink_meets(x);
                for (src_key, snk_key, g, h) in meets {
                    if !src_key.1.iter().all(|a| alive[self.find(*a).index()]) {
                        continue;
                    }
                    let f = self.algebra_mut().compose(h, g);
                    let alphas = ann.get(&src_key).cloned().unwrap_or_default();
                    for a in alphas {
                        let v = self.algebra_mut().compose(f, a);
                        let betas = ann.entry(snk_key.clone()).or_default();
                        if insert_sorted(betas, v) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        ann
    }

    /// Enumerates annotated ground terms of the least solution of `x`, up
    /// to `max_depth` constructor levels, returning at most `max_count`
    /// terms. Intended for diagnostics and for displaying context-sensitive
    /// points-to sets (§7.5).
    ///
    /// Constructor-level annotations are reconstructed with
    /// [`System::constructor_annotations`], so each lower-bound entry can
    /// yield one term per annotation class of its constructor occurrence.
    pub fn ground_terms(
        &mut self,
        x: VarId,
        max_depth: usize,
        max_count: usize,
    ) -> Vec<GroundTerm> {
        let outer = self.algebra().identity();
        let cons_anns = self.constructor_annotations();
        let set = self.ground_terms_at(x, outer, max_depth, max_count, &cons_anns);
        set.into_iter().collect()
    }

    fn ground_terms_at(
        &mut self,
        x: VarId,
        outer: AnnId,
        max_depth: usize,
        max_count: usize,
        cons_anns: &HashMap<(ConsId, Vec<VarId>), Vec<AnnId>>,
    ) -> std::collections::BTreeSet<GroundTerm> {
        use std::collections::BTreeSet;
        let mut out: BTreeSet<GroundTerm> = BTreeSet::new();
        if max_depth == 0 || max_count == 0 {
            return out;
        }
        let entries: Vec<(ConsId, Vec<VarId>, Vec<AnnId>)> = self
            .lbs_of(x)
            .map(|(s, anns)| (s.cons, s.args.clone(), anns.to_vec()))
            .collect();
        for (cons, args, anns) in entries {
            let occ_anns = cons_anns
                .get(&(cons, args.clone()))
                .cloned()
                .unwrap_or_else(|| vec![self.algebra().identity()]);
            for f in anns {
                if out.len() >= max_count {
                    return out;
                }
                // The component path annotation (appended to everything
                // below this level).
                let path = self.algebra_mut().compose(outer, f);
                if args.is_empty() {
                    for &alpha in &occ_anns {
                        let root = self.algebra_mut().compose(path, alpha);
                        out.insert(GroundTerm::constant(cons, root));
                        if out.len() >= max_count {
                            return out;
                        }
                    }
                    continue;
                }
                // Cartesian product of component terms (distinct terms
                // only, capped).
                let mut component_terms: Vec<Vec<GroundTerm>> = Vec::with_capacity(args.len());
                let mut dead = false;
                for &arg in &args {
                    let terms: Vec<GroundTerm> = self
                        .ground_terms_at(arg, path, max_depth - 1, max_count, cons_anns)
                        .into_iter()
                        .collect();
                    if terms.is_empty() {
                        dead = true;
                        break;
                    }
                    component_terms.push(terms);
                }
                if dead {
                    continue;
                }
                let mut combos: Vec<Vec<GroundTerm>> = vec![Vec::new()];
                for terms in &component_terms {
                    let mut next = Vec::new();
                    'outer: for combo in &combos {
                        for t in terms {
                            if next.len() > max_count {
                                break 'outer;
                            }
                            let mut c = combo.clone();
                            c.push(t.clone());
                            next.push(c);
                        }
                    }
                    combos = next;
                }
                for combo in combos {
                    for &alpha in &occ_anns {
                        if out.len() >= max_count {
                            return out;
                        }
                        let root = self.algebra_mut().compose(path, alpha);
                        out.insert(GroundTerm {
                            cons,
                            ann: root,
                            args: combo.clone(),
                        });
                    }
                }
            }
        }
        out
    }
}

fn insert_sorted(set: &mut Vec<AnnId>, a: AnnId) -> bool {
    match set.binary_search(&a) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, a);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::algebra::{Algebra, MonoidAlgebra};
    use crate::{SetExpr, System, Variance};
    use rasc_automata::{Alphabet, Dfa};

    fn one_bit_system() -> (
        System<MonoidAlgebra>,
        rasc_automata::SymbolId,
        rasc_automata::SymbolId,
    ) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let m = Dfa::one_bit(&sigma, g, k);
        (System::new(MonoidAlgebra::new(&m)), g, k)
    }

    #[test]
    fn occurrence_through_wrapping() {
        // pc flows into a call-site wrapper; the annotation g happens
        // inside the "callee"; pc should be found accepting at depth 1.
        let (mut sys, g, _) = one_bit_system();
        let pc = sys.constructor("pc", &[]);
        let o1 = sys.constructor("o1", &[Variance::Covariant]);
        let (s_main, f_entry, f_err) = (sys.var("Smain"), sys.var("Fentry"), sys.var("Ferr"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add(SetExpr::cons(pc, []), SetExpr::var(s_main))
            .unwrap();
        sys.add(SetExpr::cons_vars(o1, [s_main]), SetExpr::var(f_entry))
            .unwrap();
        sys.add_ann(SetExpr::var(f_entry), SetExpr::var(f_err), fg)
            .unwrap();
        sys.solve();
        let w = sys.occurrence_witness(f_err, pc).expect("pc reaches error");
        assert_eq!(w.stack, vec![o1]);
        assert!(sys.algebra().is_accepting(w.ann));
        // At the call site itself, pc's annotation is ε: not accepting.
        assert!(!sys.occurs_accepting(s_main, pc));
    }

    #[test]
    fn occurrence_annotations_collects_all_classes() {
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(y), fk)
            .unwrap();
        sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
        sys.solve();
        let anns = sys.occurrence_annotations(y, c);
        assert_eq!(anns.len(), 2, "both f_g and f_k reach Y");
    }

    #[test]
    fn nonempty_requires_productive_components() {
        let (mut sys, _, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let pair = sys.constructor("pair", &[Variance::Covariant, Variance::Covariant]);
        let (a, b, x, y) = (sys.var("A"), sys.var("B"), sys.var("X"), sys.var("Y"));
        sys.add(SetExpr::cons(c, []), SetExpr::var(a)).unwrap();
        // X ⊇ pair(A, B) with B empty: X empty in the least solution.
        sys.add(SetExpr::cons_vars(pair, [a, b]), SetExpr::var(x))
            .unwrap();
        // Y ⊇ pair(A, A): nonempty.
        sys.add(SetExpr::cons_vars(pair, [a, a]), SetExpr::var(y))
            .unwrap();
        sys.solve();
        assert!(sys.nonempty(a));
        assert!(!sys.nonempty(b));
        assert!(!sys.nonempty(x));
        assert!(sys.nonempty(y));
    }

    #[test]
    fn stack_aware_alias_query() {
        // The §7.5 example: X = {o1(a), o2(b)}, Y = {o2(a), o1(b)}.
        // Flat points-to sets intersect; term sets do not.
        let (mut sys, _, _) = one_bit_system();
        let a_c = sys.constructor("a", &[]);
        let b_c = sys.constructor("b", &[]);
        let o1 = sys.constructor("o1", &[Variance::Covariant]);
        let o2 = sys.constructor("o2", &[Variance::Covariant]);
        let (va, vb, x, y) = (sys.var("VA"), sys.var("VB"), sys.var("X"), sys.var("Y"));
        sys.add(SetExpr::cons(a_c, []), SetExpr::var(va)).unwrap();
        sys.add(SetExpr::cons(b_c, []), SetExpr::var(vb)).unwrap();
        sys.add(SetExpr::cons_vars(o1, [va]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::cons_vars(o2, [vb]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::cons_vars(o2, [va]), SetExpr::var(y))
            .unwrap();
        sys.add(SetExpr::cons_vars(o1, [vb]), SetExpr::var(y))
            .unwrap();
        sys.solve();
        assert!(!sys.intersect_nonempty(x, y), "x and y never alias");
        assert!(sys.intersect_nonempty(x, x));
    }

    #[test]
    fn intersection_handles_cycles() {
        let (mut sys, _, _) = one_bit_system();
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        // X ⊇ o(X), Y ⊇ o(Y): both empty in the least solution, so the
        // intersection is empty despite the cyclic structure.
        sys.add(SetExpr::cons_vars(o, [x]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [y]), SetExpr::var(y))
            .unwrap();
        sys.solve();
        assert!(!sys.intersect_nonempty(x, y));
    }

    #[test]
    fn occurrence_map_agrees_with_per_var_query() {
        let (mut sys, g, k) = one_bit_system();
        let pc = sys.constructor("pc", &[]);
        let o1 = sys.constructor("o1", &[Variance::Covariant]);
        let o2 = sys.constructor("o2", &[Variance::Covariant]);
        let vars: Vec<_> = (0..6).map(|i| sys.var(&format!("V{i}"))).collect();
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add(SetExpr::cons(pc, []), SetExpr::var(vars[0]))
            .unwrap();
        sys.add(SetExpr::cons_vars(o1, [vars[0]]), SetExpr::var(vars[1]))
            .unwrap();
        sys.add_ann(SetExpr::var(vars[1]), SetExpr::var(vars[2]), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(o2, [vars[2]]), SetExpr::var(vars[3]))
            .unwrap();
        sys.add_ann(SetExpr::var(vars[3]), SetExpr::var(vars[4]), fk)
            .unwrap();
        sys.add_ann(SetExpr::var(vars[3]), SetExpr::var(vars[5]), fg)
            .unwrap();
        sys.solve();
        let occ = sys.constant_occurrence_map(pc);
        for (i, &v) in vars.iter().enumerate() {
            let expected = sys.occurs_accepting(v, pc);
            let got = occ[v.index()]
                .iter()
                .any(|&a| sys.algebra().is_accepting(a));
            assert_eq!(got, expected, "var V{i}");
        }
        // Sanity: the g-then-k path is not accepting; g-then-g is.
        assert!(!sys.occurs_accepting(vars[4], pc));
        assert!(sys.occurs_accepting(vars[5], pc));
    }

    #[test]
    fn ground_terms_enumeration() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (a, x) = (sys.var("A"), sys.var("X"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [a]), SetExpr::var(x))
            .unwrap();
        sys.solve();
        let terms = sys.ground_terms(x, 4, 10);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].cons, o);
        assert_eq!(terms[0].args.len(), 1);
        assert_eq!(terms[0].args[0].cons, c);
        // The inner constant carries the accepting f_g annotation.
        assert!(sys.algebra().is_accepting(terms[0].args[0].ann));
    }
}
