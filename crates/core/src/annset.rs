//! Indexed solved-form storage for the bidirectional solver.
//!
//! The solver's per-variable adjacency (`succs`/`preds`) and bound
//! (`lbs`/`ubs`) categories were originally `HashMap<K, Vec<AnnId>>`,
//! cloned wholesale (via `flatten`) on every worklist step so propagation
//! could run while the solver mutates itself. Banshee (Kodumal & Aiken,
//! SAS 2005) showed that exactly this representation work — indexed edge
//! sets, clone-free iteration — is what lets set-constraint solvers scale;
//! this module provides the two building blocks:
//!
//! * [`AnnSet`] — a tiered annotation set: a sorted small-vec tier (cheap,
//!   cache-friendly, deterministic iteration order) that promotes to a
//!   shadow hash tier for O(1) membership once it outgrows
//!   [`ANNSET_PROMOTE_LEN`]. The sorted vec is always maintained, so
//!   iteration order and rendered output stay deterministic regardless of
//!   tier.
//! * [`AnnMap`] — a keyed family of [`AnnSet`]s plus a flat append-ordered
//!   *entry log* of live `(key, ann)` pairs. The log is the snapshot-cursor
//!   substrate: the propagation loop walks it by index, copying one `Copy`
//!   pair per step, instead of cloning the whole category up front. It also
//!   makes entry counts O(1) and insertion-order iteration deterministic
//!   (the old per-`HashMap` iteration order was stable only within one map
//!   instance).
//!
//! Rollback discipline: epoch undo removes entries in exact reverse
//! insertion order, so [`AnnMap::remove`] looks the log up from the back —
//! O(1) on that path — and the log returns byte-identically to its
//! pre-epoch sequence.

use std::collections::{HashMap, HashSet};

use crate::algebra::AnnId;

/// Sorted-vec tier capacity: an [`AnnSet`] longer than this grows a shadow
/// `HashSet` for O(1) membership tests. Below it, binary search over a
/// small contiguous vec wins on both time and space. The paper's §4 bound
/// (`≤ |F_M^≡|` annotations per entry key) keeps most sets far below this.
pub(crate) const ANNSET_PROMOTE_LEN: usize = 16;

/// A set of interned annotations with tiered membership and deterministic
/// (sorted) iteration order.
#[derive(Debug, Default)]
pub(crate) struct AnnSet {
    /// Always sorted and duplicate-free; the source of truth.
    sorted: Vec<AnnId>,
    /// Shadow membership index, present only above [`ANNSET_PROMOTE_LEN`].
    hash: Option<HashSet<AnnId>>,
}

impl AnnSet {
    /// Tiered membership: O(1) above the promote threshold, O(log n)
    /// binary search below. (The solver's dedupe path uses the same tiers
    /// inside [`AnnSet::insert`]; this standalone probe serves tests.)
    #[cfg(test)]
    pub(crate) fn contains(&self, a: AnnId) -> bool {
        match &self.hash {
            Some(h) => h.contains(&a),
            None => self.sorted.binary_search(&a).is_ok(),
        }
    }

    /// Inserts `a`; returns `false` when already present.
    pub(crate) fn insert(&mut self, a: AnnId) -> bool {
        if let Some(h) = &mut self.hash {
            if !h.insert(a) {
                return false;
            }
            let pos = match self.sorted.binary_search(&a) {
                Ok(_) => return true, // unreachable: hash mirrors sorted
                Err(pos) => pos,
            };
            self.sorted.insert(pos, a);
            return true;
        }
        match self.sorted.binary_search(&a) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, a);
                if self.sorted.len() > ANNSET_PROMOTE_LEN {
                    self.hash = Some(self.sorted.iter().copied().collect());
                }
                true
            }
        }
    }

    /// Removes `a`; returns `false` when absent. An emptied set drops its
    /// hash tier so rolled-back state is structurally minimal again.
    pub(crate) fn remove(&mut self, a: AnnId) -> bool {
        match self.sorted.binary_search(&a) {
            Ok(pos) => {
                self.sorted.remove(pos);
                if let Some(h) = &mut self.hash {
                    h.remove(&a);
                    if self.sorted.len() <= ANNSET_PROMOTE_LEN / 2 {
                        self.hash = None;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Builds a set from an already-sorted, duplicate-free vec, landing on
    /// the same tier an equivalent insert-by-insert sequence would have
    /// reached (hash shadow iff past the promote threshold).
    pub(crate) fn from_sorted(sorted: Vec<AnnId>) -> AnnSet {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let hash = (sorted.len() > ANNSET_PROMOTE_LEN).then(|| sorted.iter().copied().collect());
        AnnSet { sorted, hash }
    }

    pub(crate) fn len(&self) -> usize {
        self.sorted.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The annotations in sorted order.
    pub(crate) fn as_slice(&self) -> &[AnnId] {
        &self.sorted
    }
}

/// A solved-form category for one variable: per-key [`AnnSet`]s plus the
/// flat entry log the propagation cursors iterate. See the module docs.
#[derive(Debug)]
pub(crate) struct AnnMap<K> {
    /// Live `(key, ann)` entries in insertion order.
    entries: Vec<(K, AnnId)>,
    index: HashMap<K, AnnSet>,
}

impl<K> Default for AnnMap<K> {
    fn default() -> Self {
        AnnMap {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl<K: Copy + Eq + std::hash::Hash> AnnMap<K> {
    /// Inserts `(key, a)`; returns whether the entry is new. `on_new_key`
    /// fires when this is the key's first live annotation (the hook that
    /// maintains secondary indexes, e.g. the per-constructor buckets).
    pub(crate) fn insert_with<F: FnOnce()>(&mut self, key: K, a: AnnId, on_new_key: F) -> bool {
        let set = self.index.entry(key).or_default();
        let was_empty = set.is_empty();
        if !set.insert(a) {
            return false;
        }
        if was_empty {
            on_new_key();
        }
        self.entries.push((key, a));
        true
    }

    /// Inserts `(key, a)`; returns whether the entry is new.
    pub(crate) fn insert(&mut self, key: K, a: AnnId) -> bool {
        self.insert_with(key, a, || {})
    }

    /// Removes `(key, a)`; returns whether an entry was removed.
    /// `on_key_emptied` fires when the key's last annotation left.
    ///
    /// Epoch rollback removes entries in exact reverse insertion order, so
    /// the back-to-front log scan terminates immediately on that path.
    pub(crate) fn remove_with<F: FnOnce()>(&mut self, key: K, a: AnnId, on_key_emptied: F) -> bool {
        let Some(set) = self.index.get_mut(&key) else {
            return false;
        };
        if !set.remove(a) {
            return false;
        }
        if set.is_empty() {
            self.index.remove(&key);
            on_key_emptied();
        }
        if let Some(pos) = self.entries.iter().rposition(|&(k, x)| k == key && x == a) {
            self.entries.remove(pos);
        }
        true
    }

    /// Removes `(key, a)`; returns whether an entry was removed.
    pub(crate) fn remove(&mut self, key: K, a: AnnId) -> bool {
        self.remove_with(key, a, || {})
    }

    /// Membership test: O(1)/O(log n) via the key's [`AnnSet`].
    #[cfg(test)]
    pub(crate) fn contains(&self, key: K, a: AnnId) -> bool {
        self.index.get(&key).is_some_and(|s| s.contains(a))
    }

    /// Total live entries across all keys — O(1).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// The flat entry log, insertion-ordered. Propagation cursors index
    /// into this slice one step at a time instead of cloning it.
    pub(crate) fn entries(&self) -> &[(K, AnnId)] {
        &self.entries
    }

    /// The annotation set of one key (sorted), if live.
    pub(crate) fn get(&self, key: K) -> Option<&AnnSet> {
        self.index.get(&key)
    }

    /// Iterates `(key, sorted annotations)` groups (hash order; use
    /// [`AnnMap::entries`] where determinism matters).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &AnnSet)> {
        self.index.iter()
    }
}

impl<K: Copy + Eq + Ord + std::hash::Hash> AnnMap<K> {
    /// Bulk-loads an insertion-ordered entry log into an empty map.
    /// Structurally identical to replaying [`AnnMap::insert_with`] entry by
    /// entry, but groups entries with one key sort instead of paying one
    /// hash probe plus one sorted-vec shift per entry — the snapshot
    /// *restore* hot path, where the whole solved form streams back in at
    /// once. `on_new_key` fires once per distinct key, in first-appearance
    /// order (the same order incremental inserts would have fired it).
    ///
    /// Returns `false` on a duplicate `(key, ann)` pair; the map contents
    /// are unspecified after a failure (restore discards the system), but
    /// internally consistent.
    pub(crate) fn load_log<F: FnMut(K)>(
        &mut self,
        entries: Vec<(K, AnnId)>,
        mut on_new_key: F,
    ) -> bool {
        debug_assert!(self.entries.is_empty() && self.index.is_empty());
        if entries.is_empty() {
            return true;
        }
        // Stable grouping: sort positions by (key, position) so each key's
        // annotations stay in appearance order and ties keep the first
        // appearance first.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (entries[i as usize].0, i));
        // Keys surface in sorted order here, but `on_new_key` is specified
        // (and relied upon by the per-constructor buckets) to fire in
        // first-appearance order, so collect and re-sort by position.
        let mut new_keys: Vec<(u32, K)> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let key = entries[order[i] as usize].0;
            let start = i;
            while i < order.len() && entries[order[i] as usize].0 == key {
                i += 1;
            }
            let mut anns: Vec<AnnId> = order[start..i]
                .iter()
                .map(|&j| entries[j as usize].1)
                .collect();
            anns.sort_unstable();
            if anns.windows(2).any(|w| w[0] == w[1]) {
                return false;
            }
            new_keys.push((order[start], key));
            self.index.insert(key, AnnSet::from_sorted(anns));
        }
        new_keys.sort_unstable_by_key(|&(pos, _)| pos);
        for &(_, key) in &new_keys {
            on_new_key(key);
        }
        self.entries = entries;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(n: u32) -> AnnId {
        AnnId(n)
    }

    #[test]
    fn annset_promotes_and_demotes_across_the_tier_boundary() {
        let mut s = AnnSet::default();
        for i in 0..=(ANNSET_PROMOTE_LEN as u32) {
            assert!(s.insert(ann(i * 7 % 101)));
            assert!(!s.insert(ann(i * 7 % 101)), "duplicate rejected");
        }
        assert!(s.hash.is_some(), "promoted past the small tier");
        let sorted = s.as_slice().to_vec();
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for &a in &sorted {
            assert!(s.contains(a));
        }
        for &a in sorted.iter().rev() {
            assert!(s.remove(a));
            assert!(!s.remove(a));
        }
        assert!(s.is_empty());
        assert!(s.hash.is_none(), "emptied set demoted");
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        // A log with interleaved keys, enough entries on key 1 to cross the
        // promote threshold, and first appearances out of key order.
        let mut log: Vec<(u32, AnnId)> = Vec::new();
        for i in 0..(ANNSET_PROMOTE_LEN as u32 + 4) {
            log.push((1, ann(100 + (i * 13) % 29)));
        }
        log.insert(1, (7, ann(3)));
        log.insert(3, (0, ann(9)));
        log.push((7, ann(1)));

        let mut incremental: AnnMap<u32> = AnnMap::default();
        let mut inc_keys = Vec::new();
        for &(k, a) in &log {
            incremental.insert_with(k, a, || inc_keys.push(k));
        }
        let mut bulk: AnnMap<u32> = AnnMap::default();
        let mut bulk_keys = Vec::new();
        assert!(bulk.load_log(log.clone(), |k| bulk_keys.push(k)));

        assert_eq!(bulk.entries(), incremental.entries());
        assert_eq!(bulk_keys, inc_keys, "new-key hook order preserved");
        for k in [0u32, 1, 7] {
            let (b, i) = (bulk.get(k).unwrap(), incremental.get(k).unwrap());
            assert_eq!(b.as_slice(), i.as_slice());
            assert_eq!(b.hash.is_some(), i.hash.is_some(), "same tier on key {k}");
        }

        let mut dup = log.clone();
        dup.push(dup[0]);
        let mut rejecting: AnnMap<u32> = AnnMap::default();
        assert!(!rejecting.load_log(dup, |_| {}), "duplicate pair rejected");
    }

    #[test]
    fn annmap_log_tracks_inserts_and_reverse_removals() {
        let mut m: AnnMap<u32> = AnnMap::default();
        let mut new_keys = 0;
        for (k, a) in [(1, 10), (2, 20), (1, 11), (2, 20)] {
            m.insert_with(k, ann(a), || new_keys += 1);
        }
        assert_eq!(new_keys, 2, "duplicate (2,20) created no key");
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.entries(),
            &[(1, ann(10)), (2, ann(20)), (1, ann(11))],
            "insertion order, duplicates dropped"
        );
        assert!(m.contains(1, ann(11)));
        // Reverse-order removal (the rollback path) restores each prefix.
        let mut emptied = 0;
        assert!(m.remove_with(1, ann(11), || emptied += 1));
        assert_eq!(emptied, 0, "key 1 still holds ann 10");
        assert!(m.remove_with(2, ann(20), || emptied += 1));
        assert!(m.remove_with(1, ann(10), || emptied += 1));
        assert_eq!(emptied, 2);
        assert_eq!(m.len(), 0);
        assert!(m.get(1).is_none());
    }
}
