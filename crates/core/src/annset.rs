//! Indexed solved-form storage for the bidirectional solver.
//!
//! The solver's per-variable adjacency (`succs`/`preds`) and bound
//! (`lbs`/`ubs`) categories were originally `HashMap<K, Vec<AnnId>>`,
//! cloned wholesale (via `flatten`) on every worklist step so propagation
//! could run while the solver mutates itself. Banshee (Kodumal & Aiken,
//! SAS 2005) showed that exactly this representation work — indexed edge
//! sets, clone-free iteration — is what lets set-constraint solvers scale;
//! this module provides the two building blocks:
//!
//! * [`AnnSet`] — a tiered annotation set: a sorted small-vec tier (cheap,
//!   cache-friendly, deterministic iteration order) that promotes to a
//!   shadow hash tier for O(1) membership once it outgrows
//!   [`ANNSET_PROMOTE_LEN`]. The sorted vec is always maintained, so
//!   iteration order and rendered output stay deterministic regardless of
//!   tier.
//! * [`AnnMap`] — a keyed family of [`AnnSet`]s plus a flat append-ordered
//!   *entry log* of live `(key, ann)` pairs. The log is the snapshot-cursor
//!   substrate: the propagation loop walks it by index, copying one `Copy`
//!   pair per step, instead of cloning the whole category up front. It also
//!   makes entry counts O(1) and insertion-order iteration deterministic
//!   (the old per-`HashMap` iteration order was stable only within one map
//!   instance).
//!
//! # Copy-on-write layering
//!
//! An [`AnnMap`] is two layers: an optional immutable **base**
//! (`Arc`-shared between every session forked from the same solved form)
//! and a mutable **overlay** recording only the entries added since the
//! fork. Reads merge both layers; writes touch only the overlay. A map
//! that never forked simply has no base layer, so the single-session hot
//! path pays one `Option` check per operation. [`AnnMap::freeze`] flattens
//! the overlay onto the base (reusing the `Arc` untouched when the overlay
//! is empty), which is how a solved system becomes a new shareable base.
//!
//! Rollback discipline: epoch undo removes entries in exact reverse
//! insertion order, so [`AnnMap::remove`] looks the log up from the back —
//! O(1) on that path — and the log returns byte-identically to its
//! pre-epoch sequence. Epochs can only open *after* a fork (a base is
//! always a fixpoint with no epochs), so every journaled removal names an
//! overlay entry; the base layer is never mutated.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::algebra::AnnId;

/// Sorted-vec tier capacity: an [`AnnSet`] longer than this grows a shadow
/// `HashSet` for O(1) membership tests. Below it, binary search over a
/// small contiguous vec wins on both time and space. The paper's §4 bound
/// (`≤ |F_M^≡|` annotations per entry key) keeps most sets far below this.
pub(crate) const ANNSET_PROMOTE_LEN: usize = 16;

/// A set of interned annotations with tiered membership and deterministic
/// (sorted) iteration order.
#[derive(Debug, Default, Clone)]
pub(crate) struct AnnSet {
    /// Always sorted and duplicate-free; the source of truth.
    sorted: Vec<AnnId>,
    /// Shadow membership index, present only above [`ANNSET_PROMOTE_LEN`].
    hash: Option<HashSet<AnnId>>,
}

impl AnnSet {
    /// Tiered membership: O(1) above the promote threshold, O(log n)
    /// binary search below.
    pub(crate) fn contains(&self, a: AnnId) -> bool {
        match &self.hash {
            Some(h) => h.contains(&a),
            None => self.sorted.binary_search(&a).is_ok(),
        }
    }

    /// Inserts `a`; returns `false` when already present.
    pub(crate) fn insert(&mut self, a: AnnId) -> bool {
        if let Some(h) = &mut self.hash {
            if !h.insert(a) {
                return false;
            }
            let pos = match self.sorted.binary_search(&a) {
                Ok(_) => return true, // unreachable: hash mirrors sorted
                Err(pos) => pos,
            };
            self.sorted.insert(pos, a);
            return true;
        }
        match self.sorted.binary_search(&a) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, a);
                if self.sorted.len() > ANNSET_PROMOTE_LEN {
                    self.hash = Some(self.sorted.iter().copied().collect());
                }
                true
            }
        }
    }

    /// Removes `a`; returns `false` when absent. An emptied set drops its
    /// hash tier so rolled-back state is structurally minimal again.
    pub(crate) fn remove(&mut self, a: AnnId) -> bool {
        match self.sorted.binary_search(&a) {
            Ok(pos) => {
                self.sorted.remove(pos);
                if let Some(h) = &mut self.hash {
                    h.remove(&a);
                    if self.sorted.len() <= ANNSET_PROMOTE_LEN / 2 {
                        self.hash = None;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Builds a set from an already-sorted, duplicate-free vec, landing on
    /// the same tier an equivalent insert-by-insert sequence would have
    /// reached (hash shadow iff past the promote threshold).
    pub(crate) fn from_sorted(sorted: Vec<AnnId>) -> AnnSet {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let hash = (sorted.len() > ANNSET_PROMOTE_LEN).then(|| sorted.iter().copied().collect());
        AnnSet { sorted, hash }
    }

    pub(crate) fn len(&self) -> usize {
        self.sorted.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The annotations in sorted order.
    pub(crate) fn as_slice(&self) -> &[AnnId] {
        &self.sorted
    }
}

/// The dense single-layer storage: entry log plus per-key sets. One of
/// these is either an [`AnnMap`]'s private overlay or its `Arc`-shared
/// immutable base.
#[derive(Debug, Clone)]
struct AnnMapCore<K> {
    /// Live `(key, ann)` entries in insertion order.
    entries: Vec<(K, AnnId)>,
    index: HashMap<K, AnnSet>,
}

impl<K> Default for AnnMapCore<K> {
    fn default() -> Self {
        AnnMapCore {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }
}

/// A solved-form category for one variable: per-key [`AnnSet`]s plus the
/// flat entry log the propagation cursors iterate, layered as an optional
/// shared base plus a private overlay. See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct AnnMap<K> {
    /// The immutable shared layer (entries present at fork time).
    base: Option<Arc<AnnMapCore<K>>>,
    /// The mutable layer recording everything added since the fork.
    over: AnnMapCore<K>,
}

impl<K> Default for AnnMap<K> {
    fn default() -> Self {
        AnnMap {
            base: None,
            over: AnnMapCore::default(),
        }
    }
}

impl<K: Copy + Eq + std::hash::Hash> AnnMap<K> {
    fn base_entries(&self) -> &[(K, AnnId)] {
        self.base.as_deref().map_or(&[], |b| &b.entries)
    }

    /// Entries in the shared base layer (0 when never forked).
    pub(crate) fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.entries.len())
    }

    /// Inserts `(key, a)`; returns whether the entry is new (across both
    /// layers). `on_new_key` fires when this is the key's first live
    /// annotation in *either* layer (the hook that maintains secondary
    /// indexes, e.g. the per-constructor buckets).
    pub(crate) fn insert_with<F: FnOnce()>(&mut self, key: K, a: AnnId, on_new_key: F) -> bool {
        let in_base = self.base.as_deref().and_then(|b| b.index.get(&key));
        if in_base.is_some_and(|s| s.contains(a)) {
            return false;
        }
        let set = self.over.index.entry(key).or_default();
        let was_empty = set.is_empty();
        if !set.insert(a) {
            return false;
        }
        if was_empty && in_base.is_none() {
            on_new_key();
        }
        self.over.entries.push((key, a));
        true
    }

    /// Inserts `(key, a)`; returns whether the entry is new.
    pub(crate) fn insert(&mut self, key: K, a: AnnId) -> bool {
        self.insert_with(key, a, || {})
    }

    /// Removes `(key, a)` from the overlay; returns whether an entry was
    /// removed. `on_key_emptied` fires when the key's last annotation left
    /// both layers. The base layer is immutable: removal of a base entry
    /// is a no-op by construction (epoch undo only ever names entries
    /// inserted after the fork, which all live in the overlay).
    ///
    /// Epoch rollback removes entries in exact reverse insertion order, so
    /// the back-to-front log scan terminates immediately on that path.
    pub(crate) fn remove_with<F: FnOnce()>(&mut self, key: K, a: AnnId, on_key_emptied: F) -> bool {
        let Some(set) = self.over.index.get_mut(&key) else {
            return false;
        };
        if !set.remove(a) {
            return false;
        }
        if set.is_empty() {
            self.over.index.remove(&key);
            let in_base = self
                .base
                .as_deref()
                .is_some_and(|b| b.index.contains_key(&key));
            if !in_base {
                on_key_emptied();
            }
        }
        if let Some(pos) = self
            .over
            .entries
            .iter()
            .rposition(|&(k, x)| k == key && x == a)
        {
            self.over.entries.remove(pos);
        }
        true
    }

    /// Removes `(key, a)`; returns whether an entry was removed.
    pub(crate) fn remove(&mut self, key: K, a: AnnId) -> bool {
        self.remove_with(key, a, || {})
    }

    /// Membership test across both layers: O(1)/O(log n) via the key's
    /// [`AnnSet`]s. Read-only — the parallel solver's speculation phase
    /// probes with this against the frozen pre-round view.
    pub(crate) fn contains(&self, key: K, a: AnnId) -> bool {
        self.over.index.get(&key).is_some_and(|s| s.contains(a))
            || self
                .base
                .as_deref()
                .and_then(|b| b.index.get(&key))
                .is_some_and(|s| s.contains(a))
    }

    /// Total live entries across all keys and both layers — O(1).
    pub(crate) fn len(&self) -> usize {
        self.base_len() + self.over.entries.len()
    }

    /// The `i`-th entry of the merged log: base entries first (in their
    /// insertion order), then overlay entries. Propagation cursors index
    /// through this one step at a time instead of cloning the category;
    /// appends during the walk land in the overlay and are still visited.
    pub(crate) fn entry(&self, i: usize) -> Option<(K, AnnId)> {
        let nb = self.base_len();
        if i < nb {
            self.base.as_deref().map(|b| b.entries[i])
        } else {
            self.over.entries.get(i - nb).copied()
        }
    }

    /// The merged entry log, insertion-ordered (base first, then overlay).
    pub(crate) fn iter_entries(&self) -> impl Iterator<Item = (K, AnnId)> + '_ {
        self.base_entries()
            .iter()
            .copied()
            .chain(self.over.entries.iter().copied())
    }

    /// The (up to two) annotation sets recorded for `key`: the base
    /// layer's set, then the overlay's. The two are disjoint by
    /// construction (inserts dedupe across layers), so chaining them
    /// enumerates each annotation exactly once.
    pub(crate) fn sets(&self, key: K) -> impl Iterator<Item = &AnnSet> {
        self.base
            .as_deref()
            .and_then(|b| b.index.get(&key))
            .into_iter()
            .chain(self.over.index.get(&key))
    }

    /// Whether `key` has any live annotation in either layer.
    #[cfg(test)]
    pub(crate) fn has_key(&self, key: K) -> bool {
        self.over.index.contains_key(&key)
            || self
                .base
                .as_deref()
                .is_some_and(|b| b.index.contains_key(&key))
    }

    /// Iterates `(key, sorted annotations)` groups (hash order; use
    /// [`AnnMap::iter_entries`] where determinism matters). A key with
    /// annotations in both layers yields **twice**, with disjoint sets —
    /// callers enumerating `(key, ann)` pairs see each pair exactly once.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &AnnSet)> {
        self.base
            .as_deref()
            .map(|b| b.index.iter())
            .into_iter()
            .flatten()
            .chain(self.over.index.iter())
    }

    /// Flattens the overlay onto the base, leaving an empty overlay over
    /// one immutable `Arc`-shared layer — the shape [`AnnMap::clone`]
    /// shares in O(1). When the overlay is already empty the existing base
    /// `Arc` is reused untouched; the merged entry log keeps base entries
    /// first, so freezing never reorders what [`AnnMap::iter_entries`]
    /// (and therefore snapshot bytes) observe.
    pub(crate) fn freeze(&mut self) {
        if self.over.entries.is_empty() && self.over.index.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(b) => Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            None => AnnMapCore::default(),
        };
        let over = std::mem::take(&mut self.over);
        for (k, set) in over.index {
            match core.index.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for &a in set.as_slice() {
                        e.get_mut().insert(a);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(set);
                }
            }
        }
        core.entries.extend(over.entries);
        self.base = Some(Arc::new(core));
    }
}

impl<K: Copy + Eq + Ord + std::hash::Hash> AnnMap<K> {
    /// Bulk-loads an insertion-ordered entry log into an empty map (the
    /// overlay of a map with no base). Structurally identical to replaying
    /// [`AnnMap::insert_with`] entry by entry, but groups entries with one
    /// key sort instead of paying one hash probe plus one sorted-vec shift
    /// per entry — the snapshot *restore* hot path, where the whole solved
    /// form streams back in at once. `on_new_key` fires once per distinct
    /// key, in first-appearance order (the same order incremental inserts
    /// would have fired it).
    ///
    /// Returns `false` on a duplicate `(key, ann)` pair; the map contents
    /// are unspecified after a failure (restore discards the system), but
    /// internally consistent.
    pub(crate) fn load_log<F: FnMut(K)>(
        &mut self,
        entries: Vec<(K, AnnId)>,
        mut on_new_key: F,
    ) -> bool {
        debug_assert!(
            self.base.is_none() && self.over.entries.is_empty() && self.over.index.is_empty()
        );
        if entries.is_empty() {
            return true;
        }
        // Stable grouping: sort positions by (key, position) so each key's
        // annotations stay in appearance order and ties keep the first
        // appearance first.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (entries[i as usize].0, i));
        // Keys surface in sorted order here, but `on_new_key` is specified
        // (and relied upon by the per-constructor buckets) to fire in
        // first-appearance order, so collect and re-sort by position.
        let mut new_keys: Vec<(u32, K)> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let key = entries[order[i] as usize].0;
            let start = i;
            while i < order.len() && entries[order[i] as usize].0 == key {
                i += 1;
            }
            let mut anns: Vec<AnnId> = order[start..i]
                .iter()
                .map(|&j| entries[j as usize].1)
                .collect();
            anns.sort_unstable();
            if anns.windows(2).any(|w| w[0] == w[1]) {
                return false;
            }
            new_keys.push((order[start], key));
            self.over.index.insert(key, AnnSet::from_sorted(anns));
        }
        new_keys.sort_unstable_by_key(|&(pos, _)| pos);
        for &(_, key) in &new_keys {
            on_new_key(key);
        }
        self.over.entries = entries;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(n: u32) -> AnnId {
        AnnId(n)
    }

    fn set_of<K: Copy + Eq + std::hash::Hash>(m: &AnnMap<K>, key: K) -> Vec<AnnId> {
        let mut anns: Vec<AnnId> = m
            .sets(key)
            .flat_map(|s| s.as_slice().iter().copied())
            .collect();
        anns.sort_unstable();
        anns
    }

    #[test]
    fn annset_promotes_and_demotes_across_the_tier_boundary() {
        let mut s = AnnSet::default();
        for i in 0..=(ANNSET_PROMOTE_LEN as u32) {
            assert!(s.insert(ann(i * 7 % 101)));
            assert!(!s.insert(ann(i * 7 % 101)), "duplicate rejected");
        }
        assert!(s.hash.is_some(), "promoted past the small tier");
        let sorted = s.as_slice().to_vec();
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for &a in &sorted {
            assert!(s.contains(a));
        }
        for &a in sorted.iter().rev() {
            assert!(s.remove(a));
            assert!(!s.remove(a));
        }
        assert!(s.is_empty());
        assert!(s.hash.is_none(), "emptied set demoted");
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        // A log with interleaved keys, enough entries on key 1 to cross the
        // promote threshold, and first appearances out of key order.
        let mut log: Vec<(u32, AnnId)> = Vec::new();
        for i in 0..(ANNSET_PROMOTE_LEN as u32 + 4) {
            log.push((1, ann(100 + (i * 13) % 29)));
        }
        log.insert(1, (7, ann(3)));
        log.insert(3, (0, ann(9)));
        log.push((7, ann(1)));

        let mut incremental: AnnMap<u32> = AnnMap::default();
        let mut inc_keys = Vec::new();
        for &(k, a) in &log {
            incremental.insert_with(k, a, || inc_keys.push(k));
        }
        let mut bulk: AnnMap<u32> = AnnMap::default();
        let mut bulk_keys = Vec::new();
        assert!(bulk.load_log(log.clone(), |k| bulk_keys.push(k)));

        assert!(bulk.iter_entries().eq(incremental.iter_entries()));
        assert_eq!(bulk_keys, inc_keys, "new-key hook order preserved");
        for k in [0u32, 1, 7] {
            assert_eq!(set_of(&bulk, k), set_of(&incremental, k));
        }

        let mut dup = log.clone();
        dup.push(dup[0]);
        let mut rejecting: AnnMap<u32> = AnnMap::default();
        assert!(!rejecting.load_log(dup, |_| {}), "duplicate pair rejected");
    }

    #[test]
    fn annmap_log_tracks_inserts_and_reverse_removals() {
        let mut m: AnnMap<u32> = AnnMap::default();
        let mut new_keys = 0;
        for (k, a) in [(1, 10), (2, 20), (1, 11), (2, 20)] {
            m.insert_with(k, ann(a), || new_keys += 1);
        }
        assert_eq!(new_keys, 2, "duplicate (2,20) created no key");
        assert_eq!(m.len(), 3);
        assert!(
            m.iter_entries()
                .eq([(1, ann(10)), (2, ann(20)), (1, ann(11))]),
            "insertion order, duplicates dropped"
        );
        assert!(m.contains(1, ann(11)));
        // Reverse-order removal (the rollback path) restores each prefix.
        let mut emptied = 0;
        assert!(m.remove_with(1, ann(11), || emptied += 1));
        assert_eq!(emptied, 0, "key 1 still holds ann 10");
        assert!(m.remove_with(2, ann(20), || emptied += 1));
        assert!(m.remove_with(1, ann(10), || emptied += 1));
        assert_eq!(emptied, 2);
        assert_eq!(m.len(), 0);
        assert!(!m.has_key(1));
    }

    #[test]
    fn frozen_base_shares_and_overlay_records_only_deltas() {
        let mut m: AnnMap<u32> = AnnMap::default();
        m.insert(1, ann(10));
        m.insert(2, ann(20));
        m.freeze();
        assert_eq!(m.base_len(), 2);

        // A fork is a plain clone: the base Arc is shared, overlays are
        // independent.
        let mut fork = m.clone();
        assert!(Arc::ptr_eq(
            m.base.as_ref().unwrap(),
            fork.base.as_ref().unwrap()
        ));

        // Duplicates of base entries are rejected without touching the
        // overlay; base keys never re-fire the new-key hook.
        assert!(!fork.insert(1, ann(10)));
        let mut hook = 0;
        assert!(fork.insert_with(1, ann(11), || hook += 1));
        assert_eq!(hook, 0, "key 1 already lives in the base");
        assert!(fork.insert_with(3, ann(30), || hook += 1));
        assert_eq!(hook, 1, "key 3 is new across both layers");
        assert_eq!(fork.len(), 4);
        assert_eq!(m.len(), 2, "the origin map never sees fork writes");

        // Reads merge: per-key sets, the indexed log, and membership.
        assert_eq!(set_of(&fork, 1), vec![ann(10), ann(11)]);
        assert_eq!(fork.entry(0), Some((1, ann(10))));
        assert_eq!(fork.entry(2), Some((1, ann(11))));
        assert_eq!(fork.entry(3), Some((3, ann(30))));
        assert!(fork.contains(1, ann(10)));
        assert!(fork.contains(3, ann(30)));

        // Rollback-style removal touches only the overlay; emptying an
        // overlay set whose key survives in the base must not fire the
        // emptied hook, while a key that existed only in the overlay must.
        let mut emptied = 0;
        assert!(fork.remove_with(3, ann(30), || emptied += 1));
        assert_eq!(emptied, 1);
        assert!(fork.remove_with(1, ann(11), || emptied += 1));
        assert_eq!(emptied, 1, "key 1 still lives in the base");
        assert!(!fork.remove(1, ann(10)), "base entries are immutable");
        assert!(fork.iter_entries().eq(m.iter_entries()));

        // Re-freezing after growth flattens deterministically: base
        // entries first, then overlay entries.
        let mut grown = m.clone();
        grown.insert(1, ann(12));
        grown.insert(4, ann(40));
        grown.freeze();
        assert!(grown
            .iter_entries()
            .eq([(1, ann(10)), (2, ann(20)), (1, ann(12)), (4, ann(40))]));
        assert_eq!(set_of(&grown, 1), vec![ann(10), ann(12)]);
        assert_eq!(grown.base_len(), 4);
    }
}
