//! Set expressions and surface constraints.

use crate::solver::VarId;
use crate::term::ConsId;

/// A set expression (paper §2.1/§2.4):
///
/// ```text
/// se ::= X | c(X₁, …, X_{a(c)}) | c⁻ⁱ(X)
/// ```
///
/// Constructor arguments and projection subjects are set *variables*, as in
/// the paper's grammar. Note that set expressions carry no annotations —
/// constructor annotations are inferred during resolution (§2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetExpr {
    /// A set variable.
    Var(VarId),
    /// A constructor applied to variables, `c(X₁, …)`.
    Cons(ConsId, Vec<VarId>),
    /// A projection `c⁻ⁱ(X)` selecting the i-th component (0-based here;
    /// the paper writes 1-based indices).
    Proj(ConsId, usize, VarId),
}

impl SetExpr {
    /// A variable expression.
    pub fn var(v: VarId) -> SetExpr {
        SetExpr::Var(v)
    }

    /// A constructor expression `c(X₁, …)`.
    pub fn cons(c: ConsId, args: impl IntoIterator<Item = SetExpr>) -> SetExpr {
        let vars = args
            .into_iter()
            .map(|e| match e {
                SetExpr::Var(v) => v,
                other => panic!(
                    "constructor arguments must be set variables (got {other:?}); \
                     introduce an auxiliary variable"
                ),
            })
            .collect();
        SetExpr::Cons(c, vars)
    }

    /// A constructor expression over variable ids directly.
    pub fn cons_vars(c: ConsId, args: impl IntoIterator<Item = VarId>) -> SetExpr {
        SetExpr::Cons(c, args.into_iter().collect())
    }

    /// A projection expression `c⁻ⁱ(X)` (0-based `index`).
    pub fn proj(c: ConsId, index: usize, subject: VarId) -> SetExpr {
        SetExpr::Proj(c, index, subject)
    }
}

/// A surface constraint `lhs ⊆^ann rhs` as recorded by
/// [`crate::System::constraints`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub lhs: SetExpr,
    /// Right-hand side.
    pub rhs: SetExpr,
    /// The annotation (an interned algebra element).
    pub ann: crate::algebra::AnnId,
}
