//! Error types for the constraint solver.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors reported while building or solving constraint systems.
///
/// Note that a *manifestly inconsistent* constraint (mismatched top-level
/// constructors, paper §3.1) is not an error: it is recorded as a
/// [`crate::Clash`] on the system, because analyses routinely want to keep
/// solving and report all inconsistencies at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A constructor was applied to the wrong number of arguments.
    ArityMismatch {
        /// The constructor's name.
        constructor: String,
        /// Its declared arity.
        expected: usize,
        /// The number of arguments supplied.
        found: usize,
    },
    /// A projection appeared on the right-hand side of a constraint, which
    /// the formalism forbids (§2.1).
    ProjectionOnRight,
    /// A projection index was out of range for its constructor.
    ProjectionIndex {
        /// The constructor's name.
        constructor: String,
        /// Its declared arity.
        arity: usize,
        /// The out-of-range (1-based) index used.
        index: usize,
    },
    /// A constraint through a contravariant constructor position carried a
    /// non-ε annotation. The paper only defines annotation propagation for
    /// covariant positions; see DESIGN.md.
    ContravariantAnnotation {
        /// The constructor's name.
        constructor: String,
        /// The (0-based) contravariant position.
        position: usize,
    },
    /// A variable or constructor id from a different [`crate::System`] was
    /// used.
    ForeignId,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                constructor,
                expected,
                found,
            } => write!(
                f,
                "constructor `{constructor}` has arity {expected} but was applied to {found} argument(s)"
            ),
            CoreError::ProjectionOnRight => {
                write!(f, "projections may not appear on the right-hand side of a constraint")
            }
            CoreError::ProjectionIndex {
                constructor,
                arity,
                index,
            } => write!(
                f,
                "projection index {index} out of range for `{constructor}` of arity {arity}"
            ),
            CoreError::ContravariantAnnotation {
                constructor,
                position,
            } => write!(
                f,
                "annotated constraint through contravariant position {position} of `{constructor}` is not supported"
            ),
            CoreError::ForeignId => write!(f, "id belongs to a different constraint system"),
        }
    }
}

impl std::error::Error for CoreError {}
