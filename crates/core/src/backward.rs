//! The backward unidirectional solver (paper §5).
//!
//! The backward construction is symmetric to the forward one, using a
//! *left* congruence: `w ≡_l w' ⇔ ∀x. xw ∈ L(M) iff xw' ∈ L(M)`. The
//! class of a function `f` under `≡_l` is determined by its *acceptance
//! set* `B_f = { s | f(s) ∈ S_accept }`, and composing an earlier function
//! `g` is the preimage `B_{f∘g} = g⁻¹(B_f)` — computable from the class
//! alone. Classes are stored as bitmasks (machines up to 64 states).
//!
//! This solver handles the *regular-reachability fragment*: annotated
//! variable-variable edges with *probes* (accepting sinks) propagated
//! backward. That is exactly the shape of backward interprocedural
//! bit-vector dataflow (liveness-style analyses over the CFG); constructor
//! decomposition through annotated paths requires full representative
//! functions and hence the bidirectional solver (see DESIGN.md).

use std::collections::{HashMap, VecDeque};

use rasc_automata::{Dfa, StateId};

use crate::algebra::{Algebra, AnnId, MonoidAlgebra};
use crate::solver::VarId;

/// A probe id: a named accepting sink registered with
/// [`BackwardSystem::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(u32);

#[derive(Debug, Default)]
struct VarData {
    name: String,
    /// Reversed adjacency: incoming edges `(source var, annotation)`.
    preds: HashMap<VarId, Vec<AnnId>>,
    /// Per-probe acceptance-set classes (bitmask over machine states).
    classes: HashMap<ProbeId, Vec<u64>>,
}

/// A backward solver for the regular-reachability fragment of annotated
/// set constraints.
///
/// # Example
///
/// Liveness-style backward reachability:
///
/// ```
/// use rasc_automata::{Alphabet, Dfa};
/// use rasc_core::backward::BackwardSystem;
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// let k = sigma.intern("k");
/// let m = Dfa::one_bit(&sigma, g, k);
/// let mut sys = BackwardSystem::new(&m);
/// let (x, y, z) = (sys.var("X"), sys.var("Y"), sys.var("Z"));
/// let fg = sys.word(&[g]);
/// let fk = sys.word(&[k]);
/// sys.add_edge(x, y, fg);
/// sys.add_edge(y, z, fk);
/// let p = sys.probe(z, "use");
/// sys.solve();
/// // From x, the path carries g then k: the fact is killed, not live.
/// assert!(!sys.reaches_accepting(p, x));
/// // From y, the path carries only k — still not accepting.
/// assert!(!sys.reaches_accepting(p, y));
/// // A direct edge with g is accepting from its source.
/// let w = sys.var("W");
/// sys.add_edge(w, z, fg);
/// sys.solve();
/// assert!(sys.reaches_accepting(p, w));
/// ```
#[derive(Debug)]
pub struct BackwardSystem {
    algebra: MonoidAlgebra,
    vars: Vec<VarData>,
    probes: Vec<(VarId, String)>,
    worklist: VecDeque<(VarId, ProbeId, u64)>,
    facts_processed: usize,
}

impl BackwardSystem {
    /// Creates a backward solver over the annotation language `L(machine)`.
    ///
    /// # Panics
    ///
    /// Panics if the minimized machine has more than 64 states (classes are
    /// bitmasks).
    pub fn new(machine: &Dfa) -> BackwardSystem {
        let algebra = MonoidAlgebra::new(machine);
        assert!(
            algebra.monoid().n_states() <= 64,
            "backward solver supports machines up to 64 states"
        );
        BackwardSystem {
            algebra,
            vars: Vec::new(),
            probes: Vec::new(),
            worklist: VecDeque::new(),
            facts_processed: 0,
        }
    }

    /// Interns the annotation for a word.
    pub fn word(&mut self, word: &[rasc_automata::SymbolId]) -> AnnId {
        self.algebra.word(word)
    }

    /// The identity annotation.
    pub fn identity(&self) -> AnnId {
        self.algebra.identity()
    }

    /// Creates a fresh set variable.
    pub fn var(&mut self, name: &str) -> VarId {
        let id = VarId(crate::id_u32(self.vars.len(), "variables"));
        self.vars.push(VarData {
            name: name.to_owned(),
            ..VarData::default()
        });
        id
    }

    /// The diagnostic name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Adds an annotated edge `X ⊆^f Y`.
    pub fn add_edge(&mut self, x: VarId, y: VarId, ann: AnnId) {
        if insert(self.vars[y.index()].preds.entry(x).or_default(), ann) {
            // Re-propagate y's classes across the new edge.
            let classes: Vec<(ProbeId, u64)> = self.vars[y.index()]
                .classes
                .iter()
                .flat_map(|(&p, ms)| ms.iter().map(move |&m| (p, m)))
                .collect();
            for (p, mask) in classes {
                let m2 = self.preimage(ann, mask);
                self.worklist.push_back((x, p, m2));
            }
        }
    }

    /// Registers an accepting probe at `x`: the sink `X ⊆ ⟨accept⟩`.
    ///
    /// The initial class is the machine's accepting-state set.
    pub fn probe(&mut self, x: VarId, name: &str) -> ProbeId {
        let id = ProbeId(crate::id_u32(self.probes.len(), "probes"));
        self.probes.push((x, name.to_owned()));
        let mut mask = 0u64;
        for s in 0..self.algebra.monoid().n_states() {
            if self.algebra.state_accepting(StateId::from_index(s)) {
                mask |= 1 << s;
            }
        }
        self.worklist.push_back((x, id, mask));
        id
    }

    /// `g⁻¹(B)`: the class of `f ∘ g` given the class `B` of `f`.
    fn preimage(&self, g: AnnId, mask: u64) -> u64 {
        let mut out = 0u64;
        for s in 0..self.algebra.monoid().n_states() {
            let img = self.algebra.apply(g, StateId::from_index(s));
            if mask & (1 << img.index()) != 0 {
                out |= 1 << s;
            }
        }
        out
    }

    /// Runs backward propagation to a fixpoint.
    pub fn solve(&mut self) {
        while let Some((x, p, mask)) = self.worklist.pop_front() {
            self.facts_processed += 1;
            if mask == 0 {
                // The empty class can never accept; prune (the backward
                // analogue of dropping useless annotations).
                continue;
            }
            if !insert_mask(self.vars[x.index()].classes.entry(p).or_default(), mask) {
                continue;
            }
            let preds: Vec<(VarId, AnnId)> = self.vars[x.index()]
                .preds
                .iter()
                .flat_map(|(&w, gs)| gs.iter().map(move |&g| (w, g)))
                .collect();
            for (w, g) in preds {
                let m2 = self.preimage(g, mask);
                self.worklist.push_back((w, p, m2));
            }
        }
    }

    /// Whether a term entering `x` with the empty word reaches the probe
    /// along a path whose total word is in `L(M)` — i.e. whether the start
    /// state lies in one of `x`'s classes.
    pub fn reaches_accepting(&self, p: ProbeId, x: VarId) -> bool {
        self.from_state_reaches(p, x, self.algebra.start_state())
    }

    /// Like [`BackwardSystem::reaches_accepting`] but for a term whose own
    /// annotation already moved the machine to `s`.
    pub fn from_state_reaches(&self, p: ProbeId, x: VarId, s: StateId) -> bool {
        self.vars[x.index()]
            .classes
            .get(&p)
            .is_some_and(|masks| masks.iter().any(|m| m & (1 << s.index()) != 0))
    }

    /// The classes recorded at `x` for probe `p` (for diagnostics).
    pub fn classes(&self, p: ProbeId, x: VarId) -> Vec<u64> {
        self.vars[x.index()]
            .classes
            .get(&p)
            .cloned()
            .unwrap_or_default()
    }

    /// `(variables, facts processed)` counters.
    pub fn stats(&self) -> (usize, usize) {
        (self.vars.len(), self.facts_processed)
    }
}

fn insert(set: &mut Vec<AnnId>, a: AnnId) -> bool {
    match set.binary_search(&a) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, a);
            true
        }
    }
}

fn insert_mask(set: &mut Vec<u64>, m: u64) -> bool {
    match set.binary_search(&m) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, m);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::Alphabet;

    fn one_bit() -> (Alphabet, Dfa) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let dfa = Dfa::one_bit(&sigma, g, k);
        (sigma, dfa)
    }

    #[test]
    fn liveness_style_backward_flow() {
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        let mut sys = BackwardSystem::new(&m);
        // Chain a --g--> b --eps--> c --k--> d, probe at d.
        let (a, b, c, d) = (sys.var("a"), sys.var("b"), sys.var("c"), sys.var("d"));
        let fg = sys.word(&[g]);
        let fk = sys.word(&[k]);
        let e = sys.identity();
        sys.add_edge(a, b, fg);
        sys.add_edge(b, c, e);
        sys.add_edge(c, d, fk);
        let p = sys.probe(d, "exit");
        sys.solve();
        // Total word from a: g·ε·k = killed ⇒ not accepting.
        assert!(!sys.reaches_accepting(p, a));
        // A second path without the kill.
        sys.add_edge(b, d, e);
        sys.solve();
        assert!(sys.reaches_accepting(p, a), "g then ε accepts");
        assert!(!sys.reaches_accepting(p, c), "only k from c");
    }

    #[test]
    fn classes_collapse_to_acceptance_sets() {
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        let mut sys = BackwardSystem::new(&m);
        let (a, z) = (sys.var("a"), sys.var("z"));
        let fg = sys.word(&[g]);
        let fk = sys.word(&[k]);
        // Many parallel 2-edge paths; classes at `a` stay ≤ 2^|S| = 4.
        for i in 0..12 {
            let mid = sys.var(&format!("m{i}"));
            sys.add_edge(a, mid, if i % 2 == 0 { fg } else { fk });
            sys.add_edge(mid, z, if i % 3 == 0 { fg } else { fk });
        }
        let p = sys.probe(z, "z");
        sys.solve();
        assert!(sys.classes(p, a).len() <= 4);
        assert!(sys.reaches_accepting(p, a));
    }

    #[test]
    fn incremental_edges_repropagate() {
        let (sigma, m) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let mut sys = BackwardSystem::new(&m);
        let (a, z) = (sys.var("a"), sys.var("z"));
        let p = sys.probe(z, "z");
        sys.solve();
        assert!(!sys.reaches_accepting(p, a));
        let fg = sys.word(&[g]);
        sys.add_edge(a, z, fg);
        sys.solve();
        assert!(sys.reaches_accepting(p, a));
    }
}
