//! Derivation provenance for solved-form entries.
//!
//! When enabled ([`crate::System::enable_provenance`]), the solver records
//! *why* each solved-form entry (edge, lower bound, upper bound) first
//! appeared: which surface constraint introduced it, or which
//! transitive-closure / resolution step derived it from earlier entries.
//! [`crate::System::explain`] walks these records backwards to produce a
//! derivation chain — the set-constraint analogue of a proof tree, surfaced
//! by the CLI's `explain` batch command.
//!
//! Recording is keyed by canonical (post-cycle-collapse) ids at insert
//! time, with first-justification-wins semantics: re-derivations of an
//! already-present entry do not overwrite the original reason. Entries
//! recorded while an epoch is open are journaled and removed again on
//! [`crate::System::pop_epoch`].

use std::collections::{HashMap, VecDeque};

use crate::algebra::AnnId;
use crate::solver::{SnkId, SrcId, VarId};

/// Why a solved-form entry exists (the premise side of one derivation
/// step). Variable/source/sink ids are those that were canonical at
/// recording time; lookups re-canonicalize.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Reason {
    /// Introduced directly by surface constraint `constraints[i]`.
    Constraint(usize),
    /// Transitive closure: lower bound `lb` pushed across edge `edge`.
    TransLb {
        /// The edge `(x, y, f)` the bound crossed.
        edge: (VarId, VarId, AnnId),
        /// The lower-bound entry `(x, src, g)` that crossed it.
        lb: (VarId, SrcId, AnnId),
    },
    /// Transitive closure: upper bound `ub` pulled back across `edge`.
    TransUb {
        /// The edge `(w, x, f)` the bound crossed (backwards).
        edge: (VarId, VarId, AnnId),
        /// The upper-bound entry `(x, snk, h)` that crossed it.
        ub: (VarId, SnkId, AnnId),
    },
    /// §3.1 resolution: a lower and an upper bound met at `var`.
    Meet {
        /// The variable where the bounds met.
        var: VarId,
        /// The met source.
        src: SrcId,
        /// Annotation of the lower-bound entry.
        src_ann: AnnId,
        /// The met sink.
        snk: SnkId,
        /// Annotation of the upper-bound entry.
        snk_ann: AnnId,
    },
    /// Re-derived when `from` was collapsed into its ε-cycle class.
    Collapsed {
        /// The variable merged away by cycle elimination.
        from: VarId,
    },
}

/// Identity of one solved-form entry, for keying provenance records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ProvKey {
    /// `x ⊆^f y`.
    Edge(VarId, VarId, AnnId),
    /// `src ⊆^g x`.
    Lb(VarId, SrcId, AnnId),
    /// `x ⊆^h snk`.
    Ub(VarId, SnkId, AnnId),
}

/// The provenance store: first reasons per entry, plus the reasons of
/// facts still pending on the worklist (kept in lockstep with it).
///
/// Like the solved-form categories, the store is layered for
/// copy-on-write forks: `base` holds the reasons frozen into a shared
/// base system, `map` records only the reasons added since the fork.
/// First-justification-wins spans both layers (an entry justified in the
/// base is never re-justified in the overlay), so epoch rollback — which
/// only ever undoes post-fork records — removes from `map` alone.
#[derive(Debug, Default, Clone)]
pub(crate) struct Provenance {
    /// Reasons frozen into the shared base layer at fork time.
    pub(crate) base: Option<std::sync::Arc<HashMap<ProvKey, Reason>>>,
    /// First recorded reason per solved-form entry since the fork.
    pub(crate) map: HashMap<ProvKey, Reason>,
    /// Reason of each pending worklist fact, in worklist order.
    pub(crate) pending: VecDeque<Reason>,
}

impl Provenance {
    /// First-justification lookup across both layers (base wins — it is
    /// by construction the earlier record).
    pub(crate) fn reason(&self, key: &ProvKey) -> Option<&Reason> {
        self.base
            .as_deref()
            .and_then(|b| b.get(key))
            .or_else(|| self.map.get(key))
    }

    /// Whether a reason is already recorded for `key` in either layer.
    pub(crate) fn has(&self, key: &ProvKey) -> bool {
        self.map.contains_key(key) || self.base.as_deref().is_some_and(|b| b.contains_key(key))
    }

    /// Iterates every record across both layers.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&ProvKey, &Reason)> {
        self.base
            .as_deref()
            .map(HashMap::iter)
            .into_iter()
            .flatten()
            .chain(self.map.iter())
    }

    /// Flattens the overlay onto the base, leaving an empty overlay over
    /// one shared layer (reusing the existing `Arc` when nothing was
    /// added since the last freeze).
    pub(crate) fn freeze(&mut self) {
        if self.map.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(b) => std::sync::Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone()),
            None => HashMap::new(),
        };
        core.extend(std::mem::take(&mut self.map));
        self.base = Some(std::sync::Arc::new(core));
    }
}

/// One step of a derivation chain returned by [`crate::System::explain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainStep {
    /// Index into [`crate::System::constraints`] when this step cites a
    /// surface constraint.
    pub constraint: Option<usize>,
    /// The rule that produced the entry: `"constraint"`, `"trans-lb"`,
    /// `"trans-ub"`, `"resolve"`, `"collapse"`, or `"axiom"` (an entry
    /// that predates provenance recording).
    pub rule: &'static str,
    /// Human-readable rendering of the step.
    pub description: String,
}
