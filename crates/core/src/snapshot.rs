//! Crash-safe snapshot container: a versioned, section-checksummed binary
//! format for persisting solved forms.
//!
//! The container layout is deliberately self-describing and boring:
//!
//! ```text
//! magic "RASCSNAP" (8 bytes)
//! version        u32 (little-endian, currently 1)
//! section count  u32
//! per section:
//!   tag          4 bytes (ASCII, e.g. "ALGB", "SOLV", "ENGN")
//!   payload len  u64
//!   checksum     u64 (FNV-1a 64 of the payload)
//!   payload      bytes
//! ```
//!
//! All integers are little-endian; strings and sequences are length-
//! prefixed. Every load path goes through [`SnapshotReader::parse`], which
//! verifies the magic, version, section framing, and per-section checksums
//! before any payload is interpreted — so truncation, torn writes, and bit
//! flips surface as a typed [`SnapshotError::Corrupt`], never as a panic or
//! a silently wrong solved form. Payload decoding via [`ByteReader`] is
//! equally defensive: out-of-range lengths, non-UTF-8 strings, non-boolean
//! booleans, and trailing bytes are all corruption errors.
//!
//! Durability is provided by [`write_atomic`]: the bytes are written to a
//! temporary file in the destination directory, fsynced, renamed over the
//! destination, and the directory is fsynced — a crash at any point leaves
//! either the old snapshot or the new one, never a torn mix.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

use crate::algebra::Algebra;

/// The 8-byte container magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RASCSNAP";

/// The container format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section tag: the annotation algebra's interned state (monoid table,
/// reachability vectors).
pub const TAG_ALGEBRA: [u8; 4] = *b"ALGB";

/// Section tag: the solver's solved form (constructors, entry logs,
/// union-find, constraints, clashes, counters, provenance).
pub const TAG_SOLVED: [u8; 4] = *b"SOLV";

/// Section tag: engine-level name tables (alphabet, constructor and
/// variable name→id maps) written by `rasc-inc`.
pub const TAG_ENGINE: [u8; 4] = *b"ENGN";

/// Why a snapshot could not be written or restored.
///
/// The taxonomy is the load-bearing part: callers (the batch protocol, the
/// server, the CLI) map [`SnapshotError::Io`] to the `io` error code and
/// everything else to `snapshot_corrupt`/`bad_request`, so a torn file is
/// always *diagnosed*, never mis-restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file or stream operation failed.
    Io(io::Error),
    /// The bytes are not a well-formed snapshot: bad magic, unsupported
    /// version, framing/checksum mismatch, or a payload that fails
    /// validation (out-of-range ids, non-UTF-8 names, …).
    Corrupt {
        /// What exactly was malformed.
        detail: String,
    },
    /// The in-memory state cannot be snapshotted or restored into (e.g.
    /// a pending worklist or an open epoch at snapshot time).
    State {
        /// Which precondition was violated.
        detail: String,
    },
}

impl SnapshotError {
    /// Builds a [`SnapshotError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Builds a [`SnapshotError::State`].
    pub fn state(detail: impl Into<String>) -> SnapshotError {
        SnapshotError::State {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            SnapshotError::State { detail } => write!(f, "snapshot state error: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit — small, dependency-free, and plenty to catch torn
/// writes and bit flips (this is an integrity check, not an authenticator).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian payload encoder for one snapshot section.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one strict `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a sequence length (as `u64`).
    pub fn seq_len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed slice of `u32`s.
    pub fn u32_seq(&mut self, xs: &[u32]) {
        self.seq_len(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed slice of `bool`s.
    pub fn bool_seq(&mut self, xs: &[bool]) {
        self.seq_len(xs.len());
        for &x in xs {
            self.bool(x);
        }
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Defensive little-endian payload decoder. Every read is bounds-checked
/// and every decoded value validated, so a corrupted payload produces a
/// [`SnapshotError::Corrupt`] instead of a panic or garbage.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over a raw payload.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::corrupt(format!(
                "unexpected end of payload (need {n} bytes, have {})",
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a strict boolean: any byte other than `0`/`1` is corruption.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::corrupt(format!(
                "invalid boolean byte {other}"
            ))),
        }
    }

    /// Reads a sequence length and sanity-checks it against the remaining
    /// payload (every sequence element occupies at least one byte, so a
    /// bit-flipped length can never trigger a huge allocation).
    pub fn seq_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| SnapshotError::corrupt(format!("sequence length {n} overflows usize")))?;
        if n > self.remaining() {
            return Err(SnapshotError::corrupt(format!(
                "sequence length {n} exceeds remaining payload ({})",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::corrupt("string is not valid UTF-8"))
    }

    /// Reads a length-prefixed sequence of `u32`s.
    pub fn u32_seq(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed sequence of `bool`s.
    pub fn bool_seq(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.bool()?);
        }
        Ok(out)
    }

    /// Asserts the payload was consumed exactly; trailing bytes mean the
    /// payload and its decoder disagree about the format.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Assembles a snapshot container from tagged sections.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty container.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Appends a section with the given 4-byte tag.
    pub fn section(&mut self, tag: [u8; 4], payload: ByteWriter) {
        self.sections.push((tag, payload.into_bytes()));
    }

    /// Serializes the container: magic, version, section count, then each
    /// section as tag + length + FNV-1a 64 checksum + payload.
    pub fn finish(self) -> Vec<u8> {
        let total: usize = self
            .sections
            .iter()
            .map(|(_, p)| p.len() + 20)
            .sum::<usize>()
            + 16;
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in self.sections {
            buf.extend_from_slice(&tag);
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        buf
    }
}

/// Parses and verifies a snapshot container before any payload is
/// interpreted: magic, version, section framing, and checksums.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses the container, verifying every section's framing and
    /// checksum. Truncated, torn, or bit-flipped bytes are rejected here
    /// with a [`SnapshotError::Corrupt`].
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::corrupt("bad magic (not a rasc snapshot)"));
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::corrupt(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let count = r.u32()?;
        let mut sections = Vec::new();
        for i in 0..count {
            let tag_bytes = r.take(4)?;
            let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
            let len = r.u64()?;
            let len = usize::try_from(len).map_err(|_| {
                SnapshotError::corrupt(format!("section {i} length {len} overflows usize"))
            })?;
            let checksum = r.u64()?;
            let payload = r.take(len).map_err(|_| {
                SnapshotError::corrupt(format!(
                    "section {} truncated (framed length {len}, {} bytes left)",
                    tag_name(tag),
                    bytes.len()
                ))
            })?;
            if fnv1a64(payload) != checksum {
                return Err(SnapshotError::corrupt(format!(
                    "section {} checksum mismatch",
                    tag_name(tag)
                )));
            }
            sections.push((tag, payload));
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::corrupt(format!(
                "{} trailing bytes after last section",
                r.remaining()
            )));
        }
        Ok(SnapshotReader { sections })
    }

    /// A decoder over the payload of the section with the given tag.
    pub fn section(&self, tag: [u8; 4]) -> Result<ByteReader<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| ByteReader::new(payload))
            .ok_or_else(|| SnapshotError::corrupt(format!("missing section {}", tag_name(tag))))
    }
}

fn tag_name(tag: [u8; 4]) -> String {
    String::from_utf8_lossy(&tag).into_owned()
}

/// An algebra that can serialize itself into a snapshot section and be
/// rebuilt from one. Restore validates structure (state counts, id ranges)
/// and reports problems as [`SnapshotError::Corrupt`].
pub trait SnapshotAlgebra: Algebra + Sized {
    /// Serializes the algebra's full interned state.
    fn snapshot_write(&self, w: &mut ByteWriter);
    /// Rebuilds the algebra from serialized state, validating as it goes.
    fn snapshot_read(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError>;
}

/// Atomically replaces `path` with `bytes`: write to a temporary file in
/// the same directory, fsync it, rename over `path`, fsync the directory.
/// A crash at any point leaves either the previous file or the complete
/// new one — never a torn mix (a leftover `.tmp` is ignored by loads).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let file_name = path.file_name().ok_or_else(|| {
        SnapshotError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("snapshot path {} has no file name", path.display()),
        ))
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = dir.join(tmp_name);
    let write = || -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        // Best-effort cleanup; the original error is what matters.
        let _ = fs::remove_file(&tmp);
        return Err(SnapshotError::Io(e));
    }
    // Make the rename itself durable. Directory fsync is advisory on some
    // platforms; failure here does not un-write the snapshot.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads a snapshot file whole. File-system problems (missing file,
/// permissions) surface as [`SnapshotError::Io`].
pub fn read_snapshot_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    fs::read(path).map_err(SnapshotError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_section() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(7);
        w.str("hello");
        w.bool_seq(&[true, false]);
        w.u32_seq(&[1, 2, 3]);
        let mut snap = SnapshotWriter::new();
        snap.section(*b"TEST", w);
        snap.finish()
    }

    #[test]
    fn container_round_trips() {
        let bytes = one_section();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let mut r = reader.section(*b"TEST").unwrap();
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bool_seq().unwrap(), vec![true, false]);
        assert_eq!(r.u32_seq().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = one_section();
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            assert!(
                matches!(
                    SnapshotReader::parse(truncated),
                    Err(SnapshotError::Corrupt { .. })
                ),
                "truncation at {cut} must be corrupt"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_in_payload_is_detected() {
        let bytes = one_section();
        // Flip each bit of the payload region (after the 36-byte header:
        // 16 container + 20 section header) — the checksum must catch it.
        for i in 36..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    matches!(
                        SnapshotReader::parse(&flipped),
                        Err(SnapshotError::Corrupt { .. })
                    ),
                    "payload bit flip at byte {i} bit {bit} must be corrupt"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = one_section();
        bytes[0] = b'X';
        assert!(SnapshotReader::parse(&bytes).is_err());
        let mut bytes = one_section();
        bytes[8] = 99;
        let err = SnapshotReader::parse(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn missing_section_and_trailing_bytes_are_corrupt() {
        let bytes = one_section();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        assert!(reader.section(*b"NOPE").is_err());
        let mut extended = one_section();
        extended.push(0);
        assert!(SnapshotReader::parse(&extended).is_err());
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        let mut w = ByteWriter::new();
        w.seq_len(usize::MAX / 2);
        let payload = w.into_bytes();
        let mut r = ByteReader::new(&payload);
        assert!(r.seq_len().is_err(), "length beyond payload rejected");
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("rasc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), b"two");
        assert!(matches!(
            read_snapshot_file(&dir.join("absent.snap")),
            Err(SnapshotError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
