//! Constructors and annotated ground terms.

use std::fmt;

use crate::algebra::AnnId;

/// An interned constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConsId(pub(crate) u32);

impl ConsId {
    /// Builds a constructor id from a raw index. The caller must ensure
    /// the index is valid for the system it will be used with.
    pub fn from_index(index: usize) -> ConsId {
        ConsId(crate::id_u32(index, "constructor index"))
    }

    /// The constructor's index within its system.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The variance of a constructor argument position.
///
/// The paper's applications use covariant constructors exclusively; we
/// support contravariant positions (as BANSHEE's Set sort does) for
/// ε-annotated constraints only — the paper does not define annotation
/// propagation through contravariant positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variance {
    /// Flow through this position preserves direction.
    #[default]
    Covariant,
    /// Flow through this position reverses direction.
    Contravariant,
}

/// A constructor declaration: name plus argument variances (the arity is
/// the signature's length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    pub(crate) name: String,
    pub(crate) signature: Vec<Variance>,
}

impl Constructor {
    /// The constructor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constructor's arity.
    pub fn arity(&self) -> usize {
        self.signature.len()
    }

    /// The variance of each argument position.
    pub fn signature(&self) -> &[Variance] {
        &self.signature
    }
}

/// An annotated ground term `c^f(t₁, …, t_k)` — an element of the paper's
/// domain `T^{M^sub}`, produced by the query phase (e.g. witness stacks and
/// least-solution enumeration).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundTerm {
    /// The root constructor.
    pub cons: ConsId,
    /// The root annotation (a representative-function class).
    pub ann: AnnId,
    /// Component terms.
    pub args: Vec<GroundTerm>,
}

impl GroundTerm {
    /// A constant (nullary) term.
    pub fn constant(cons: ConsId, ann: AnnId) -> GroundTerm {
        GroundTerm {
            cons,
            ann,
            args: Vec::new(),
        }
    }

    /// The term's depth (a constant has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(GroundTerm::depth).max().unwrap_or(0)
    }

    /// The number of constructor occurrences in the term.
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(GroundTerm::size).sum::<usize>()
    }
}

impl fmt::Display for GroundTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}^a{}", self.cons.0, self.ann.0)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_size() {
        let c = ConsId(0);
        let a = AnnId(0);
        let leaf = GroundTerm::constant(c, a);
        assert_eq!(leaf.depth(), 1);
        assert_eq!(leaf.size(), 1);
        let t = GroundTerm {
            cons: c,
            ann: a,
            args: vec![leaf.clone(), leaf],
        };
        assert_eq!(t.depth(), 2);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        let t = GroundTerm::constant(ConsId(1), AnnId(2));
        assert!(!format!("{t}").is_empty());
    }
}
