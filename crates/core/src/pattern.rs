//! The paper's general query form (§3.2): "whether a set of terms (given
//! by a set expression) intersected with a variable is non-empty, given
//! that the constructors must be annotated in certain states".
//!
//! A [`TermPattern`] describes a set of annotated ground terms —
//! constructor shape plus a per-node annotation predicate — and
//! [`System::matches_pattern`] decides whether a variable's least solution
//! intersects it. This is the query shape used to "search for the
//! existence of a term denoting an error in the program".

use std::collections::HashSet;

use crate::algebra::{Algebra, AnnId};
use crate::solver::{System, VarId};
use crate::term::ConsId;

/// A predicate on a term node's composed annotation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnnPred {
    /// Any annotation.
    Any,
    /// The class must represent full words of `L(M)` (`F_accept`, §3.2).
    Accepting,
    /// The class must be extendable to a word of `L(M)`
    /// ([`Algebra::is_useful`]).
    Useful,
    /// The class must *not* be accepting.
    Rejecting,
}

impl AnnPred {
    fn holds<A: Algebra>(self, alg: &A, a: AnnId) -> bool {
        match self {
            AnnPred::Any => true,
            AnnPred::Accepting => alg.is_accepting(a),
            AnnPred::Useful => alg.is_useful(a),
            AnnPred::Rejecting => !alg.is_accepting(a),
        }
    }
}

/// A pattern over annotated ground terms.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Dfa};
/// use rasc_core::algebra::MonoidAlgebra;
/// use rasc_core::{AnnPred, SetExpr, System, TermPattern};
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// let k = sigma.intern("k");
/// let mut sys = System::new(MonoidAlgebra::new(&Dfa::one_bit(&sigma, g, k)));
/// let c = sys.constructor("c", &[]);
/// let x = sys.var("X");
/// let fg = sys.algebra_mut().word(&[g]);
/// sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)?;
/// sys.solve();
/// // The §3.2 error-term query: is c in X with an accepting annotation?
/// assert!(sys.matches_pattern(x, &TermPattern::accepting_constant(c)));
/// assert!(!sys.matches_pattern(x, &TermPattern::Annotated(AnnPred::Rejecting)));
/// # Ok::<(), rasc_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermPattern {
    /// Matches any term (any constructor, any annotation, any components).
    Any,
    /// Matches terms rooted at `cons` whose composed annotation satisfies
    /// `ann` and whose components match `args` (which must have the
    /// constructor's arity).
    Cons {
        /// The required root constructor.
        cons: ConsId,
        /// Predicate on the root's composed annotation.
        ann: AnnPred,
        /// Component patterns.
        args: Vec<TermPattern>,
    },
    /// Matches any term whose composed annotation satisfies the predicate
    /// (constructor and components unconstrained, but components must be
    /// inhabited).
    Annotated(AnnPred),
}

impl TermPattern {
    /// A constant with an accepting annotation — the §3.2 error-term
    /// query for nullary `t`.
    pub fn accepting_constant(cons: ConsId) -> TermPattern {
        TermPattern::Cons {
            cons,
            ann: AnnPred::Accepting,
            args: Vec::new(),
        }
    }
}

impl<A: Algebra> System<A> {
    /// Whether the least solution of `x` contains a term matching
    /// `pattern` — the general entailment query of §3.2.
    ///
    /// Constructor annotations are the composed path classes (the
    /// query-time reconstruction of the §8 optimization): a node's
    /// annotation is `outer ∘ f` where `f` is the lower-bound entry's path
    /// class and `outer` the composition above it.
    pub fn matches_pattern(&mut self, x: VarId, pattern: &TermPattern) -> bool {
        let id = self.algebra().identity();
        let mut in_progress = HashSet::new();
        self.pattern_match(x, id, pattern, &mut in_progress)
    }

    fn pattern_match(
        &mut self,
        x: VarId,
        outer: AnnId,
        pattern: &TermPattern,
        in_progress: &mut HashSet<(VarId, AnnId, usize)>,
    ) -> bool {
        // Cycle guard: a (var, ann, pattern-identity) triple currently on
        // the stack cannot justify itself (least-fixpoint semantics).
        let key = (self.find(x), outer, pattern as *const _ as usize);
        if !in_progress.insert(key) {
            return false;
        }
        let result = self.pattern_match_inner(x, outer, pattern, in_progress);
        in_progress.remove(&key);
        result
    }

    fn pattern_match_inner(
        &mut self,
        x: VarId,
        outer: AnnId,
        pattern: &TermPattern,
        in_progress: &mut HashSet<(VarId, AnnId, usize)>,
    ) -> bool {
        let entries: Vec<(ConsId, Vec<VarId>, Vec<AnnId>)> = self
            .lbs_of(x)
            .map(|(s, anns)| (s.cons, s.args.clone(), anns.to_vec()))
            .collect();
        for (cons, args, anns) in entries {
            for f in anns {
                let total = self.algebra_mut().compose(outer, f);
                match pattern {
                    TermPattern::Any => {
                        if self.inhabited(&args, total, in_progress) {
                            return true;
                        }
                    }
                    TermPattern::Annotated(pred) => {
                        if pred.holds(self.algebra(), total)
                            && self.inhabited(&args, total, in_progress)
                        {
                            return true;
                        }
                    }
                    TermPattern::Cons {
                        cons: want,
                        ann,
                        args: arg_pats,
                    } => {
                        if cons != *want || !ann.holds(self.algebra(), total) {
                            continue;
                        }
                        // A pattern whose arity disagrees with the
                        // constructor's cannot describe any of its terms:
                        // no match (rather than a debug panic).
                        if arg_pats.len() != args.len() {
                            continue;
                        }
                        let all = args
                            .clone()
                            .into_iter()
                            .zip(arg_pats)
                            .all(|(a, p)| self.pattern_match(a, total, p, in_progress));
                        if all {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Whether all component variables are inhabited under `outer` (for
    /// wildcard patterns: the term must actually exist in the least
    /// solution).
    fn inhabited(
        &mut self,
        args: &[VarId],
        outer: AnnId,
        in_progress: &mut HashSet<(VarId, AnnId, usize)>,
    ) -> bool {
        args.iter()
            .all(|&a| self.pattern_match(a, outer, &TermPattern::Any, in_progress))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::MonoidAlgebra;
    use crate::{SetExpr, Variance};
    use rasc_automata::{Alphabet, Dfa};

    fn one_bit_system() -> (
        System<MonoidAlgebra>,
        rasc_automata::SymbolId,
        rasc_automata::SymbolId,
    ) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        let m = Dfa::one_bit(&sigma, g, k);
        (System::new(MonoidAlgebra::new(&m)), g, k)
    }

    #[test]
    fn accepting_constant_query() {
        let (mut sys, g, k) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let (x, y) = (sys.var("X"), sys.var("Y"));
        let fg = sys.algebra_mut().word(&[g]);
        let fk = sys.algebra_mut().word(&[k]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(y), fk)
            .unwrap();
        sys.solve();
        let pat = TermPattern::accepting_constant(c);
        assert!(sys.matches_pattern(x, &pat));
        assert!(!sys.matches_pattern(y, &pat));
        // But the k-annotated one matches a Rejecting query.
        let rej = TermPattern::Cons {
            cons: c,
            ann: AnnPred::Rejecting,
            args: vec![],
        };
        assert!(sys.matches_pattern(y, &rej));
    }

    #[test]
    fn structured_pattern_with_nested_predicates() {
        // Build o^?(c^g) and ask for o(anything-accepting) — the §3.2
        // "search for a term denoting an error" shape.
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let d = sys.constructor("d", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (a, b, x) = (sys.var("A"), sys.var("B"), sys.var("X"));
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
            .unwrap();
        sys.add(SetExpr::cons(d, []), SetExpr::var(b)).unwrap();
        sys.add(SetExpr::cons_vars(o, [a]), SetExpr::var(x))
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [b]), SetExpr::var(x))
            .unwrap();
        sys.solve();

        let err_inside = TermPattern::Cons {
            cons: o,
            ann: AnnPred::Any,
            args: vec![TermPattern::Annotated(AnnPred::Accepting)],
        };
        assert!(sys.matches_pattern(x, &err_inside), "o(c^g) matches");

        let d_inside = TermPattern::Cons {
            cons: o,
            ann: AnnPred::Any,
            args: vec![TermPattern::Cons {
                cons: d,
                ann: AnnPred::Accepting,
                args: vec![],
            }],
        };
        assert!(
            !sys.matches_pattern(x, &d_inside),
            "d's annotation is ε, not accepting"
        );
    }

    #[test]
    fn wildcard_requires_inhabited_components() {
        let (mut sys, _, _) = one_bit_system();
        let o = sys.constructor("o", &[Variance::Covariant]);
        let (empty, x) = (sys.var("E"), sys.var("X"));
        sys.add(SetExpr::cons_vars(o, [empty]), SetExpr::var(x))
            .unwrap();
        sys.solve();
        // o(E) with E empty: the least solution of X has no ground term.
        assert!(!sys.matches_pattern(x, &TermPattern::Any));
    }

    #[test]
    fn cyclic_structure_terminates() {
        let (mut sys, _, _) = one_bit_system();
        let o = sys.constructor("o", &[Variance::Covariant]);
        let x = sys.var("X");
        sys.add(SetExpr::cons_vars(o, [x]), SetExpr::var(x))
            .unwrap();
        sys.solve();
        // X ⊇ o(X): no finite term exists in the least solution.
        assert!(!sys.matches_pattern(x, &TermPattern::Any));
    }

    #[test]
    fn mixed_cycle_with_base_case_matches() {
        let (mut sys, g, _) = one_bit_system();
        let c = sys.constructor("c", &[]);
        let o = sys.constructor("o", &[Variance::Covariant]);
        let x = sys.var("X");
        let fg = sys.algebra_mut().word(&[g]);
        sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
            .unwrap();
        sys.add(SetExpr::cons_vars(o, [x]), SetExpr::var(x))
            .unwrap();
        sys.solve();
        // X ⊇ {c^g, o(c^g), o(o(c^g)), …}: plenty of terms.
        assert!(sys.matches_pattern(x, &TermPattern::Any));
        assert!(sys.matches_pattern(
            x,
            &TermPattern::Cons {
                cons: o,
                ann: AnnPred::Any,
                args: vec![TermPattern::Cons {
                    cons: o,
                    ann: AnnPred::Any,
                    args: vec![TermPattern::Annotated(AnnPred::Accepting)],
                }],
            }
        ));
    }
}
