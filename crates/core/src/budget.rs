//! Resource governance for bounded solving.
//!
//! A [`Budget`] caps a worklist drain along four independent axes — fuel
//! (worklist steps), wall-clock time (through an injectable [`Clock`], so
//! deadlines are deterministic under test), solved-form memory (term and
//! entry counts), and cooperative cancellation ([`CancelToken`]). The
//! solver checks the budget *before* popping each fact, so an interrupted
//! solve leaves the pending worklist intact: the caller can resume under a
//! fresh budget (converging to the same fixpoint — closure is monotone) or
//! roll back with [`crate::System::pop_epoch`] to the last consistent
//! snapshot.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A millisecond time source for deadline budgets.
///
/// Injectable so tests (and the devtools fault harness) can drive
/// deadlines deterministically; production callers use [`MonotonicClock`].
/// The solver consults the clock once per worklist step while a deadline
/// is set.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Milliseconds elapsed since an arbitrary fixed origin.
    fn now_millis(&self) -> u64;
}

/// The default [`Clock`]: milliseconds since the clock's creation, backed
/// by [`std::time::Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_millis(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A cooperative cancellation handle.
///
/// Clones share one flag; any clone may [`CancelToken::cancel`] (e.g. from
/// another thread handling a client disconnect) and the solver observes it
/// at the next worklist step.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a bounded solve stopped before reaching the fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The step (fuel) budget ran out.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
    /// The solved form outgrew the term or entry cap.
    Memory,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl InterruptReason {
    /// A stable machine-readable code (used by the batch protocol).
    pub fn code(self) -> &'static str {
        match self {
            InterruptReason::Steps => "steps",
            InterruptReason::Deadline => "deadline",
            InterruptReason::Memory => "memory",
            InterruptReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            InterruptReason::Steps => "step budget exhausted",
            InterruptReason::Deadline => "deadline exceeded",
            InterruptReason::Memory => "memory cap exceeded",
            InterruptReason::Cancelled => "cancelled",
        };
        f.write_str(msg)
    }
}

/// The result of a bounded solve ([`crate::System::solve_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The worklist drained to the fixpoint.
    Complete,
    /// The budget ran out first; the pending worklist is intact.
    Interrupted(InterruptReason),
}

impl Outcome {
    /// Whether the solve reached the fixpoint.
    pub fn is_complete(self) -> bool {
        matches!(self, Outcome::Complete)
    }
}

/// Resource limits for one bounded solve. All axes default to unlimited;
/// builder methods tighten them independently.
///
/// ```
/// use rasc_core::{Budget, CancelToken};
///
/// let token = CancelToken::new();
/// let budget = Budget::unlimited()
///     .with_steps(10_000)
///     .with_deadline_millis(50)
///     .with_max_entries(1_000_000)
///     .with_cancel(token.clone());
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_steps: Option<u64>,
    max_millis: Option<u64>,
    max_terms: Option<usize>,
    max_entries: Option<usize>,
    clock: Option<Arc<dyn Clock>>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no limits: `solve_bounded` behaves like `solve`.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps the number of worklist steps (fuel).
    pub fn with_steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets a wall-clock deadline, measured from the start of each bounded
    /// solve (a resumed solve gets a fresh window).
    pub fn with_deadline_millis(mut self, max_millis: u64) -> Budget {
        self.max_millis = Some(max_millis);
        self
    }

    /// Caps the number of interned terms (variables + sources + sinks).
    pub fn with_max_terms(mut self, max_terms: usize) -> Budget {
        self.max_terms = Some(max_terms);
        self
    }

    /// Caps the number of solved-form entries (annotated edges plus lower
    /// and upper bounds) — the solver's dominant memory dimension.
    pub fn with_max_entries(mut self, max_entries: usize) -> Budget {
        self.max_entries = Some(max_entries);
        self
    }

    /// Replaces the deadline time source (defaults to [`MonotonicClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Budget {
        self.clock = Some(clock);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Budget {
        self.cancel = Some(cancel);
        self
    }

    /// Whether no axis is limited (the clock alone does not count: it is
    /// only consulted when a deadline is set).
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.max_millis.is_none()
            && self.max_terms.is_none()
            && self.max_entries.is_none()
            && self.cancel.is_none()
    }

    /// The step cap, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The deadline in milliseconds, if any.
    pub fn max_millis(&self) -> Option<u64> {
        self.max_millis
    }

    /// The term cap, if any.
    pub fn max_terms(&self) -> Option<usize> {
        self.max_terms
    }

    /// The solved-form entry cap, if any.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Starts metering one bounded solve: snapshots the deadline and
    /// resets the step count.
    pub(crate) fn start(&self) -> BudgetMeter<'_> {
        let deadline = self.max_millis.map(|ms| {
            let clock: Arc<dyn Clock> = match &self.clock {
                Some(c) => Arc::clone(c),
                None => Arc::new(MonotonicClock::new()),
            };
            let at = clock.now_millis().saturating_add(ms);
            (clock, at)
        });
        BudgetMeter {
            budget: self,
            deadline,
            steps: 0,
        }
    }
}

/// Per-solve metering state for a [`Budget`].
pub(crate) struct BudgetMeter<'a> {
    budget: &'a Budget,
    /// `(clock, absolute deadline)` — present only when a deadline is set.
    deadline: Option<(Arc<dyn Clock>, u64)>,
    steps: u64,
}

impl BudgetMeter<'_> {
    /// Checks every axis against the current solver dimensions. Called
    /// before each worklist pop; `None` means "keep going".
    pub(crate) fn check(&self, terms: usize, entries: usize) -> Option<InterruptReason> {
        if let Some(cancel) = &self.budget.cancel {
            if cancel.is_cancelled() {
                return Some(InterruptReason::Cancelled);
            }
        }
        if let Some(max) = self.budget.max_steps {
            if self.steps >= max {
                return Some(InterruptReason::Steps);
            }
        }
        if let Some((clock, at)) = &self.deadline {
            if clock.now_millis() >= *at {
                return Some(InterruptReason::Deadline);
            }
        }
        if let Some(max) = self.budget.max_terms {
            if terms > max {
                return Some(InterruptReason::Memory);
            }
        }
        if let Some(max) = self.budget.max_entries {
            if entries > max {
                return Some(InterruptReason::Memory);
            }
        }
        None
    }

    /// Records one worklist step.
    pub(crate) fn step(&mut self) {
        self.steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct FixedClock(u64);
    impl Clock for FixedClock {
        fn now_millis(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        let meter = budget.start();
        assert_eq!(meter.check(usize::MAX, usize::MAX), None);
        assert!(budget.is_unlimited());
    }

    #[test]
    fn each_axis_trips_with_its_reason() {
        let b = Budget::unlimited().with_steps(2);
        let mut m = b.start();
        assert_eq!(m.check(0, 0), None);
        m.step();
        m.step();
        assert_eq!(m.check(0, 0), Some(InterruptReason::Steps));

        let b = Budget::unlimited()
            .with_deadline_millis(0)
            .with_clock(Arc::new(FixedClock(7)));
        assert_eq!(b.start().check(0, 0), Some(InterruptReason::Deadline));

        let b = Budget::unlimited().with_max_terms(10);
        assert_eq!(b.start().check(11, 0), Some(InterruptReason::Memory));
        assert_eq!(b.start().check(10, 0), None);

        let b = Budget::unlimited().with_max_entries(5);
        assert_eq!(b.start().check(0, 6), Some(InterruptReason::Memory));

        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert_eq!(b.start().check(0, 0), None);
        token.cancel();
        assert_eq!(b.start().check(0, 0), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn reason_codes_are_stable() {
        assert_eq!(InterruptReason::Steps.code(), "steps");
        assert_eq!(InterruptReason::Deadline.code(), "deadline");
        assert_eq!(InterruptReason::Memory.code(), "memory");
        assert_eq!(InterruptReason::Cancelled.code(), "cancelled");
        assert!(Outcome::Complete.is_complete());
        assert!(!Outcome::Interrupted(InterruptReason::Steps).is_complete());
    }
}
