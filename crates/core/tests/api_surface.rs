//! API-surface tests: error displays, statistics, term rendering — the
//! small contracts a library's users rely on.

use rasc_automata::{Alphabet, Dfa};
use rasc_core::algebra::{Algebra, GenKillAlgebra, MonoidAlgebra};
use rasc_core::{CoreError, GroundTerm, SetExpr, SolverConfig, System, Variance};

fn one_bit() -> (Alphabet, Dfa) {
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let dfa = Dfa::one_bit(&sigma, g, k);
    (sigma, dfa)
}

#[test]
fn error_displays_are_lowercase_and_informative() {
    let errors: Vec<CoreError> = vec![
        CoreError::ArityMismatch {
            constructor: "pair".to_owned(),
            expected: 2,
            found: 1,
        },
        CoreError::ProjectionOnRight,
        CoreError::ProjectionIndex {
            constructor: "pair".to_owned(),
            arity: 2,
            index: 5,
        },
        CoreError::ContravariantAnnotation {
            constructor: "fun".to_owned(),
            position: 0,
        },
        CoreError::ForeignId,
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(
            msg.chars().next().unwrap().is_lowercase(),
            "error messages start lowercase: {msg}"
        );
        assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        // std::error::Error is implemented.
        let _: &dyn std::error::Error = &e;
    }
}

#[test]
fn stats_reflect_solved_state() {
    let (sigma, dfa) = one_bit();
    let g = sigma.lookup("g").unwrap();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let c = sys.constructor("c", &[]);
    let (x, y) = (sys.var("X"), sys.var("Y"));
    let fg = sys.algebra_mut().word(&[g]);
    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(x), fg)
        .unwrap();
    sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
    sys.solve();
    let stats = sys.stats();
    assert_eq!(stats.vars, 2);
    assert_eq!(stats.constructors, 1);
    assert_eq!(stats.edges, 1);
    assert_eq!(stats.lower_bounds, 2, "c at X and at Y");
    assert!(stats.facts_processed >= 3);
    assert!(stats.annotations >= 3, "identity + generators");
    // Debug output is never empty (C-DEBUG-NONEMPTY).
    assert!(!format!("{stats:?}").is_empty());
}

#[test]
fn var_and_constructor_names_round_trip() {
    let (_, dfa) = one_bit();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let v = sys.var("my_var");
    let c = sys.constructor("my_cons", &[Variance::Covariant]);
    assert_eq!(sys.var_name(v), "my_var");
    let decl = sys.constructor_decl(c);
    assert_eq!(decl.name(), "my_cons");
    assert_eq!(decl.arity(), 1);
    assert_eq!(decl.signature(), &[Variance::Covariant]);
}

#[test]
fn ground_term_display_and_metrics() {
    let (sigma, dfa) = one_bit();
    let g = sigma.lookup("g").unwrap();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let c = sys.constructor("c", &[]);
    let o = sys.constructor("o", &[Variance::Covariant]);
    let (a, x) = (sys.var("A"), sys.var("X"));
    let fg = sys.algebra_mut().word(&[g]);
    sys.add_ann(SetExpr::cons(c, []), SetExpr::var(a), fg)
        .unwrap();
    sys.add(SetExpr::cons_vars(o, [a]), SetExpr::var(x))
        .unwrap();
    sys.solve();
    let terms = sys.ground_terms(x, 3, 8);
    assert!(!terms.is_empty());
    for t in &terms {
        assert_eq!(t.depth(), 2);
        assert_eq!(t.size(), 2);
        let rendered = format!("{t}");
        assert!(
            rendered.contains('('),
            "compound term renders args: {rendered}"
        );
    }
    let constant = GroundTerm::constant(c, terms[0].ann);
    assert_eq!(constant.depth(), 1);
}

#[test]
fn clash_reporting_deduplicates() {
    let (_, dfa) = one_bit();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let c = sys.constructor("c", &[]);
    let d = sys.constructor("d", &[]);
    let (x, y) = (sys.var("X"), sys.var("Y"));
    sys.add(SetExpr::cons(c, []), SetExpr::var(x)).unwrap();
    sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
    // The same mismatched pair meets twice (directly and via Y).
    sys.add(SetExpr::var(x), SetExpr::cons(d, [])).unwrap();
    sys.add(SetExpr::var(y), SetExpr::cons(d, [])).unwrap();
    sys.solve();
    assert!(!sys.is_consistent());
    // Identical clashes (same constructors, same class) are reported once.
    let unique: std::collections::HashSet<_> = sys.clashes().iter().collect();
    assert_eq!(unique.len(), sys.clashes().len());
}

#[test]
fn config_accessors_and_defaults() {
    let config = SolverConfig::default();
    assert!(config.cycle_elimination);
    assert!(config.projection_merging);
    assert!(config.cycle_search_depth > 0);
}

#[test]
fn genkill_describe_is_never_empty() {
    let mut alg = GenKillAlgebra::new(4);
    let t = alg.transfer(0b0101, 0b1010);
    assert!(!alg.describe(t).is_empty());
    assert!(!alg.describe(alg.identity()).is_empty());
    assert_eq!(alg.bits(), 4);
}

#[test]
fn constraints_are_recorded_in_order() {
    let (_, dfa) = one_bit();
    let mut sys = System::new(MonoidAlgebra::new(&dfa));
    let (x, y, z) = (sys.var("X"), sys.var("Y"), sys.var("Z"));
    sys.add(SetExpr::var(x), SetExpr::var(y)).unwrap();
    sys.add(SetExpr::var(y), SetExpr::var(z)).unwrap();
    assert_eq!(sys.num_constraints(), 2);
    assert_eq!(sys.constraint(0).unwrap().lhs, SetExpr::var(x));
    assert_eq!(sys.constraint(1).unwrap().rhs, SetExpr::var(z));
}
