//! API-surface tests for the automata crate: error displays, id types,
//! and cross-module integration (spec → DFA → closures → monoid).

use rasc_automata::closure::{prefix_closure, substring_closure, suffix_closure};
use rasc_automata::{
    adversarial_machine, Alphabet, AutomataError, Dfa, Monoid, PropertySpec, Regex, StateId,
    SymbolId,
};

#[test]
fn error_displays_are_informative() {
    let errors = vec![
        AutomataError::ParseRegex {
            message: "oops".to_owned(),
            offset: 3,
        },
        AutomataError::ParseSpec {
            message: "oops".to_owned(),
            line: 7,
        },
        AutomataError::UnknownSymbol("zz".to_owned()),
        AutomataError::UnknownState("Qx".to_owned()),
        AutomataError::NondeterministicSpec {
            state: "A".to_owned(),
            symbol: "x".to_owned(),
        },
        AutomataError::MissingStartState,
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        let _: &dyn std::error::Error = &e;
    }
    // Errors carry their positions.
    let err = Regex::parse("(", &Alphabet::from_names(["a"])).unwrap_err();
    assert!(matches!(err, AutomataError::ParseRegex { .. }));
}

#[test]
fn id_types_round_trip_indices() {
    assert_eq!(SymbolId::from_index(7).index(), 7);
    assert_eq!(StateId::from_index(9).index(), 9);
    assert_eq!(rasc_automata::FnId::from_index(4).index(), 4);
    // SymbolId displays non-emptily.
    assert!(!format!("{}", SymbolId::from_index(0)).is_empty());
}

#[test]
fn spec_to_machine_to_monoid_pipeline() {
    let spec = PropertySpec::parse(
        "start state A : | go -> B;\n\
         accept state B : | back -> A;",
    )
    .unwrap();
    let (sigma, dfa) = spec.compile();
    // Closures of the property language behave sensibly.
    let go = sigma.lookup("go").unwrap();
    let back = sigma.lookup("back").unwrap();
    assert!(dfa.accepts(&[go]));
    assert!(dfa.accepts(&[go, back, go]));
    let pre = prefix_closure(&dfa);
    assert!(pre.accepts(&[]));
    assert!(pre.accepts(&[go, back]));
    let suf = suffix_closure(&dfa);
    assert!(suf.accepts(&[back, go]));
    let sub = substring_closure(&dfa);
    assert!(sub.accepts(&[back]));
    // Monoid of the minimized machine: {ε, go, back, go·back, back·go}?
    // go·go is dead; the count just has to be finite and small.
    let monoid = Monoid::of_dfa(&dfa.minimize());
    assert!(monoid.len() <= 8, "got {}", monoid.len());
}

#[test]
fn equivalence_of_independent_constructions() {
    // (a|b)* a built two ways: regex, and by hand.
    let sigma = Alphabet::from_names(["a", "b"]);
    let a = sigma.lookup("a").unwrap();
    let b = sigma.lookup("b").unwrap();
    let from_regex = Regex::parse("(a | b)* a", &sigma).unwrap().compile(&sigma);
    let mut by_hand = Dfa::new(sigma.len());
    let s0 = by_hand.add_state(false);
    let s1 = by_hand.add_state(true);
    by_hand.set_start(s0);
    by_hand.set_transition(s0, a, s1);
    by_hand.set_transition(s0, b, s0);
    by_hand.set_transition(s1, a, s1);
    by_hand.set_transition(s1, b, s0);
    assert!(from_regex.equivalent(&by_hand));
    assert_eq!(from_regex.len(), by_hand.minimize().len());
}

#[test]
fn monoid_forward_class_tracks_runs_on_adversarial_machines() {
    let (sigma, machine) = adversarial_machine(4);
    let mut monoid = Monoid::lazy_of_dfa(&machine);
    let rotate = sigma.lookup("rotate").unwrap();
    let swap = sigma.lookup("swap").unwrap();
    let merge = sigma.lookup("merge").unwrap();
    for word in [
        vec![rotate, rotate, swap],
        vec![merge, rotate, merge],
        vec![swap, swap],
        vec![],
    ] {
        let f = monoid.of_word(&word);
        let by_run = machine.run_from(machine.start().unwrap(), &word).unwrap();
        assert_eq!(monoid.forward_class(f), by_run, "{word:?}");
    }
}

#[test]
fn alphabets_compare_and_clone() {
    let a1 = Alphabet::from_names(["x", "y"]);
    let a2 = a1.clone();
    assert_eq!(a1, a2);
    assert_ne!(a1, Alphabet::from_names(["x"]));
    assert!(!a1.is_empty());
}
