//! The annotation specification language of the paper's §8.
//!
//! Property automata are written in an ML-pattern-matching-like syntax:
//!
//! ```text
//! start state Unpriv :
//!     | seteuid_zero -> Priv;
//!
//! state Priv :
//!     | seteuid_nonzero -> Unpriv
//!     | execl -> Error;
//!
//! accept state Error;
//! ```
//!
//! Symbols not mentioned in a state's arms self-loop (they are irrelevant to
//! the property at that state), matching the MOPS convention. Symbols may be
//! *parametric* (§6.4), e.g. `open(x)`; the base automaton treats `open(x)`
//! as the plain symbol `open` — instantiation is handled by the substitution
//! environments in `rasc-core`.

use std::collections::{HashMap, HashSet};

use crate::alphabet::Alphabet;
use crate::dfa::{Dfa, StateId};
use crate::error::{AutomataError, Result};

/// A (possibly parametric) symbol occurrence in a specification, such as
/// `execl` or `open(x)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamSymbol {
    /// The symbol name (`open`).
    pub name: String,
    /// Parameter variables (`["x"]`), empty for plain symbols.
    pub params: Vec<String>,
}

/// A single transition arm `| sym -> Target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecArm {
    /// Source state name.
    pub from: String,
    /// The triggering symbol.
    pub symbol: ParamSymbol,
    /// Target state name.
    pub to: String,
}

/// A parsed property specification: a deterministic automaton over named
/// events, with self-loop defaults.
///
/// # Example
///
/// ```
/// use rasc_automata::PropertySpec;
///
/// let spec = PropertySpec::parse(
///     "start state Unpriv : | seteuid_zero -> Priv;\n\
///      state Priv : | seteuid_nonzero -> Unpriv | execl -> Error;\n\
///      accept state Error;",
/// )?;
/// let (sigma, dfa) = spec.compile();
/// let zero = sigma.lookup("seteuid_zero").unwrap();
/// let execl = sigma.lookup("execl").unwrap();
/// // acquiring privilege then exec-ing is a violation (accepted)
/// assert!(dfa.accepts(&[zero, execl]));
/// let nonzero = sigma.lookup("seteuid_nonzero").unwrap();
/// // dropping privilege first is fine (not accepted)
/// assert!(!dfa.accepts(&[zero, nonzero, execl]));
/// # Ok::<(), rasc_automata::AutomataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertySpec {
    states: Vec<String>,
    start: usize,
    accepting: Vec<bool>,
    arms: Vec<SpecArm>,
}

impl PropertySpec {
    /// Parses a specification.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed syntax, a
    /// [`AutomataError::MissingStartState`] if no state is marked `start`,
    /// [`AutomataError::UnknownState`] if an arm targets an undeclared
    /// state, and [`AutomataError::NondeterministicSpec`] if a state has
    /// two arms on the same symbol with different targets.
    pub fn parse(input: &str) -> Result<PropertySpec> {
        Parser::new(input).parse()
    }

    /// All state names, in declaration order.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// The start state's name.
    pub fn start_state(&self) -> &str {
        &self.states[self.start]
    }

    /// Whether the named state is accepting.
    pub fn is_accepting(&self, state: &str) -> bool {
        self.states
            .iter()
            .position(|s| s == state)
            .is_some_and(|i| self.accepting[i])
    }

    /// All transition arms.
    pub fn arms(&self) -> &[SpecArm] {
        &self.arms
    }

    /// Whether any symbol is parametric.
    pub fn is_parametric(&self) -> bool {
        self.arms.iter().any(|a| !a.symbol.params.is_empty())
    }

    /// The parameter variables of each distinct symbol, keyed by name.
    ///
    /// A symbol must be used with a consistent arity; this is checked at
    /// parse time.
    pub fn symbol_params(&self) -> HashMap<&str, &[String]> {
        let mut out: HashMap<&str, &[String]> = HashMap::new();
        for arm in &self.arms {
            out.entry(&arm.symbol.name)
                .or_insert(arm.symbol.params.as_slice());
        }
        out
    }

    /// Compiles the spec to its alphabet and deterministic automaton.
    ///
    /// Symbols without an arm at a given state self-loop. The resulting
    /// machine is **not** minimized: the solver needs the spec's state
    /// identities for diagnostics; minimize explicitly if required.
    pub fn compile(&self) -> (Alphabet, Dfa) {
        let mut sigma = Alphabet::new();
        for arm in &self.arms {
            sigma.intern(&arm.symbol.name);
        }
        let dfa = match self.compile_over(&sigma) {
            Ok(dfa) => dfa,
            Err(_) => unreachable!("every spec symbol was interned just above"),
        };
        (sigma, dfa)
    }

    /// Compiles the spec over a *larger* alphabet. Symbols foreign to the
    /// spec self-loop everywhere, so several properties can share an
    /// alphabet and be combined with [`Dfa::product_by`] — the §2.2
    /// product of all regular properties.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownSymbol`] if one of this spec's
    /// symbols has not been interned into `sigma`.
    pub fn compile_over(&self, sigma: &Alphabet) -> Result<Dfa> {
        let mut dfa = Dfa::new(sigma.len());
        let ids: Vec<StateId> = self
            .accepting
            .iter()
            .map(|&acc| dfa.add_state(acc))
            .collect();
        dfa.set_start(ids[self.start]);
        // Default: self-loops everywhere.
        for (i, &s) in ids.iter().enumerate() {
            let _ = i;
            for sym in sigma.symbols() {
                dfa.set_transition(s, sym, s);
            }
        }
        // Declared arms overwrite the defaults.
        for arm in &self.arms {
            let from =
                crate::invariant(self.state_index(&arm.from), "arm states validated at parse");
            let to = crate::invariant(self.state_index(&arm.to), "arm states validated at parse");
            let sym = sigma
                .lookup(&arm.symbol.name)
                .ok_or_else(|| AutomataError::UnknownSymbol(arm.symbol.name.clone()))?;
            dfa.set_transition(ids[from], sym, ids[to]);
        }
        Ok(dfa)
    }

    fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }
}

impl std::fmt::Display for PropertySpec {
    /// Renders the specification back to the §8 surface syntax; parsing
    /// the output reproduces the specification exactly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, state) in self.states.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            if i == self.start {
                write!(f, "start ")?;
            }
            if self.accepting[i] {
                write!(f, "accept ")?;
            }
            write!(f, "state {state}")?;
            let arms: Vec<&SpecArm> = self.arms.iter().filter(|a| a.from == *state).collect();
            if arms.is_empty() {
                writeln!(f, ";")?;
            } else {
                writeln!(f, " :")?;
                for (k, arm) in arms.iter().enumerate() {
                    let params = if arm.symbol.params.is_empty() {
                        String::new()
                    } else {
                        format!("({})", arm.symbol.params.join(", "))
                    };
                    let terminator = if k + 1 == arms.len() { ";" } else { "" };
                    writeln!(
                        f,
                        "    | {}{} -> {}{}",
                        arm.symbol.name, params, arm.to, terminator
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Colon,
    Semi,
    Pipe,
    Arrow,
    LParen,
    RParen,
    Comma,
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Parser {
        Parser {
            tokens: lex(input),
            pos: 0,
        }
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> AutomataError {
        AutomataError::ParseSpec {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse(mut self) -> Result<PropertySpec> {
        let mut states: Vec<String> = Vec::new();
        let mut state_names: HashSet<String> = HashSet::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut start: Option<usize> = None;
        let mut arms: Vec<SpecArm> = Vec::new();
        let mut arities: HashMap<String, usize> = HashMap::new();

        while self.peek().is_some() {
            let mut is_start = false;
            let mut is_accept = false;
            loop {
                match self.peek() {
                    Some(Tok::Ident(kw)) if kw == "start" => {
                        is_start = true;
                        self.pos += 1;
                    }
                    Some(Tok::Ident(kw)) if kw == "accept" => {
                        is_accept = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let kw = self.ident("`state`")?;
            if kw != "state" {
                return Err(self.err(format!("expected `state`, found `{kw}`")));
            }
            let name = self.ident("state name")?;
            if !state_names.insert(name.clone()) {
                return Err(self.err(format!("state `{name}` declared twice")));
            }
            let idx = states.len();
            states.push(name.clone());
            accepting.push(is_accept);
            if is_start {
                if start.is_some() {
                    return Err(self.err("multiple start states"));
                }
                start = Some(idx);
            }

            match self.peek() {
                Some(Tok::Semi) => {
                    self.pos += 1;
                }
                Some(Tok::Colon) => {
                    self.pos += 1;
                    // arm+ then `;`
                    while self.peek() == Some(&Tok::Pipe) {
                        self.pos += 1;
                        let symbol = self.param_symbol(&mut arities)?;
                        self.expect(&Tok::Arrow, "`->`")?;
                        let to = self.ident("target state name")?;
                        arms.push(SpecArm {
                            from: name.clone(),
                            symbol,
                            to,
                        });
                    }
                    self.expect(&Tok::Semi, "`;`")?;
                }
                other => {
                    return Err(self.err(format!("expected `:` or `;`, found {other:?}")));
                }
            }
        }

        let start = start.ok_or(AutomataError::MissingStartState)?;

        // Validate targets and determinism.
        let mut seen: HashMap<(String, String), String> = HashMap::new();
        for arm in &arms {
            if !state_names.contains(&arm.to) {
                return Err(AutomataError::UnknownState(arm.to.clone()));
            }
            let key = (arm.from.clone(), arm.symbol.name.clone());
            if let Some(prev) = seen.get(&key) {
                if prev != &arm.to {
                    return Err(AutomataError::NondeterministicSpec {
                        state: arm.from.clone(),
                        symbol: arm.symbol.name.clone(),
                    });
                }
            }
            seen.insert(key, arm.to.clone());
        }

        Ok(PropertySpec {
            states,
            start,
            accepting,
            arms,
        })
    }

    fn param_symbol(&mut self, arities: &mut HashMap<String, usize>) -> Result<ParamSymbol> {
        let name = self.ident("symbol name")?;
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                params.push(self.ident("parameter name")?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
                }
            }
        }
        match arities.get(&name) {
            Some(&arity) if arity != params.len() => {
                return Err(self.err(format!(
                    "symbol `{name}` used with {} parameter(s) but previously {arity}",
                    params.len()
                )));
            }
            _ => {
                arities.insert(name.clone(), params.len());
            }
        }
        Ok(ParamSymbol { name, params })
    }
}

fn lex(input: &str) -> Vec<(Tok, usize)> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ':' => {
                tokens.push((Tok::Colon, line));
                i += 1;
            }
            ';' => {
                tokens.push((Tok::Semi, line));
                i += 1;
            }
            '|' => {
                tokens.push((Tok::Pipe, line));
                i += 1;
            }
            '(' => {
                tokens.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                tokens.push((Tok::RParen, line));
                i += 1;
            }
            ',' => {
                tokens.push((Tok::Comma, line));
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push((Tok::Arrow, line));
                i += 2;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Tok::Ident(input[start..i].to_owned()), line));
            }
            _ => {
                // Emit an ident the parser will reject with position info.
                tokens.push((Tok::Ident(format!("<invalid {c:?}>")), line));
                i += 1;
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRIVILEGE: &str = "\
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;";

    #[test]
    fn parses_the_papers_privilege_property() {
        let spec = PropertySpec::parse(PRIVILEGE).unwrap();
        assert_eq!(spec.states(), ["Unpriv", "Priv", "Error"]);
        assert_eq!(spec.start_state(), "Unpriv");
        assert!(spec.is_accepting("Error"));
        assert!(!spec.is_accepting("Priv"));
        assert_eq!(spec.arms().len(), 3);
        assert!(!spec.is_parametric());
    }

    #[test]
    fn compiled_machine_matches_figure_3() {
        let spec = PropertySpec::parse(PRIVILEGE).unwrap();
        let (sigma, dfa) = spec.compile();
        let zero = sigma.lookup("seteuid_zero").unwrap();
        let nonzero = sigma.lookup("seteuid_nonzero").unwrap();
        let execl = sigma.lookup("execl").unwrap();
        assert!(dfa.accepts(&[zero, execl]), "priv + exec = violation");
        assert!(!dfa.accepts(&[zero, nonzero, execl]), "dropped privs: ok");
        assert!(!dfa.accepts(&[execl]), "exec unprivileged: ok");
        assert!(
            dfa.accepts(&[zero, execl, nonzero]),
            "error state is a trap (self-loops)"
        );
    }

    #[test]
    fn parametric_symbols() {
        let spec = PropertySpec::parse(
            "start state Closed : | open(x) -> Opened;\n\
             accept state Opened : | close(x) -> Closed;",
        )
        .unwrap();
        assert!(spec.is_parametric());
        let params = spec.symbol_params();
        assert_eq!(params["open"], ["x".to_owned()]);
    }

    #[test]
    fn missing_start_state_is_an_error() {
        let err = PropertySpec::parse("state A; accept state B;").unwrap_err();
        assert_eq!(err, AutomataError::MissingStartState);
    }

    #[test]
    fn unknown_target_is_an_error() {
        let err = PropertySpec::parse("start state A : | x -> Nowhere;").unwrap_err();
        assert_eq!(err, AutomataError::UnknownState("Nowhere".to_owned()));
    }

    #[test]
    fn duplicate_conflicting_transition_is_an_error() {
        let err = PropertySpec::parse("start state A : | x -> B | x -> C; state B; state C;")
            .unwrap_err();
        assert!(matches!(err, AutomataError::NondeterministicSpec { .. }));
    }

    #[test]
    fn inconsistent_arity_is_an_error() {
        let err = PropertySpec::parse("start state A : | open(x) -> B; state B : | open -> A;")
            .unwrap_err();
        assert!(matches!(err, AutomataError::ParseSpec { .. }));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            PRIVILEGE,
            "start state Closed : | open(x) -> Opened;\naccept state Opened : | close(x) -> Closed;",
            "start accept state Lone;",
        ] {
            let spec = PropertySpec::parse(text).unwrap();
            let printed = spec.to_string();
            let reparsed = PropertySpec::parse(&printed)
                .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
            assert_eq!(spec, reparsed, "printed:\n{printed}");
        }
    }

    #[test]
    fn comments_and_duplicate_states_handled() {
        let spec = PropertySpec::parse("# a comment\nstart accept state A;").unwrap();
        assert!(spec.is_accepting("A"));
        let err = PropertySpec::parse("start state A; state A;").unwrap_err();
        assert!(matches!(err, AutomataError::ParseSpec { .. }));
    }
}
