//! Deterministic finite automata: completion, minimization, products.

use std::collections::{HashMap, VecDeque};

use crate::alphabet::{Alphabet, SymbolId};
use crate::nfa::Nfa;

/// A state of a [`Dfa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Builds a state id from a raw index. The caller must ensure the
    /// index is valid for the automaton it will be used with.
    pub fn from_index(index: usize) -> StateId {
        StateId(crate::id_u32(index, "DFA states"))
    }

    /// The state's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NO_STATE: u32 = u32::MAX;

/// A deterministic finite automaton over an interned alphabet.
///
/// States are dense indices; transitions are stored in a flat
/// `states × symbols` table. A DFA may be *partial* while being built;
/// [`Dfa::complete`] adds a dead state so every `(state, symbol)` pair is
/// defined, which the transition-monoid construction requires (representative
/// functions must be total).
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Dfa};
///
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("a");
/// let mut dfa = Dfa::new(sigma.len());
/// let s0 = dfa.add_state(false);
/// let s1 = dfa.add_state(true);
/// dfa.set_start(s0);
/// dfa.set_transition(s0, a, s1);
/// dfa.set_transition(s1, a, s0);
/// // L = a(aa)*
/// assert!(dfa.accepts(&[a]));
/// assert!(!dfa.accepts(&[a, a]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet_len: usize,
    /// Flat `state * alphabet_len + symbol` table; `NO_STATE` = undefined.
    trans: Vec<u32>,
    accepting: Vec<bool>,
    start: Option<StateId>,
}

impl Dfa {
    /// Creates an empty DFA over an alphabet with `alphabet_len` symbols.
    pub fn new(alphabet_len: usize) -> Self {
        Dfa {
            alphabet_len,
            trans: Vec::new(),
            accepting: Vec::new(),
            start: None,
        }
    }

    /// The paper's Figure 1: the minimal DFA for the 1-bit gen/kill
    /// language (`g` generates a fact, `k` kills it; a word is accepted iff
    /// the fact holds afterwards).
    ///
    /// State 0 = fact absent (start), state 1 = fact present (accepting).
    pub fn one_bit(alphabet: &Alphabet, gen: SymbolId, kill: SymbolId) -> Self {
        let mut dfa = Dfa::new(alphabet.len());
        let s0 = dfa.add_state(false);
        let s1 = dfa.add_state(true);
        dfa.set_start(s0);
        dfa.set_transition(s0, gen, s1);
        dfa.set_transition(s0, kill, s0);
        dfa.set_transition(s1, gen, s1);
        dfa.set_transition(s1, kill, s0);
        // Symbols other than gen/kill (if any) self-loop: they are
        // irrelevant to this fact.
        for sym in alphabet.symbols() {
            if sym != gen && sym != kill {
                dfa.set_transition(s0, sym, s0);
                dfa.set_transition(s1, sym, s1);
            }
        }
        dfa
    }

    /// Number of symbols in the alphabet this DFA ranges over.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Adds a fresh state with the given acceptance.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = StateId(crate::id_u32(self.accepting.len(), "DFA states"));
        self.accepting.push(accepting);
        self.trans
            .extend(std::iter::repeat_n(NO_STATE, self.alphabet_len));
        id
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepting.len()
    }

    /// Whether the DFA has no states.
    pub fn is_empty(&self) -> bool {
        self.accepting.is_empty()
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = Some(s);
    }

    /// The start state, if set.
    pub fn start(&self) -> Option<StateId> {
        self.start
    }

    /// Marks or unmarks `s` as accepting.
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) {
        self.accepting[s.index()] = accepting;
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s.index()]
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.len() as u32).map(StateId)
    }

    /// Sets `δ(from, sym) = to`, overwriting any previous target.
    pub fn set_transition(&mut self, from: StateId, sym: SymbolId, to: StateId) {
        debug_assert!(sym.index() < self.alphabet_len, "symbol outside alphabet");
        self.trans[from.index() * self.alphabet_len + sym.index()] = to.0;
    }

    /// `δ(from, sym)`, or `None` if undefined (partial DFA).
    pub fn delta(&self, from: StateId, sym: SymbolId) -> Option<StateId> {
        let raw = self.trans[from.index() * self.alphabet_len + sym.index()];
        (raw != NO_STATE).then_some(StateId(raw))
    }

    /// Runs the DFA on `word` from `from`, returning the final state, or
    /// `None` if a transition is undefined.
    pub fn run_from(&self, from: StateId, word: &[SymbolId]) -> Option<StateId> {
        word.iter().try_fold(from, |s, &sym| self.delta(s, sym))
    }

    /// Whether the DFA accepts `word` (from the start state).
    pub fn accepts(&self, word: &[SymbolId]) -> bool {
        let Some(start) = self.start else {
            return false;
        };
        self.run_from(start, word)
            .is_some_and(|s| self.is_accepting(s))
    }

    /// Whether every `(state, symbol)` transition is defined.
    pub fn is_complete(&self) -> bool {
        self.trans.iter().all(|&t| t != NO_STATE)
    }

    /// Returns a complete DFA accepting the same language, adding a
    /// non-accepting dead state if any transition is undefined.
    pub fn complete(&self) -> Dfa {
        if self.is_complete() {
            return self.clone();
        }
        let mut dfa = self.clone();
        let dead = dfa.add_state(false);
        for i in 0..dfa.trans.len() {
            if dfa.trans[i] == NO_STATE {
                dfa.trans[i] = dead.0;
            }
        }
        dfa
    }

    /// States reachable from the start state.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        if let Some(s) = self.start {
            seen[s.index()] = true;
            queue.push_back(s);
        }
        while let Some(s) = queue.pop_front() {
            for sym_idx in 0..self.alphabet_len {
                if let Some(t) = self.delta(s, SymbolId(sym_idx as u32)) {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// States from which an accepting state is reachable.
    pub(crate) fn coreachable(&self) -> Vec<bool> {
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.len()];
        for s in self.states() {
            for sym_idx in 0..self.alphabet_len {
                if let Some(t) = self.delta(s, SymbolId(sym_idx as u32)) {
                    rev[t.index()].push(s);
                }
            }
        }
        let mut seen = vec![false; self.len()];
        let mut queue: VecDeque<StateId> = self
            .states()
            .filter(|&s| self.is_accepting(s))
            .inspect(|s| seen[s.index()] = true)
            .collect();
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s.index()] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// The canonical minimal complete DFA for this DFA's language
    /// (Hopcroft's partition-refinement algorithm on the completed,
    /// reachable part).
    ///
    /// The paper requires the input machine to be *minimized* — both
    /// Theorem 2.1's proof and the "no `match` operation needed" argument in
    /// §3.1 rely on it.
    pub fn minimize(&self) -> Dfa {
        let _span = rasc_obs::span("automata.minimize");
        let complete = self.complete();
        let reach = complete.reachable();
        // Map reachable states to dense indices.
        let mut dense: Vec<usize> = Vec::new();
        let mut dense_of: Vec<Option<usize>> = vec![None; complete.len()];
        for s in complete.states() {
            if reach[s.index()] {
                dense_of[s.index()] = Some(dense.len());
                dense.push(s.index());
            }
        }
        let n = dense.len();
        if n == 0 {
            // Empty language, no start: single dead state.
            let mut dfa = Dfa::new(self.alphabet_len);
            let d = dfa.add_state(false);
            dfa.set_start(d);
            for sym_idx in 0..self.alphabet_len {
                dfa.set_transition(d, SymbolId(sym_idx as u32), d);
            }
            return dfa;
        }

        // Hopcroft: partition into accepting / non-accepting blocks.
        // block[i] = block id of dense state i.
        let mut block: Vec<usize> = (0..n)
            .map(|i| usize::from(complete.is_accepting(StateId(dense[i] as u32))))
            .collect();
        let accepting_count = block.iter().filter(|&&b| b == 1).count();
        let mut nblocks = if accepting_count > 0 && accepting_count < n {
            2
        } else {
            1
        };
        if nblocks == 1 {
            // All states in one class; normalize block ids to 0.
            block.fill(0);
        }

        // Precompute reverse edges on dense states: rev[sym][t] = sources.
        let mut rev: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; self.alphabet_len.max(1)];
        #[allow(clippy::needless_range_loop)] // sym_idx is a symbol id
        for (i, &orig) in dense.iter().enumerate() {
            for sym_idx in 0..self.alphabet_len {
                let t = crate::invariant(
                    complete.delta(StateId(orig as u32), SymbolId(sym_idx as u32)),
                    "complete DFA defines every transition",
                );
                if let Some(td) = dense_of[t.index()] {
                    rev[sym_idx][td].push(i);
                }
            }
        }

        // Worklist of (block, symbol) splitters.
        let mut worklist: VecDeque<(usize, usize)> = VecDeque::new();
        for sym_idx in 0..self.alphabet_len {
            for b in 0..nblocks {
                worklist.push_back((b, sym_idx));
            }
        }

        while let Some((splitter, sym_idx)) = worklist.pop_front() {
            // X = states with a `sym` transition into block `splitter`.
            let mut x: Vec<usize> = Vec::new();
            for t in 0..n {
                if block[t] == splitter {
                    x.extend_from_slice(&rev[sym_idx][t]);
                }
            }
            if x.is_empty() {
                continue;
            }
            let mut in_x = vec![false; n];
            for &s in &x {
                in_x[s] = true;
            }
            // For each block intersecting X but not contained in X, split.
            let mut members: HashMap<usize, (Vec<usize>, Vec<usize>)> = HashMap::new();
            for s in 0..n {
                let entry = members.entry(block[s]).or_default();
                if in_x[s] {
                    entry.0.push(s);
                } else {
                    entry.1.push(s);
                }
            }
            for (b, (inside, outside)) in members {
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Move the smaller half into a fresh block.
                let new_block = nblocks;
                nblocks += 1;
                let moved = if inside.len() <= outside.len() {
                    &inside
                } else {
                    &outside
                };
                for &s in moved {
                    block[s] = new_block;
                }
                for sym2 in 0..self.alphabet_len {
                    worklist.push_back((new_block, sym2));
                }
                // Keep the old block in the worklist too (refine soundly).
                for sym2 in 0..self.alphabet_len {
                    worklist.push_back((b, sym2));
                }
            }
        }

        // Build the quotient machine.
        let mut dfa = Dfa::new(self.alphabet_len);
        let mut block_state: Vec<Option<StateId>> = vec![None; nblocks];
        for i in 0..n {
            let b = block[i];
            if block_state[b].is_none() {
                block_state[b] =
                    Some(dfa.add_state(complete.is_accepting(StateId(dense[i] as u32))));
            }
        }
        for i in 0..n {
            let from = crate::invariant(block_state[block[i]], "every block got a state above");
            for sym_idx in 0..self.alphabet_len {
                let t = crate::invariant(
                    complete.delta(StateId(dense[i] as u32), SymbolId(sym_idx as u32)),
                    "complete DFA defines every transition",
                );
                if let Some(td) = dense_of[t.index()] {
                    let to =
                        crate::invariant(block_state[block[td]], "every block got a state above");
                    dfa.set_transition(from, SymbolId(sym_idx as u32), to);
                }
            }
        }
        let start_orig = crate::invariant(complete.start, "nonempty reachable set implies a start");
        let start_dense =
            crate::invariant(dense_of[start_orig.index()], "the start state is reachable");
        dfa.set_start(crate::invariant(
            block_state[block[start_dense]],
            "every block got a state above",
        ));
        rasc_obs::counter("automata.minimize.runs", 1);
        rasc_obs::histogram("automata.minimize.states", dfa.len() as u64);
        dfa
    }

    /// The product automaton accepting `L(self) ∩ L(other)` — the parallel
    /// composition with conjunctive acceptance. See [`Dfa::product_by`]
    /// for other acceptance combinations (e.g. union for multi-property
    /// checking, §2.2).
    ///
    /// Both inputs must range over the same alphabet.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ in size.
    pub fn product(&self, other: &Dfa) -> Dfa {
        self.product_by(other, |a, b| a && b)
    }

    /// The parallel composition of two machines with a caller-chosen
    /// acceptance combination: the paper's §2.2 observation that a single
    /// product machine can represent all regular properties of an
    /// application at once (`|a, b| a || b` accepts when *either* property
    /// accepts).
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ in size.
    pub fn product_by(&self, other: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "product requires a common alphabet"
        );
        let a = self.complete();
        let b = other.complete();
        let mut dfa = Dfa::new(self.alphabet_len);
        let (Some(sa), Some(sb)) = (a.start, b.start) else {
            let d = dfa.add_state(false);
            dfa.set_start(d);
            for sym_idx in 0..self.alphabet_len {
                dfa.set_transition(d, SymbolId(sym_idx as u32), d);
            }
            return dfa;
        };
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut worklist = vec![(sa, sb)];
        let s0 = dfa.add_state(accept(a.is_accepting(sa), b.is_accepting(sb)));
        dfa.set_start(s0);
        ids.insert((sa, sb), s0);
        while let Some((pa, pb)) = worklist.pop() {
            let from = ids[&(pa, pb)];
            for sym_idx in 0..self.alphabet_len {
                let sym = SymbolId(sym_idx as u32);
                let ta =
                    crate::invariant(a.delta(pa, sym), "complete DFA defines every transition");
                let tb =
                    crate::invariant(b.delta(pb, sym), "complete DFA defines every transition");
                let to = *ids.entry((ta, tb)).or_insert_with(|| {
                    worklist.push((ta, tb));
                    dfa.add_state(accept(a.is_accepting(ta), b.is_accepting(tb)))
                });
                dfa.set_transition(from, sym, to);
            }
        }
        dfa
    }

    /// An NFA accepting the *reversal* of this DFA's language.
    pub fn reverse(&self) -> Nfa {
        let mut nfa = Nfa::new(self.alphabet_len);
        let states: Vec<crate::nfa::NfaStateId> = self.states().map(|_| nfa.add_state()).collect();
        let fresh_start = nfa.add_state();
        nfa.set_start(fresh_start);
        for s in self.states() {
            if self.is_accepting(s) {
                nfa.add_epsilon(fresh_start, states[s.index()]);
            }
            for sym_idx in 0..self.alphabet_len {
                if let Some(t) = self.delta(s, SymbolId(sym_idx as u32)) {
                    // Reverse the edge.
                    nfa.add_transition(
                        states[t.index()],
                        SymbolId(sym_idx as u32),
                        states[s.index()],
                    );
                }
            }
        }
        if let Some(start) = self.start {
            nfa.set_accepting(states[start.index()], true);
        }
        nfa
    }

    /// Converts to an equivalent NFA.
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.alphabet_len);
        let states: Vec<crate::nfa::NfaStateId> = self.states().map(|_| nfa.add_state()).collect();
        for s in self.states() {
            nfa.set_accepting(states[s.index()], self.is_accepting(s));
            for sym_idx in 0..self.alphabet_len {
                if let Some(t) = self.delta(s, SymbolId(sym_idx as u32)) {
                    nfa.add_transition(
                        states[s.index()],
                        SymbolId(sym_idx as u32),
                        states[t.index()],
                    );
                }
            }
        }
        if let Some(start) = self.start {
            nfa.set_start(states[start.index()]);
        }
        nfa
    }

    /// Whether this DFA accepts the same language as `other`.
    ///
    /// Decided by a BFS over the pair graph of the completed machines
    /// (Hopcroft–Karp style without the union-find refinement; adequate for
    /// the sizes in this crate).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "equivalence requires a common alphabet"
        );
        let a = self.complete();
        let b = other.complete();
        let (sa, sb) = match (a.start, b.start) {
            (None, None) => return true,
            (None, Some(s)) => return !b.coreachable_from(s),
            (Some(s), None) => return !a.coreachable_from(s),
            (Some(sa), Some(sb)) => (sa, sb),
        };
        let mut seen: HashMap<(StateId, StateId), ()> = HashMap::new();
        let mut queue = VecDeque::from([(sa, sb)]);
        seen.insert((sa, sb), ());
        while let Some((pa, pb)) = queue.pop_front() {
            if a.is_accepting(pa) != b.is_accepting(pb) {
                return false;
            }
            for sym_idx in 0..self.alphabet_len {
                let sym = SymbolId(sym_idx as u32);
                let ta =
                    crate::invariant(a.delta(pa, sym), "complete DFA defines every transition");
                let tb =
                    crate::invariant(b.delta(pb, sym), "complete DFA defines every transition");
                if seen.insert((ta, tb), ()).is_none() {
                    queue.push_back((ta, tb));
                }
            }
        }
        true
    }

    fn coreachable_from(&self, s: StateId) -> bool {
        self.coreachable()[s.index()]
    }

    /// A DFA accepting the complement language `Σ* \ L(self)`.
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for s in out.states() {
            let acc = out.is_accepting(s);
            out.set_accepting(s, !acc);
        }
        out
    }

    /// The minimal DFA accepting `L(self) ∪ L(other)`.
    ///
    /// # Example
    ///
    /// ```
    /// use rasc_automata::{Alphabet, Regex};
    ///
    /// let sigma = Alphabet::from_names(["a", "b"]);
    /// let l1 = Regex::parse("a", &sigma)?.compile(&sigma);
    /// let l2 = Regex::parse("b b", &sigma)?.compile(&sigma);
    /// let u = l1.union(&l2);
    /// let a = sigma.lookup("a").unwrap();
    /// let b = sigma.lookup("b").unwrap();
    /// assert!(u.accepts(&[a]) && u.accepts(&[b, b]) && !u.accepts(&[b]));
    /// # Ok::<(), rasc_automata::AutomataError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ in size.
    pub fn union(&self, other: &Dfa) -> Dfa {
        // De Morgan over the intersection product.
        self.complement()
            .product(&other.complement())
            .complement()
            .minimize()
    }

    /// The minimal DFA accepting `L(self) \ L(other)`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ in size.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(&other.complement()).minimize()
    }

    /// Whether the DFA accepts no word at all.
    pub fn is_language_empty(&self) -> bool {
        match self.start {
            None => true,
            Some(s) => !self.coreachable()[s.index()],
        }
    }

    /// Renders the machine in Graphviz DOT format, naming symbols via
    /// `alphabet`.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is smaller than the machine's alphabet.
    pub fn to_dot(&self, alphabet: &Alphabet) -> String {
        use std::fmt::Write as _;
        assert!(alphabet.len() >= self.alphabet_len);
        let mut out = String::from("digraph dfa {\n  rankdir=LR;\n");
        if let Some(s) = self.start {
            let _ = writeln!(out, "  start [shape=point];");
            let _ = writeln!(out, "  start -> q{};", s.index());
        }
        for s in self.states() {
            let shape = if self.is_accepting(s) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{} [shape={shape}];", s.index());
        }
        for s in self.states() {
            for sym_idx in 0..self.alphabet_len {
                let sym = SymbolId(sym_idx as u32);
                if let Some(t) = self.delta(s, sym) {
                    let _ = writeln!(
                        out,
                        "  q{} -> q{} [label=\"{}\"];",
                        s.index(),
                        t.index(),
                        alphabet.name(sym)
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_symbols() -> (Alphabet, SymbolId, SymbolId) {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        (sigma, a, b)
    }

    /// A deliberately redundant DFA for "even number of `a`s".
    fn even_a_redundant(a: SymbolId, b: SymbolId, alphabet_len: usize) -> Dfa {
        let mut dfa = Dfa::new(alphabet_len);
        let s0 = dfa.add_state(true);
        let s1 = dfa.add_state(false);
        let s2 = dfa.add_state(true); // duplicate of s0
        let s3 = dfa.add_state(false); // duplicate of s1
        dfa.set_start(s0);
        dfa.set_transition(s0, a, s1);
        dfa.set_transition(s0, b, s2);
        dfa.set_transition(s1, a, s2);
        dfa.set_transition(s1, b, s3);
        dfa.set_transition(s2, a, s3);
        dfa.set_transition(s2, b, s0);
        dfa.set_transition(s3, a, s0);
        dfa.set_transition(s3, b, s1);
        dfa
    }

    #[test]
    fn minimize_collapses_duplicates() {
        let (sigma, a, b) = two_symbols();
        let dfa = even_a_redundant(a, b, sigma.len());
        let min = dfa.minimize();
        assert_eq!(min.len(), 2);
        assert!(min.equivalent(&dfa));
    }

    #[test]
    fn minimize_unreachable_states_dropped() {
        let (sigma, a, b) = two_symbols();
        let mut dfa = Dfa::new(sigma.len());
        let s0 = dfa.add_state(true);
        let junk = dfa.add_state(false);
        dfa.set_start(s0);
        dfa.set_transition(s0, a, s0);
        dfa.set_transition(s0, b, s0);
        dfa.set_transition(junk, a, s0);
        dfa.set_transition(junk, b, junk);
        let min = dfa.minimize();
        assert_eq!(min.len(), 1);
        assert!(min.equivalent(&dfa));
    }

    #[test]
    fn complete_adds_dead_state() {
        let (sigma, a, _) = two_symbols();
        let mut dfa = Dfa::new(sigma.len());
        let s0 = dfa.add_state(true);
        dfa.set_start(s0);
        dfa.set_transition(s0, a, s0);
        assert!(!dfa.is_complete());
        let c = dfa.complete();
        assert!(c.is_complete());
        assert!(c.equivalent(&dfa));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn product_intersects_languages() {
        let (sigma, a, b) = two_symbols();
        // L1 = even #a, L2 = odd #b
        let l1 = even_a_redundant(a, b, sigma.len()).minimize();
        let mut l2 = Dfa::new(sigma.len());
        let t0 = l2.add_state(false);
        let t1 = l2.add_state(true);
        l2.set_start(t0);
        l2.set_transition(t0, b, t1);
        l2.set_transition(t1, b, t0);
        l2.set_transition(t0, a, t0);
        l2.set_transition(t1, a, t1);
        let p = l1.product(&l2);
        assert!(p.accepts(&[b]));
        assert!(p.accepts(&[a, a, b]));
        assert!(!p.accepts(&[a, b]));
        assert!(!p.accepts(&[b, b]));
    }

    #[test]
    fn reverse_reverses_language() {
        let (sigma, a, b) = two_symbols();
        // L = a b*
        let mut dfa = Dfa::new(sigma.len());
        let s0 = dfa.add_state(false);
        let s1 = dfa.add_state(true);
        dfa.set_start(s0);
        dfa.set_transition(s0, a, s1);
        dfa.set_transition(s1, b, s1);
        let rev = dfa.reverse().determinize();
        // reverse(L) = b* a
        assert!(rev.accepts(&[a]));
        assert!(rev.accepts(&[b, b, a]));
        assert!(!rev.accepts(&[a, b]));
    }

    #[test]
    fn equivalent_detects_difference() {
        let (sigma, a, b) = two_symbols();
        let l1 = even_a_redundant(a, b, sigma.len());
        let mut l2 = l1.clone();
        // Flip one accepting bit: languages differ.
        l2.set_accepting(StateId(1), true);
        assert!(!l1.equivalent(&l2));
        assert!(l1.equivalent(&l1.minimize()));
    }

    #[test]
    fn complement_union_difference() {
        let (sigma, a, b) = two_symbols();
        let even = even_a_redundant(a, b, sigma.len()).minimize();
        let comp = even.complement();
        for w in [vec![], vec![a], vec![a, a], vec![a, b, a]] {
            assert_eq!(comp.accepts(&w), !even.accepts(&w), "{w:?}");
        }
        // L1 = even #a; L2 = words starting with b.
        let mut l2 = Dfa::new(sigma.len());
        let s0 = l2.add_state(false);
        let s1 = l2.add_state(true);
        l2.set_start(s0);
        l2.set_transition(s0, b, s1);
        l2.set_transition(s1, a, s1);
        l2.set_transition(s1, b, s1);
        let union = even.union(&l2);
        let diff = even.difference(&l2);
        for w in [vec![], vec![b], vec![a], vec![b, a], vec![a, a], vec![a, b]] {
            assert_eq!(
                union.accepts(&w),
                even.accepts(&w) || l2.accepts(&w),
                "{w:?}"
            );
            assert_eq!(
                diff.accepts(&w),
                even.accepts(&w) && !l2.accepts(&w),
                "{w:?}"
            );
        }
    }

    #[test]
    fn language_emptiness() {
        let (sigma, a, _) = two_symbols();
        let mut empty = Dfa::new(sigma.len());
        let s = empty.add_state(false);
        empty.set_start(s);
        empty.set_transition(s, a, s);
        assert!(empty.is_language_empty());
        let even = even_a_redundant(a, sigma.lookup("b").unwrap(), sigma.len());
        assert!(!even.is_language_empty());
        // The intersection of a language and its complement is empty.
        assert!(even.product(&even.complement()).is_language_empty());
    }

    #[test]
    fn dot_rendering_mentions_all_states() {
        let (sigma, g, k) = two_symbols();
        let dfa = Dfa::one_bit(&sigma, g, k);
        let dot = dfa.to_dot(&sigma);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("q0"));
        assert!(dot.contains("q1"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"a\"") || dot.contains("label=\"b\""));
    }

    #[test]
    fn one_bit_language() {
        let (sigma, g, k) = two_symbols();
        let dfa = Dfa::one_bit(&sigma, g, k);
        assert!(dfa.accepts(&[g]));
        assert!(dfa.accepts(&[g, g]));
        assert!(dfa.accepts(&[k, g]));
        assert!(!dfa.accepts(&[g, k]));
        assert!(!dfa.accepts(&[]));
        assert_eq!(dfa.minimize().len(), 2);
    }
}
