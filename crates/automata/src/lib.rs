//! Finite-automaton machinery for regularly annotated set constraints.
//!
//! This crate provides every regular-language ingredient the constraint
//! solver in `rasc-core` needs:
//!
//! * an interned, named [`Alphabet`] (annotation symbols are *names* such as
//!   `seteuid_zero`, not characters);
//! * [`Regex`] parsing and Thompson construction into an [`Nfa`];
//! * [`Dfa`] subset construction, completion, Hopcroft minimization,
//!   product, reversal and language-level closures (prefix, suffix,
//!   substring) in [`closure`];
//! * the *transition monoid* of a DFA — the set `F_M^≡` of representative
//!   functions of the paper's word-equivalence classes — with memoized
//!   composition ([`Monoid`]);
//! * the annotation specification language of the paper's §8 ([`spec`]),
//!   including parametric symbols such as `open(x)`.
//!
//! # Example
//!
//! ```
//! use rasc_automata::{Alphabet, Dfa, Monoid};
//!
//! // The paper's Figure 1: the 1-bit gen/kill language.
//! let mut alphabet = Alphabet::new();
//! let g = alphabet.intern("g");
//! let k = alphabet.intern("k");
//! let dfa = Dfa::one_bit(&alphabet, g, k);
//! let monoid = Monoid::of_dfa(&dfa);
//! // F_M^≡ = { f_ε, f_g, f_k }
//! assert_eq!(monoid.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
pub mod closure;
pub mod compile_cache;
mod dfa;
mod error;
mod monoid;
mod nfa;
pub mod regex;
pub mod spec;

pub use alphabet::{Alphabet, SymbolId};

/// Converts an index to `u32`, panicking with a capacity message on
/// overflow. Centralizes the documented "fewer than 2^32 ids" invariant;
/// library code is otherwise free of `unwrap`/`expect` (enforced by the
/// `disallowed-methods` clippy gate in CI).
pub(crate) fn id_u32(n: usize, what: &str) -> u32 {
    match u32::try_from(n) {
        Ok(v) => v,
        Err(_) => panic!("capacity overflow: too many {what} (limit 2^32)"),
    }
}

/// Unwraps an `Option` that a documented invariant guarantees is `Some`,
/// panicking with the invariant's description otherwise.
pub(crate) fn invariant<T>(v: Option<T>, what: &str) -> T {
    match v {
        Some(t) => t,
        None => panic!("internal invariant violated: {what}"),
    }
}
pub use dfa::{Dfa, StateId};
pub use error::{AutomataError, Result};
pub use monoid::{adversarial_machine, FnId, Monoid, ReprFn};
pub use nfa::{Nfa, NfaStateId};
pub use regex::Regex;
pub use spec::{ParamSymbol, PropertySpec};
