//! Regular expressions over named annotation symbols.
//!
//! The surface syntax is word-oriented because annotation symbols are
//! program events with multi-character names:
//!
//! ```text
//! regex  ::= alt
//! alt    ::= cat ('|' cat)*
//! cat    ::= rep rep*                 (juxtaposition, whitespace separated)
//! rep    ::= atom ('*' | '+' | '?')*
//! atom   ::= IDENT | 'eps' | '.' | '(' alt ')'
//! ```
//!
//! `IDENT` must name a symbol of the alphabet, `eps` is the empty word, and
//! `.` matches any single symbol.
//!
//! # Example
//!
//! ```
//! use rasc_automata::{Alphabet, Regex};
//!
//! let mut sigma = Alphabet::new();
//! sigma.intern("open");
//! sigma.intern("close");
//! let re = Regex::parse("(open close)* open", &sigma)?;
//! let dfa = re.compile(&sigma);
//! let open = sigma.lookup("open").unwrap();
//! let close = sigma.lookup("close").unwrap();
//! assert!(dfa.accepts(&[open]));
//! assert!(dfa.accepts(&[open, close, open]));
//! assert!(!dfa.accepts(&[open, close]));
//! # Ok::<(), rasc_automata::AutomataError>(())
//! ```

use crate::alphabet::{Alphabet, SymbolId};
use crate::dfa::Dfa;
use crate::error::{AutomataError, Result};
use crate::nfa::{Nfa, NfaStateId};

/// Maximum nesting depth of parenthesised groups accepted by
/// [`Regex::parse`]. Deeper inputs yield [`AutomataError::DepthExceeded`]
/// instead of overflowing the parser's stack.
pub const MAX_DEPTH: usize = 256;

/// An abstract-syntax regular expression over an interned alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty word `eps`.
    Epsilon,
    /// A single symbol.
    Symbol(SymbolId),
    /// Any single symbol (`.`).
    Any,
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation (`|`).
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star (`*`).
    Star(Box<Regex>),
    /// One or more (`+`).
    Plus(Box<Regex>),
    /// Zero or one (`?`).
    Opt(Box<Regex>),
}

impl Regex {
    /// Parses `input` against `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::ParseRegex`] on malformed syntax,
    /// [`AutomataError::UnknownSymbol`] if an identifier is not in the
    /// alphabet, and [`AutomataError::DepthExceeded`] if groups nest
    /// deeper than [`MAX_DEPTH`].
    pub fn parse(input: &str, alphabet: &Alphabet) -> Result<Regex> {
        let tokens = tokenize(input)?;
        let mut parser = Parser {
            tokens,
            pos: 0,
            depth: 0,
            alphabet,
        };
        let re = parser.alt()?;
        if parser.pos != parser.tokens.len() {
            return Err(AutomataError::ParseRegex {
                message: format!(
                    "unexpected trailing token {:?}",
                    parser.tokens[parser.pos].0
                ),
                offset: parser.tokens[parser.pos].1,
            });
        }
        Ok(re)
    }

    /// Thompson-constructs an NFA for this regex.
    pub fn to_nfa(&self, alphabet: &Alphabet) -> Nfa {
        let mut nfa = Nfa::new(alphabet.len());
        let start = nfa.add_state();
        nfa.set_start(start);
        let end = build(self, &mut nfa, start, alphabet);
        nfa.set_accepting(end, true);
        nfa
    }

    /// Compiles this regex to the minimal complete DFA for its language.
    ///
    /// Repeated compiles of a structurally identical machine are served
    /// from the process-wide [`crate::compile_cache::RegexCompiler`]
    /// instead of re-running subset construction.
    pub fn compile(&self, alphabet: &Alphabet) -> Dfa {
        crate::compile_cache::determinize_minimized(&self.to_nfa(alphabet))
    }
}

/// Thompson construction fragment: extends `nfa` with a machine for `re`
/// beginning at `start`, returning the fragment's exit state.
fn build(re: &Regex, nfa: &mut Nfa, start: NfaStateId, alphabet: &Alphabet) -> NfaStateId {
    match re {
        Regex::Epsilon => start,
        Regex::Symbol(sym) => {
            let end = nfa.add_state();
            nfa.add_transition(start, *sym, end);
            end
        }
        Regex::Any => {
            let end = nfa.add_state();
            for sym in alphabet.symbols() {
                nfa.add_transition(start, sym, end);
            }
            end
        }
        Regex::Concat(a, b) => {
            let mid = build(a, nfa, start, alphabet);
            build(b, nfa, mid, alphabet)
        }
        Regex::Alt(a, b) => {
            let a_start = nfa.add_state();
            let b_start = nfa.add_state();
            nfa.add_epsilon(start, a_start);
            nfa.add_epsilon(start, b_start);
            let a_end = build(a, nfa, a_start, alphabet);
            let b_end = build(b, nfa, b_start, alphabet);
            let end = nfa.add_state();
            nfa.add_epsilon(a_end, end);
            nfa.add_epsilon(b_end, end);
            end
        }
        Regex::Star(a) => {
            let inner_start = nfa.add_state();
            let end = nfa.add_state();
            nfa.add_epsilon(start, inner_start);
            nfa.add_epsilon(start, end);
            let inner_end = build(a, nfa, inner_start, alphabet);
            nfa.add_epsilon(inner_end, inner_start);
            nfa.add_epsilon(inner_end, end);
            end
        }
        Regex::Plus(a) => {
            let inner_start = nfa.add_state();
            nfa.add_epsilon(start, inner_start);
            let inner_end = build(a, nfa, inner_start, alphabet);
            let end = nfa.add_state();
            nfa.add_epsilon(inner_end, inner_start);
            nfa.add_epsilon(inner_end, end);
            end
        }
        Regex::Opt(a) => {
            let inner_start = nfa.add_state();
            nfa.add_epsilon(start, inner_start);
            let inner_end = build(a, nfa, inner_start, alphabet);
            let end = nfa.add_state();
            nfa.add_epsilon(start, end);
            nfa.add_epsilon(inner_end, end);
            end
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Pipe,
    Star,
    Plus,
    Question,
    Dot,
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            '|' => {
                tokens.push((Token::Pipe, i));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, i));
                i += 1;
            }
            '+' => {
                tokens.push((Token::Plus, i));
                i += 1;
            }
            '?' => {
                tokens.push((Token::Question, i));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, i));
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(input[start..i].to_owned()), start));
            }
            other => {
                return Err(AutomataError::ParseRegex {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

/// Folds `parts` into a balanced tree, so a chain of 100k
/// concatenations or alternations stays `O(log n)` deep. Recursive
/// consumers (Thompson construction, drop glue) would overflow the stack
/// on the left-deep chain a naive fold builds.
fn fold_balanced(mut parts: Vec<Regex>, join: fn(Box<Regex>, Box<Regex>) -> Regex) -> Regex {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(join(Box::new(a), Box::new(b))),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop().unwrap_or(Regex::Epsilon)
}

/// The net effect of a chain of postfix repetition operators.
#[derive(Clone, Copy)]
enum RepMod {
    None,
    Star,
    Plus,
    Opt,
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    depth: usize,
    alphabet: &'a Alphabet,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn alt(&mut self) -> Result<Regex> {
        let mut arms = vec![self.cat()?];
        while self.peek() == Some(&Token::Pipe) {
            self.pos += 1;
            arms.push(self.cat()?);
        }
        Ok(fold_balanced(arms, Regex::Alt))
    }

    fn cat(&mut self) -> Result<Regex> {
        let mut parts = vec![self.rep()?];
        while matches!(
            self.peek(),
            Some(Token::Ident(_) | Token::LParen | Token::Dot)
        ) {
            parts.push(self.rep()?);
        }
        Ok(fold_balanced(parts, Regex::Concat))
    }

    fn rep(&mut self) -> Result<Regex> {
        let base = self.atom()?;
        let mut m = RepMod::None;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => RepMod::Star,
                Some(Token::Plus) => RepMod::Plus,
                Some(Token::Question) => RepMod::Opt,
                _ => break,
            };
            self.pos += 1;
            // Stacked repetition operators collapse to a single one
            // ((a*)* = a*, (a+)? = (a?)+ = a*, …), so a pathological
            // `a***…` chain never nests the AST.
            m = match (m, op) {
                (RepMod::None, op) => op,
                (m, RepMod::None) => m, // `op` is never None
                (RepMod::Star, _) | (_, RepMod::Star) => RepMod::Star,
                (RepMod::Plus, RepMod::Plus) => RepMod::Plus,
                (RepMod::Opt, RepMod::Opt) => RepMod::Opt,
                (RepMod::Plus, RepMod::Opt) | (RepMod::Opt, RepMod::Plus) => RepMod::Star,
            };
        }
        Ok(match m {
            RepMod::None => base,
            RepMod::Star => Regex::Star(Box::new(base)),
            RepMod::Plus => Regex::Plus(Box::new(base)),
            RepMod::Opt => Regex::Opt(Box::new(base)),
        })
    }

    fn atom(&mut self) -> Result<Regex> {
        let offset = self.tokens.get(self.pos).map_or(0, |(_, o)| *o);
        match self.peek().cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if name == "eps" {
                    return Ok(Regex::Epsilon);
                }
                let sym = self
                    .alphabet
                    .lookup(&name)
                    .ok_or(AutomataError::UnknownSymbol(name))?;
                Ok(Regex::Symbol(sym))
            }
            Some(Token::Dot) => {
                self.pos += 1;
                Ok(Regex::Any)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.depth >= MAX_DEPTH {
                    return Err(AutomataError::DepthExceeded { limit: MAX_DEPTH });
                }
                self.depth += 1;
                let inner = self.alt()?;
                self.depth -= 1;
                if self.peek() != Some(&Token::RParen) {
                    return Err(AutomataError::ParseRegex {
                        message: "expected `)`".to_owned(),
                        offset,
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            other => Err(AutomataError::ParseRegex {
                message: format!("expected atom, found {other:?}"),
                offset,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::from_names(["a", "b", "c"])
    }

    fn sym(alpha: &Alphabet, n: &str) -> SymbolId {
        alpha.lookup(n).unwrap()
    }

    #[test]
    fn parse_and_compile_basic() {
        let alpha = sigma();
        let (a, b) = (sym(&alpha, "a"), sym(&alpha, "b"));
        let dfa = Regex::parse("a b* a", &alpha).unwrap().compile(&alpha);
        assert!(dfa.accepts(&[a, a]));
        assert!(dfa.accepts(&[a, b, b, a]));
        assert!(!dfa.accepts(&[a, b]));
    }

    #[test]
    fn alternation_and_optional() {
        let alpha = sigma();
        let (a, b, c) = (sym(&alpha, "a"), sym(&alpha, "b"), sym(&alpha, "c"));
        let dfa = Regex::parse("(a | b) c?", &alpha).unwrap().compile(&alpha);
        assert!(dfa.accepts(&[a]));
        assert!(dfa.accepts(&[b, c]));
        assert!(!dfa.accepts(&[c]));
        assert!(!dfa.accepts(&[a, b]));
    }

    #[test]
    fn epsilon_and_plus() {
        let alpha = sigma();
        let a = sym(&alpha, "a");
        let dfa = Regex::parse("eps | a+", &alpha).unwrap().compile(&alpha);
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&[a, a, a]));
    }

    #[test]
    fn dot_matches_any_symbol() {
        let alpha = sigma();
        let (a, b, c) = (sym(&alpha, "a"), sym(&alpha, "b"), sym(&alpha, "c"));
        let dfa = Regex::parse(". .", &alpha).unwrap().compile(&alpha);
        assert!(dfa.accepts(&[a, c]));
        assert!(dfa.accepts(&[b, b]));
        assert!(!dfa.accepts(&[a]));
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let alpha = sigma();
        assert!(matches!(
            Regex::parse("zz", &alpha),
            Err(AutomataError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn malformed_regexes_error() {
        let alpha = sigma();
        assert!(Regex::parse("(a", &alpha).is_err());
        assert!(Regex::parse("a )", &alpha).is_err());
        assert!(Regex::parse("*", &alpha).is_err());
        assert!(Regex::parse("a %", &alpha).is_err());
    }

    #[test]
    fn deep_paren_nesting_is_a_typed_error_not_an_overflow() {
        let alpha = sigma();
        let src = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
        assert_eq!(
            Regex::parse(&src, &alpha),
            Err(AutomataError::DepthExceeded { limit: MAX_DEPTH })
        );
        let src = format!("{}a{}", "(".repeat(MAX_DEPTH), ")".repeat(MAX_DEPTH));
        assert!(Regex::parse(&src, &alpha).is_ok());
    }

    #[test]
    fn hundred_k_postfix_chain_collapses() {
        let alpha = sigma();
        let a = sym(&alpha, "a");
        let re = Regex::parse(&format!("a{}", "*".repeat(100_000)), &alpha).unwrap();
        assert_eq!(re, Regex::Star(Box::new(Regex::Symbol(a))));
        // `a+++…?` = zero or more `a`s; the collapsed form must keep that
        // meaning, not just survive parsing.
        let re = Regex::parse(&format!("a{}?", "+".repeat(100_000)), &alpha).unwrap();
        let dfa = re.compile(&alpha);
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&[a, a, a]));
    }

    #[test]
    fn hundred_k_concat_and_alt_chains_stay_shallow() {
        let alpha = sigma();
        // Balanced folding keeps these O(log n) deep; a left-deep chain
        // would overflow the stack in Thompson construction or drop glue.
        let re = Regex::parse(&"a ".repeat(100_000), &alpha).unwrap();
        let _ = re.to_nfa(&alpha);
        let re = Regex::parse(&format!("a{}", " | a".repeat(100_000)), &alpha).unwrap();
        let _ = re.to_nfa(&alpha);
    }

    #[test]
    fn star_allows_empty() {
        let alpha = sigma();
        let a = sym(&alpha, "a");
        let dfa = Regex::parse("a*", &alpha).unwrap().compile(&alpha);
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&[a, a]));
    }
}
