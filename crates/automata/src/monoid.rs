//! The transition monoid `F_M^≡` of representative functions.
//!
//! By the paper's Theorem 2.1, two words are `≡_M`-equivalent iff they
//! induce the same state-to-state function on the (minimal) machine `M`.
//! Each equivalence class is therefore represented by a total function
//! `S → S`; the finitely many such functions reachable from the generators
//! `{f_σ}` and the identity `f_ε` form the transition monoid.
//!
//! The constraint solver composes annotations with `∘`; this module interns
//! functions to dense [`FnId`]s and memoizes composition so each `f ∘ g` is
//! an O(1) table lookup after the first computation — exactly the paper's
//! "precomputed table" (§4, §8), built lazily so that machines with
//! superexponential monoids (Figure 2) degrade gracefully.

use std::collections::HashMap;

use crate::alphabet::{Alphabet, SymbolId};
use crate::dfa::{Dfa, StateId};

/// An interned representative function (an element of `F_M^≡`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(pub(crate) u32);

impl FnId {
    /// Builds a function id from a raw index. The caller must ensure the
    /// index is valid for the monoid it will be used with.
    pub fn from_index(index: usize) -> FnId {
        FnId(crate::id_u32(index, "monoid functions"))
    }

    /// The function's index within its monoid.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A representative function: a total map from machine states to machine
/// states, `f(s) = δ(w, s)` for any word `w` in its class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReprFn(Vec<u32>);

impl ReprFn {
    /// Applies the function to a state.
    pub fn apply(&self, s: StateId) -> StateId {
        StateId(self.0[s.index()])
    }

    /// The number of machine states (the function's domain size).
    pub fn domain_len(&self) -> usize {
        self.0.len()
    }

    /// The state images, indexed by source state.
    pub fn images(&self) -> impl Iterator<Item = StateId> + '_ {
        self.0.iter().map(|&s| StateId(s))
    }
}

/// The transition monoid of a DFA with interned elements and memoized
/// composition.
///
/// The machine should be **minimal and complete** (see [`Dfa::minimize`]);
/// this constructor completes it but deliberately does not minimize — the
/// caller decides the language, and minimizing changes state identities.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Dfa, Monoid};
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// let k = sigma.intern("k");
/// let dfa = Dfa::one_bit(&sigma, g, k);
/// let mut monoid = Monoid::lazy_of_dfa(&dfa);
/// let fg = monoid.generator(g);
/// let fk = monoid.generator(k);
/// // k then g: the fact ends up set ⇒ f_g ∘ f_k = f_g
/// assert_eq!(monoid.compose(fg, fk), fg);
/// // g then k: the fact ends up clear ⇒ f_k ∘ f_g = f_k
/// assert_eq!(monoid.compose(fk, fg), fk);
/// ```
#[derive(Debug, Clone)]
pub struct Monoid {
    n_states: usize,
    start: StateId,
    accepting: Vec<bool>,
    fns: Vec<ReprFn>,
    by_fn: HashMap<ReprFn, FnId>,
    identity: FnId,
    /// Generator function per alphabet symbol.
    generators: Vec<FnId>,
    /// Memoized composition: `(later, earlier) → later ∘ earlier`.
    memo: HashMap<(FnId, FnId), FnId>,
    /// Whether the monoid has been closed under composition.
    closed: bool,
}

impl Monoid {
    /// Builds the monoid *lazily*: only the identity and the per-symbol
    /// generators are interned; further elements appear on demand through
    /// [`Monoid::compose`].
    ///
    /// This is what the solver uses — on adversarial machines only the
    /// functions actually arising in the constraint graph are materialized.
    pub fn lazy_of_dfa(dfa: &Dfa) -> Monoid {
        let complete = dfa.complete();
        let n = complete.len();
        let start = complete.start().unwrap_or(StateId(0));
        let accepting = (0..n)
            .map(|i| complete.is_accepting(StateId(i as u32)))
            .collect();
        let mut monoid = Monoid {
            n_states: n,
            start,
            accepting,
            fns: Vec::new(),
            by_fn: HashMap::new(),
            identity: FnId(0),
            generators: Vec::new(),
            memo: HashMap::new(),
            closed: false,
        };
        let identity = monoid.intern(ReprFn((0..n as u32).collect()));
        monoid.identity = identity;
        for sym_idx in 0..complete.alphabet_len() {
            let images = (0..n)
                .map(|i| {
                    crate::invariant(
                        complete.delta(StateId(i as u32), SymbolId(sym_idx as u32)),
                        "complete DFA defines every transition",
                    )
                    .0
                })
                .collect();
            let f = monoid.intern(ReprFn(images));
            monoid.generators.push(f);
        }
        monoid
    }

    /// Builds the *entire* monoid `F_M^≡` eagerly (closure of the
    /// generators under composition).
    ///
    /// Used for reporting monoid sizes (the paper's "58 representative
    /// functions" observation, and the Figure 2 superexponential growth
    /// experiment). Beware: the closure can reach `|S|^|S|` elements.
    pub fn of_dfa(dfa: &Dfa) -> Monoid {
        let mut monoid = Monoid::lazy_of_dfa(dfa);
        monoid.close();
        monoid
    }

    /// Closes the monoid under composition, interning every element of
    /// `F_M^≡`. Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        let _span = rasc_obs::span("monoid.close");
        // BFS over words: every f_w arises as f_σ ∘ f_{w'} for |w| = |w'|+1.
        let generators: Vec<FnId> = self.generators.clone();
        let mut frontier: Vec<FnId> = (0..self.fns.len() as u32).map(FnId).collect();
        while let Some(f) = frontier.pop() {
            for &g in &generators {
                let before = self.fns.len();
                let _ = self.compose(g, f);
                if self.fns.len() > before {
                    frontier.push(FnId((self.fns.len() - 1) as u32));
                }
            }
        }
        self.closed = true;
    }

    fn intern(&mut self, f: ReprFn) -> FnId {
        if let Some(&id) = self.by_fn.get(&f) {
            return id;
        }
        let id = FnId(crate::id_u32(self.fns.len(), "monoid functions"));
        self.by_fn.insert(f.clone(), id);
        self.fns.push(f);
        // Monoid table growth: each event is one new element of F_M^≡
        // materialized (Figure 2 machines make this the scaling hazard).
        rasc_obs::counter("monoid.elements", 1);
        id
    }

    /// The identity element `f_ε`.
    pub fn identity(&self) -> FnId {
        self.identity
    }

    /// The generator `f_σ` for symbol `sym`.
    pub fn generator(&self, sym: SymbolId) -> FnId {
        self.generators[sym.index()]
    }

    /// `later ∘ earlier` — the representative function of `w_earlier ·
    /// w_later` (the word that does `earlier` first).
    pub fn compose(&mut self, later: FnId, earlier: FnId) -> FnId {
        if later == self.identity {
            return earlier;
        }
        if earlier == self.identity {
            return later;
        }
        if let Some(&id) = self.memo.get(&(later, earlier)) {
            return id;
        }
        let images: Vec<u32> = self.fns[earlier.index()]
            .0
            .iter()
            .map(|&mid| self.fns[later.index()].0[mid as usize])
            .collect();
        let id = self.intern(ReprFn(images));
        self.memo.insert((later, earlier), id);
        rasc_obs::counter("monoid.compose.memoized", 1);
        id
    }

    /// Read-only composition: `later ∘ earlier` if the result is already
    /// interned (identity shortcut, memo hit, or a product whose
    /// representative function exists in `by_fn`), else `None`.
    ///
    /// Never allocates a new element and never touches the memo table or
    /// counters, so concurrent speculative readers observe exactly the ids
    /// a later mutable [`Monoid::compose`] would return.
    pub fn try_compose(&self, later: FnId, earlier: FnId) -> Option<FnId> {
        if later == self.identity {
            return Some(earlier);
        }
        if earlier == self.identity {
            return Some(later);
        }
        if let Some(&id) = self.memo.get(&(later, earlier)) {
            return Some(id);
        }
        let images: Vec<u32> = self.fns[earlier.index()]
            .0
            .iter()
            .map(|&mid| self.fns[later.index()].0[mid as usize])
            .collect();
        self.by_fn.get(&ReprFn(images)).copied()
    }

    /// The representative function of a word (composing generators).
    pub fn of_word(&mut self, word: &[SymbolId]) -> FnId {
        let mut f = self.identity;
        for &sym in word {
            let g = self.generator(sym);
            f = self.compose(g, f);
        }
        f
    }

    /// Applies `f` to machine state `s`.
    pub fn apply(&self, f: FnId, s: StateId) -> StateId {
        self.fns[f.index()].apply(s)
    }

    /// Whether `f` represents full words of `L(M)`: `f(s₀) ∈ S_accept`.
    ///
    /// This is the membership test for the paper's `F_accept` (§3.2).
    pub fn is_accepting(&self, f: FnId) -> bool {
        self.accepting[self.apply(f, self.start).index()]
    }

    /// The machine state `f(s₀)` — the *right-congruence class* of `f`
    /// used by the forward solver (§5.1).
    pub fn forward_class(&self, f: FnId) -> StateId {
        self.apply(f, self.start)
    }

    /// Whether machine state `s` is accepting.
    pub fn state_accepting(&self, s: StateId) -> bool {
        self.accepting[s.index()]
    }

    /// The machine's start state.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// Number of machine states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of interned functions. After [`Monoid::close`] this is
    /// `|F_M^≡|`.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether no functions are interned (impossible in practice: the
    /// identity always is).
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Iterates over all interned function ids.
    pub fn fn_ids(&self) -> impl Iterator<Item = FnId> {
        (0..self.fns.len() as u32).map(FnId)
    }

    /// The interned function behind an id.
    pub fn repr_fn(&self, f: FnId) -> &ReprFn {
        &self.fns[f.index()]
    }

    /// The per-symbol generators `f_σ`, indexed by symbol.
    pub fn generators(&self) -> &[FnId] {
        &self.generators
    }

    /// Rebuilds a monoid from previously exported parts (see the snapshot
    /// subsystem in `rasc-core`). The memo table starts empty and the
    /// monoid is treated as unclosed — compositions re-memoize on demand,
    /// which keeps the export format small and order-independent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found:
    /// out-of-range state images, identity/generator ids out of range, an
    /// identity that is not the identity function, duplicate functions, or
    /// a wrong-length image vector.
    pub fn from_parts(
        n_states: usize,
        start_index: usize,
        accepting: Vec<bool>,
        fn_images: Vec<Vec<u32>>,
        identity_index: usize,
        generator_indices: &[u32],
    ) -> Result<Monoid, String> {
        if accepting.len() != n_states {
            return Err(format!(
                "accepting vector has {} entries for {} states",
                accepting.len(),
                n_states
            ));
        }
        if start_index >= n_states {
            return Err(format!(
                "start state {start_index} out of range ({n_states} states)"
            ));
        }
        let mut fns = Vec::with_capacity(fn_images.len());
        let mut by_fn = HashMap::with_capacity(fn_images.len());
        for (i, images) in fn_images.into_iter().enumerate() {
            if images.len() != n_states {
                return Err(format!(
                    "function {i} has {} images for {} states",
                    images.len(),
                    n_states
                ));
            }
            if let Some(&bad) = images.iter().find(|&&s| s as usize >= n_states) {
                return Err(format!("function {i} maps to state {bad} out of range"));
            }
            let f = ReprFn(images);
            let id = FnId(crate::id_u32(fns.len(), "monoid functions"));
            if by_fn.insert(f.clone(), id).is_some() {
                return Err(format!("function {i} duplicates an earlier function"));
            }
            fns.push(f);
        }
        if identity_index >= fns.len() {
            return Err(format!(
                "identity id {identity_index} out of range ({} functions)",
                fns.len()
            ));
        }
        if fns[identity_index]
            .0
            .iter()
            .enumerate()
            .any(|(s, &img)| s as u32 != img)
        {
            return Err(format!("function {identity_index} is not the identity"));
        }
        let mut generators = Vec::with_capacity(generator_indices.len());
        for &g in generator_indices {
            if g as usize >= fns.len() {
                return Err(format!(
                    "generator id {g} out of range ({} functions)",
                    fns.len()
                ));
            }
            generators.push(FnId(g));
        }
        Ok(Monoid {
            n_states,
            start: StateId(crate::id_u32(start_index, "machine states")),
            accepting,
            fns,
            by_fn,
            identity: FnId(crate::id_u32(identity_index, "monoid functions")),
            generators,
            memo: HashMap::new(),
            closed: false,
        })
    }
}

/// Builds the paper's Figure 2 adversarial machine over `n` states, whose
/// transition monoid is the *full* transformation monoid of size `n^n`.
///
/// * `rotate` maps state `i` to `i+1` (mod `n`),
/// * `swap` exchanges states 0 and 1,
/// * `merge` maps state 1 to state 0 (all others fixed).
///
/// State 0 is start and the sole accepting state, which keeps the machine
/// minimal (any two states are separated by a suitable rotation).
///
/// Returns the machine and its alphabet `{rotate, swap, merge}`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn adversarial_machine(n: usize) -> (Alphabet, Dfa) {
    assert!(n >= 2, "the adversarial machine needs at least two states");
    let mut sigma = Alphabet::new();
    let rotate = sigma.intern("rotate");
    let swap = sigma.intern("swap");
    let merge = sigma.intern("merge");
    let mut dfa = Dfa::new(sigma.len());
    let states: Vec<StateId> = (0..n).map(|i| dfa.add_state(i == 0)).collect();
    dfa.set_start(states[0]);
    for i in 0..n {
        dfa.set_transition(states[i], rotate, states[(i + 1) % n]);
        let swapped = match i {
            0 => 1,
            1 => 0,
            other => other,
        };
        dfa.set_transition(states[i], swap, states[swapped]);
        let merged = if i == 1 { 0 } else { i };
        dfa.set_transition(states[i], merge, states[merged]);
    }
    (sigma, dfa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bit() -> (Alphabet, Dfa) {
        let mut sigma = Alphabet::new();
        let g = sigma.intern("g");
        let k = sigma.intern("k");
        (sigma.clone(), Dfa::one_bit(&sigma, g, k))
    }

    #[test]
    fn one_bit_monoid_has_three_functions() {
        // §3.3: F_M^≡ = { f_ε, f_g, f_k }.
        let (_, dfa) = one_bit();
        let monoid = Monoid::of_dfa(&dfa);
        assert_eq!(monoid.len(), 3);
    }

    #[test]
    fn gen_kill_idempotence_and_cancellation() {
        let (sigma, dfa) = one_bit();
        let mut monoid = Monoid::lazy_of_dfa(&dfa);
        let fg = monoid.generator(sigma.lookup("g").unwrap());
        let fk = monoid.generator(sigma.lookup("k").unwrap());
        assert_eq!(monoid.compose(fg, fg), fg, "f_g ∘ f_g = f_g");
        assert_eq!(monoid.compose(fk, fk), fk, "f_k ∘ f_k = f_k");
        assert_eq!(monoid.compose(fk, fg), fk, "kill after gen kills");
        assert_eq!(monoid.compose(fg, fk), fg, "gen after kill gens");
    }

    #[test]
    fn of_word_matches_dfa_run() {
        let (sigma, dfa) = one_bit();
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        let mut monoid = Monoid::lazy_of_dfa(&dfa);
        for word in [vec![], vec![g], vec![g, k], vec![k, g, g], vec![g, k, g]] {
            let f = monoid.of_word(&word);
            let expected = dfa
                .run_from(dfa.start().unwrap(), &word)
                .expect("complete machine");
            assert_eq!(monoid.forward_class(f), expected, "word {word:?}");
            assert_eq!(monoid.is_accepting(f), dfa.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn compose_is_associative_on_small_monoid() {
        let (_, dfa) = one_bit();
        let mut monoid = Monoid::of_dfa(&dfa);
        let ids: Vec<FnId> = monoid.fn_ids().collect();
        for &a in &ids {
            for &b in &ids {
                for &c in &ids {
                    let ab_c = {
                        let ab = monoid.compose(a, b);
                        monoid.compose(ab, c)
                    };
                    let a_bc = {
                        let bc = monoid.compose(b, c);
                        monoid.compose(a, bc)
                    };
                    assert_eq!(ab_c, a_bc);
                }
            }
        }
    }

    #[test]
    fn adversarial_monoid_is_full_transformation_monoid() {
        // Figure 2 / §4: |F_M^≡| = n^n.
        for n in 2..=4usize {
            let (_, dfa) = adversarial_machine(n);
            assert_eq!(dfa.minimize().len(), n, "machine is minimal");
            let monoid = Monoid::of_dfa(&dfa);
            assert_eq!(monoid.len(), n.pow(n as u32), "n = {n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let (_, dfa) = adversarial_machine(3);
        let mut monoid = Monoid::of_dfa(&dfa);
        let e = monoid.identity();
        for f in monoid.fn_ids().collect::<Vec<_>>() {
            assert_eq!(monoid.compose(e, f), f);
            assert_eq!(monoid.compose(f, e), f);
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let (sigma, dfa) = one_bit();
        let mut monoid = Monoid::of_dfa(&dfa);
        let parts: Vec<Vec<u32>> = monoid
            .fn_ids()
            .map(|f| {
                monoid
                    .repr_fn(f)
                    .images()
                    .map(|s| s.index() as u32)
                    .collect()
            })
            .collect();
        let accepting: Vec<bool> = (0..monoid.n_states())
            .map(|i| monoid.state_accepting(StateId(i as u32)))
            .collect();
        let gens: Vec<u32> = monoid
            .generators()
            .iter()
            .map(|g| g.index() as u32)
            .collect();
        let mut rebuilt = Monoid::from_parts(
            monoid.n_states(),
            monoid.start_state().index(),
            accepting.clone(),
            parts.clone(),
            monoid.identity().index(),
            &gens,
        )
        .expect("valid parts");
        assert_eq!(rebuilt.len(), monoid.len());
        let g = sigma.lookup("g").unwrap();
        let k = sigma.lookup("k").unwrap();
        for word in [vec![], vec![g], vec![g, k], vec![k, g, g]] {
            let a = monoid.of_word(&word);
            let b = rebuilt.of_word(&word);
            assert_eq!(monoid.is_accepting(a), rebuilt.is_accepting(b), "{word:?}");
        }
        // Validation failures are typed errors, not panics.
        assert!(Monoid::from_parts(2, 5, vec![true, false], parts.clone(), 0, &gens).is_err());
        assert!(
            Monoid::from_parts(2, 0, vec![true, false], vec![vec![0, 9]], 0, &[]).is_err(),
            "out-of-range image"
        );
        assert!(
            Monoid::from_parts(2, 0, vec![true, false], vec![vec![1, 0]], 0, &[]).is_err(),
            "identity that is not the identity"
        );
        assert!(
            Monoid::from_parts(
                2,
                0,
                vec![true, false],
                vec![vec![0, 1], vec![0, 1]],
                0,
                &[]
            )
            .is_err(),
            "duplicate function"
        );
    }

    #[test]
    fn lazy_monoid_interns_on_demand() {
        let (_, dfa) = adversarial_machine(4);
        let mut monoid = Monoid::lazy_of_dfa(&dfa);
        // identity + 3 generators
        assert_eq!(monoid.len(), 4);
        let r = monoid.generator(SymbolId(0));
        let _ = monoid.compose(r, r);
        assert_eq!(monoid.len(), 5);
    }
}
