//! Language-level closures: prefixes, suffixes, and substrings.
//!
//! The paper's solvers operate over annotated domains whose words are not
//! full members of `L(M)`:
//!
//! * a **forward** solver admits *prefixes* of words in `L(M)` (`T^{M^pre}`),
//! * a **backward** solver admits *suffixes*,
//! * a **bidirectional** solver admits arbitrary *substrings*
//!   (`T^{M^sub}`, §2.3).
//!
//! All three closures of a regular language are regular; this module builds
//! their minimal DFAs.

use crate::dfa::{Dfa, StateId};
use crate::nfa::Nfa;

/// The minimal DFA accepting all *prefixes* of words in `L(m)`.
///
/// A word `w` is a prefix of `L(m)` iff some accepting state is reachable
/// from `δ(w, s₀)`, so it suffices to mark every co-reachable state
/// accepting (on the reachable part) and minimize.
pub fn prefix_closure(m: &Dfa) -> Dfa {
    let complete = m.complete();
    let co = complete.coreachable();
    let mut out = complete.clone();
    for s in out.states() {
        if co[s.index()] {
            out.set_accepting(s, true);
        }
    }
    out.minimize()
}

/// The minimal DFA accepting all *suffixes* of words in `L(m)`.
///
/// A word `w` is a suffix iff `δ(w, p)` is accepting for some state `p`
/// reachable from the start; realized with an NFA whose fresh start has
/// ε-edges to every reachable state.
pub fn suffix_closure(m: &Dfa) -> Dfa {
    closure_with(m, true, false)
}

/// The minimal DFA accepting all *substrings* of words in `L(m)`
/// (the machine `M^sub` of the paper's §2.3).
///
/// A word `w` is a substring iff there are states `p, q` with `p` reachable
/// from the start, `δ(w, p) = q`, and an accepting state reachable from `q`.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Regex};
/// use rasc_automata::closure::substring_closure;
///
/// let mut sigma = Alphabet::new();
/// sigma.intern("g");
/// sigma.intern("k");
/// let g = sigma.lookup("g").unwrap();
/// let k = sigma.lookup("k").unwrap();
/// // L = words leaving the 1-bit fact set (ends in g with no later k)
/// let m = Regex::parse("(g | k)* g", &sigma)?.compile(&sigma);
/// let sub = substring_closure(&m);
/// // every word over {g,k} is a substring of some member
/// assert!(sub.accepts(&[]));
/// assert!(sub.accepts(&[k, k]));
/// assert!(sub.accepts(&[g, k, g]));
/// # Ok::<(), rasc_automata::AutomataError>(())
/// ```
pub fn substring_closure(m: &Dfa) -> Dfa {
    closure_with(m, true, true)
}

/// Shared construction: optionally allow starting at any reachable state
/// (`any_start`) and optionally accept at any co-reachable state
/// (`any_end`).
fn closure_with(m: &Dfa, any_start: bool, any_end: bool) -> Dfa {
    let complete = m.complete();
    // Trim to useful states: reachable AND co-reachable. Starting or ending
    // in a useless state can never witness a substring.
    let co = complete.coreachable();
    let mut nfa = Nfa::new(complete.alphabet_len());
    let states: Vec<_> = complete.states().map(|_| nfa.add_state()).collect();
    let fresh_start = nfa.add_state();
    nfa.set_start(fresh_start);

    let reach = reachable_states(&complete);
    let useful = |s: StateId| reach[s.index()] && co[s.index()];

    for s in complete.states() {
        if !useful(s) {
            continue;
        }
        if any_start || Some(s) == complete.start() {
            nfa.add_epsilon(fresh_start, states[s.index()]);
        }
        let accepting = if any_end {
            co[s.index()]
        } else {
            complete.is_accepting(s)
        };
        nfa.set_accepting(states[s.index()], accepting);
        for sym_idx in 0..complete.alphabet_len() {
            let sym = crate::alphabet::SymbolId(sym_idx as u32);
            let t = crate::invariant(
                complete.delta(s, sym),
                "complete DFA defines every transition",
            );
            if useful(t) {
                nfa.add_transition(states[s.index()], sym, states[t.index()]);
            }
        }
    }
    crate::compile_cache::determinize_minimized(&nfa)
}

fn reachable_states(m: &Dfa) -> Vec<bool> {
    let mut seen = vec![false; m.len()];
    let mut stack = Vec::new();
    if let Some(s) = m.start() {
        seen[s.index()] = true;
        stack.push(s);
    }
    while let Some(s) = stack.pop() {
        for sym_idx in 0..m.alphabet_len() {
            if let Some(t) = m.delta(s, crate::alphabet::SymbolId(sym_idx as u32)) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    fn setup() -> (Alphabet, Dfa) {
        let sigma = Alphabet::from_names(["a", "b", "c"]);
        // L = a b c
        let m = Regex::parse("a b c", &sigma).unwrap().compile(&sigma);
        (sigma, m)
    }

    #[test]
    fn prefixes_of_abc() {
        let (sigma, m) = setup();
        let (a, b, c) = (
            sigma.lookup("a").unwrap(),
            sigma.lookup("b").unwrap(),
            sigma.lookup("c").unwrap(),
        );
        let pre = prefix_closure(&m);
        for w in [vec![], vec![a], vec![a, b], vec![a, b, c]] {
            assert!(pre.accepts(&w), "{w:?} should be a prefix");
        }
        for w in [vec![b], vec![a, c], vec![a, b, c, c]] {
            assert!(!pre.accepts(&w), "{w:?} should not be a prefix");
        }
    }

    #[test]
    fn suffixes_of_abc() {
        let (sigma, m) = setup();
        let (a, b, c) = (
            sigma.lookup("a").unwrap(),
            sigma.lookup("b").unwrap(),
            sigma.lookup("c").unwrap(),
        );
        let suf = suffix_closure(&m);
        for w in [vec![], vec![c], vec![b, c], vec![a, b, c]] {
            assert!(suf.accepts(&w), "{w:?} should be a suffix");
        }
        for w in [vec![a], vec![b], vec![a, b]] {
            assert!(!suf.accepts(&w), "{w:?} should not be a suffix");
        }
    }

    #[test]
    fn substrings_of_abc() {
        let (sigma, m) = setup();
        let (a, b, c) = (
            sigma.lookup("a").unwrap(),
            sigma.lookup("b").unwrap(),
            sigma.lookup("c").unwrap(),
        );
        let sub = substring_closure(&m);
        for w in [
            vec![],
            vec![a],
            vec![b],
            vec![c],
            vec![a, b],
            vec![b, c],
            vec![a, b, c],
        ] {
            assert!(sub.accepts(&w), "{w:?} should be a substring");
        }
        for w in [vec![a, c], vec![c, a], vec![b, b]] {
            assert!(!sub.accepts(&w), "{w:?} should not be a substring");
        }
    }

    #[test]
    fn closures_of_starred_language_cover_everything() {
        let sigma = Alphabet::from_names(["a", "b"]);
        let m = Regex::parse("(a | b)*", &sigma).unwrap().compile(&sigma);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        for closure in [
            prefix_closure(&m),
            suffix_closure(&m),
            substring_closure(&m),
        ] {
            assert!(closure.accepts(&[]));
            assert!(closure.accepts(&[a, b, b, a]));
        }
    }

    #[test]
    fn substring_closure_of_empty_language_is_empty() {
        let sigma = Alphabet::from_names(["a"]);
        // DFA with no accepting state.
        let mut m = Dfa::new(sigma.len());
        let s = m.add_state(false);
        m.set_start(s);
        m.set_transition(s, sigma.lookup("a").unwrap(), s);
        let sub = substring_closure(&m);
        assert!(!sub.accepts(&[]));
        assert!(!sub.accepts(&[sigma.lookup("a").unwrap()]));
    }
}
