//! Memoized subset construction: the `determinize().minimize()` pipeline
//! keyed by NFA structure.
//!
//! Spec lowering and the language closures rebuild identical intermediate
//! NFAs over and over — every `limits`/`declare` replay, every fork that
//! re-lowers the same property spec, every closure of the same machine —
//! and subset construction is the expensive step. A [`RegexCompiler`]
//! caches the finished minimal DFA keyed by the NFA's *full structure*
//! (not just a hash), so a collision can never substitute a wrong
//! automaton: equal keys mean the machines are identical state-for-state,
//! and the cached DFA is bit-for-bit what the pipeline would rebuild.
//!
//! [`Regex::compile`](crate::Regex::compile) and the
//! [`closure`](crate::closure) pipelines route through one process-wide
//! compiler; cache hits are observable as the
//! `automata.determinize.cache_hits` counter (misses still count
//! `automata.determinize.runs`).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::dfa::Dfa;
use crate::nfa::{Nfa, NfaStateId};

/// Canonical flattening of an NFA: every field subset construction reads,
/// in construction order. Serves as its own collision-proof cache key.
#[derive(PartialEq, Eq, Hash)]
struct NfaKey {
    alphabet_len: usize,
    start: Option<u32>,
    /// Per state: accepting flag, labeled transitions, ε-targets, with
    /// tag bits distinguishing the three record kinds.
    words: Vec<u64>,
}

const TAG_STATE: u64 = 1 << 62;
const TAG_TRANS: u64 = 2 << 62;
const TAG_EPS: u64 = 3 << 62;

impl NfaKey {
    fn of(nfa: &Nfa) -> NfaKey {
        let mut words = Vec::with_capacity(nfa.len() * 2);
        for i in 0..nfa.len() {
            let s = NfaStateId(crate::id_u32(i, "NFA states"));
            words.push(TAG_STATE | u64::from(nfa.is_accepting(s)));
            for (sym, to) in nfa.transitions(s) {
                words.push(TAG_TRANS | (u64::from(sym.0) << 32) | u64::from(to.0));
            }
            for to in nfa.epsilons(s) {
                words.push(TAG_EPS | u64::from(to.0));
            }
        }
        NfaKey {
            alphabet_len: nfa.alphabet_len(),
            start: nfa.start().map(|s| s.0),
            words,
        }
    }
}

/// A memoizing wrapper around the `determinize().minimize()` pipeline.
///
/// Most callers want the process-wide instance via
/// [`determinize_minimized`]; a private compiler is useful in tests and
/// anywhere cache lifetime should be scoped.
#[derive(Default)]
pub struct RegexCompiler {
    cache: HashMap<NfaKey, Dfa>,
}

/// Safety valve against unbounded growth under adversarial spec churn;
/// far above what any real spec set lowers.
const MAX_CACHED: usize = 4096;

impl RegexCompiler {
    /// An empty compiler.
    pub fn new() -> RegexCompiler {
        RegexCompiler::default()
    }

    /// The minimal complete DFA for `nfa`'s language — from the cache
    /// when an identical machine was compiled before, by subset
    /// construction otherwise.
    pub fn compile(&mut self, nfa: &Nfa) -> Dfa {
        let key = NfaKey::of(nfa);
        if let Some(dfa) = self.cache.get(&key) {
            rasc_obs::counter("automata.determinize.cache_hits", 1);
            return dfa.clone();
        }
        let dfa = nfa.determinize().minimize();
        if self.cache.len() >= MAX_CACHED {
            self.cache.clear();
        }
        self.cache.insert(key, dfa.clone());
        dfa
    }

    /// Number of distinct machines currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Runs `nfa` through the process-wide [`RegexCompiler`].
pub fn determinize_minimized(nfa: &Nfa) -> Dfa {
    static SHARED: OnceLock<Mutex<RegexCompiler>> = OnceLock::new();
    let shared = SHARED.get_or_init(|| Mutex::new(RegexCompiler::new()));
    let mut compiler = shared.lock().unwrap_or_else(PoisonError::into_inner);
    compiler.compile(nfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    #[test]
    fn identical_nfas_hit_and_return_the_same_dfa() {
        let sigma = Alphabet::from_names(["a", "b"]);
        let re = Regex::parse("a (a | b)* b", &sigma).unwrap();
        let mut compiler = RegexCompiler::new();
        let first = compiler.compile(&re.to_nfa(&sigma));
        assert_eq!(compiler.len(), 1);
        let second = compiler.compile(&re.to_nfa(&sigma));
        assert_eq!(compiler.len(), 1, "identical machine must not re-enter");
        assert_eq!(first, second, "cached DFA must be bit-identical");
    }

    #[test]
    fn structurally_different_nfas_miss() {
        let sigma = Alphabet::from_names(["a", "b"]);
        let mut compiler = RegexCompiler::new();
        let a = Regex::parse("a b", &sigma).unwrap();
        let b = Regex::parse("b a", &sigma).unwrap();
        let da = compiler.compile(&a.to_nfa(&sigma));
        let db = compiler.compile(&b.to_nfa(&sigma));
        assert_eq!(compiler.len(), 2);
        let (a, b) = (sigma.lookup("a").unwrap(), sigma.lookup("b").unwrap());
        assert!(da.accepts(&[a, b]) && !da.accepts(&[b, a]));
        assert!(db.accepts(&[b, a]) && !db.accepts(&[a, b]));
    }

    #[test]
    fn accepting_flag_is_part_of_the_key() {
        let sigma = Alphabet::from_names(["a"]);
        let mut compiler = RegexCompiler::new();
        let mut nfa = Nfa::new(sigma.len());
        let s = nfa.add_state();
        nfa.set_start(s);
        let rejecting = compiler.compile(&nfa);
        nfa.set_accepting(s, true);
        let accepting = compiler.compile(&nfa);
        assert_eq!(compiler.len(), 2);
        assert!(!rejecting.accepts(&[]));
        assert!(accepting.accepts(&[]));
    }
}
