//! Interned alphabets of named annotation symbols.

use std::collections::HashMap;
use std::fmt;

/// An interned annotation symbol.
///
/// Symbols are *names* (e.g. `seteuid_zero`, `g`, `open`) interned in an
/// [`Alphabet`]; the id is only meaningful relative to the alphabet that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// Builds a symbol id from a raw index. The caller must ensure the
    /// index is valid for the alphabet it will be used with.
    pub fn from_index(index: usize) -> SymbolId {
        SymbolId(crate::id_u32(index, "symbols"))
    }

    /// The symbol's index within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A finite alphabet of named symbols.
///
/// Annotation languages in the paper range over program-level events
/// (`seteuid(0)`, `execl`, gen/kill facts, type-constructor brackets), so the
/// alphabet maps human-readable names to dense ids.
///
/// # Example
///
/// ```
/// use rasc_automata::Alphabet;
///
/// let mut sigma = Alphabet::new();
/// let g = sigma.intern("g");
/// assert_eq!(sigma.intern("g"), g); // idempotent
/// assert_eq!(sigma.name(g), "g");
/// assert_eq!(sigma.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, SymbolId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet containing the given names, in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymbolId(crate::id_u32(self.names.len(), "symbols"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a symbol by name without interning.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this alphabet.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.names.len()).map(|i| SymbolId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_ne!(x, y);
        assert_eq!(a.intern("x"), x);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lookup_finds_only_interned() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        assert_eq!(a.lookup("x"), Some(x));
        assert_eq!(a.lookup("z"), None);
    }

    #[test]
    fn from_names_preserves_order() {
        let a = Alphabet::from_names(["a", "b", "c"]);
        let ids: Vec<_> = a.symbols().collect();
        assert_eq!(a.name(ids[0]), "a");
        assert_eq!(a.name(ids[2]), "c");
    }
}
