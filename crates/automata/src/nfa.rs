//! Nondeterministic finite automata with epsilon transitions.

use std::collections::{BTreeSet, HashMap};

use crate::alphabet::SymbolId;
use crate::dfa::Dfa;

/// A state of an [`Nfa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NfaStateId(pub(crate) u32);

impl NfaStateId {
    /// The state's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Default)]
struct NfaState {
    /// Labeled transitions `(symbol, target)`.
    trans: Vec<(SymbolId, NfaStateId)>,
    /// Epsilon transitions.
    eps: Vec<NfaStateId>,
    accepting: bool,
}

/// A nondeterministic finite automaton with ε-transitions over an interned
/// alphabet.
///
/// Used as the intermediate representation between [`crate::Regex`] /
/// language closures and the deterministic [`Dfa`] the solver consumes.
///
/// # Example
///
/// ```
/// use rasc_automata::{Alphabet, Nfa};
///
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("a");
/// let mut nfa = Nfa::new(sigma.len());
/// let s0 = nfa.add_state();
/// let s1 = nfa.add_state();
/// nfa.set_start(s0);
/// nfa.add_transition(s0, a, s1);
/// nfa.set_accepting(s1, true);
/// assert!(nfa.accepts(&[a]));
/// assert!(!nfa.accepts(&[]));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet_len: usize,
    states: Vec<NfaState>,
    start: Option<NfaStateId>,
}

impl Nfa {
    /// Creates an empty NFA over an alphabet with `alphabet_len` symbols.
    pub fn new(alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            states: Vec::new(),
            start: None,
        }
    }

    /// Number of symbols in the alphabet this NFA ranges over.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Adds a fresh, non-accepting state.
    pub fn add_state(&mut self) -> NfaStateId {
        let id = NfaStateId(crate::id_u32(self.states.len(), "NFA states"));
        self.states.push(NfaState::default());
        id
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NFA has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: NfaStateId) {
        self.start = Some(s);
    }

    /// The start state, if one has been set.
    pub fn start(&self) -> Option<NfaStateId> {
        self.start
    }

    /// Marks or unmarks `s` as accepting.
    pub fn set_accepting(&mut self, s: NfaStateId, accepting: bool) {
        self.states[s.index()].accepting = accepting;
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: NfaStateId) -> bool {
        self.states[s.index()].accepting
    }

    /// Adds a labeled transition.
    pub fn add_transition(&mut self, from: NfaStateId, sym: SymbolId, to: NfaStateId) {
        debug_assert!(sym.index() < self.alphabet_len, "symbol outside alphabet");
        self.states[from.index()].trans.push((sym, to));
    }

    /// Adds an ε-transition.
    pub fn add_epsilon(&mut self, from: NfaStateId, to: NfaStateId) {
        self.states[from.index()].eps.push(to);
    }

    /// Iterates over the labeled transitions leaving `s`.
    pub fn transitions(&self, s: NfaStateId) -> impl Iterator<Item = (SymbolId, NfaStateId)> + '_ {
        self.states[s.index()].trans.iter().copied()
    }

    /// Iterates over the ε-transitions leaving `s`.
    pub fn epsilons(&self, s: NfaStateId) -> impl Iterator<Item = NfaStateId> + '_ {
        self.states[s.index()].eps.iter().copied()
    }

    /// The ε-closure of a set of states, as a sorted set.
    pub fn epsilon_closure(
        &self,
        seed: impl IntoIterator<Item = NfaStateId>,
    ) -> BTreeSet<NfaStateId> {
        let mut closure: BTreeSet<NfaStateId> = BTreeSet::new();
        let mut stack: Vec<NfaStateId> = Vec::new();
        for s in seed {
            if closure.insert(s) {
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for t in self.epsilons(s) {
                if closure.insert(t) {
                    stack.push(t);
                }
            }
        }
        closure
    }

    /// Whether the NFA accepts `word`.
    ///
    /// Runs the standard subset simulation; intended for tests and small
    /// inputs, not hot paths.
    pub fn accepts(&self, word: &[SymbolId]) -> bool {
        let Some(start) = self.start else {
            return false;
        };
        let mut current = self.epsilon_closure([start]);
        for &sym in word {
            let mut next = BTreeSet::new();
            for &s in &current {
                for (t_sym, t) in self.transitions(s) {
                    if t_sym == sym {
                        next.insert(t);
                    }
                }
            }
            current = self.epsilon_closure(next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&s| self.is_accepting(s))
    }

    /// Determinizes this NFA via subset construction.
    ///
    /// The resulting DFA is *complete*: a dead state is added if necessary so
    /// that every state has a transition on every symbol. The result is not
    /// minimized; call [`Dfa::minimize`] for the canonical machine.
    pub fn determinize(&self) -> Dfa {
        let _span = rasc_obs::span("automata.determinize");
        let start_set: Vec<NfaStateId> = match self.start {
            Some(s) => self.epsilon_closure([s]).into_iter().collect(),
            None => Vec::new(),
        };

        let mut dfa = Dfa::new(self.alphabet_len);
        let mut subset_ids: HashMap<Vec<NfaStateId>, crate::dfa::StateId> = HashMap::new();
        let mut worklist: Vec<Vec<NfaStateId>> = Vec::new();

        let accepting = |set: &[NfaStateId]| set.iter().any(|&s| self.is_accepting(s));

        let d0 = dfa.add_state(accepting(&start_set));
        dfa.set_start(d0);
        subset_ids.insert(start_set.clone(), d0);
        worklist.push(start_set);

        while let Some(set) = worklist.pop() {
            let from = subset_ids[&set];
            for sym_idx in 0..self.alphabet_len {
                let sym = SymbolId(sym_idx as u32);
                let mut moved = BTreeSet::new();
                for &s in &set {
                    for (t_sym, t) in self.transitions(s) {
                        if t_sym == sym {
                            moved.insert(t);
                        }
                    }
                }
                let next: Vec<NfaStateId> = self.epsilon_closure(moved).into_iter().collect();
                let to = *subset_ids.entry(next.clone()).or_insert_with(|| {
                    let id = dfa.add_state(accepting(&next));
                    worklist.push(next);
                    id
                });
                dfa.set_transition(from, sym, to);
            }
        }
        rasc_obs::counter("automata.determinize.runs", 1);
        rasc_obs::histogram("automata.determinize.states", dfa.len() as u64);
        dfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> (Alphabet, SymbolId, SymbolId) {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        (sigma, a, b)
    }

    /// NFA for `a b* a` built by hand.
    fn abstar_a(a: SymbolId, b: SymbolId, alphabet_len: usize) -> Nfa {
        let mut nfa = Nfa::new(alphabet_len);
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.set_start(s0);
        nfa.add_transition(s0, a, s1);
        nfa.add_transition(s1, b, s1);
        nfa.add_transition(s1, a, s2);
        nfa.set_accepting(s2, true);
        nfa
    }

    #[test]
    fn accepts_simulates_correctly() {
        let (sigma, a, b) = ab();
        let nfa = abstar_a(a, b, sigma.len());
        assert!(nfa.accepts(&[a, a]));
        assert!(nfa.accepts(&[a, b, b, a]));
        assert!(!nfa.accepts(&[a]));
        assert!(!nfa.accepts(&[b, a]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn epsilon_closure_follows_chains() {
        let (sigma, _, _) = ab();
        let mut nfa = Nfa::new(sigma.len());
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_epsilon(s0, s1);
        nfa.add_epsilon(s1, s2);
        let c = nfa.epsilon_closure([s0]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn determinize_agrees_with_nfa() {
        let (sigma, a, b) = ab();
        let nfa = abstar_a(a, b, sigma.len());
        let dfa = nfa.determinize();
        for word in [
            vec![],
            vec![a],
            vec![a, a],
            vec![a, b, a],
            vec![b],
            vec![a, b, b, b, a],
            vec![a, a, a],
        ] {
            assert_eq!(dfa.accepts(&word), nfa.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn nfa_without_start_rejects_everything() {
        let (sigma, a, _) = ab();
        let mut nfa = Nfa::new(sigma.len());
        let s = nfa.add_state();
        nfa.set_accepting(s, true);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[a]));
    }
}
