//! Error types for the automata crate.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, AutomataError>;

/// Errors produced while parsing regexes or property specifications, or
/// while assembling automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A regular expression failed to parse.
    ParseRegex {
        /// Human-readable description of the failure.
        message: String,
        /// Byte offset into the input where the failure occurred.
        offset: usize,
    },
    /// A property specification failed to parse.
    ParseSpec {
        /// Human-readable description of the failure.
        message: String,
        /// Line number (1-based) where the failure occurred.
        line: usize,
    },
    /// A symbol name was used that is not in the alphabet.
    UnknownSymbol(String),
    /// A state name was referenced but never declared.
    UnknownState(String),
    /// A specification declared the same transition twice with different
    /// targets (the machine must be deterministic).
    NondeterministicSpec {
        /// The state carrying the conflicting transitions.
        state: String,
        /// The symbol with two distinct targets.
        symbol: String,
    },
    /// The specification has no start state.
    MissingStartState,
    /// A regex nests parenthesised groups deeper than the supported limit.
    DepthExceeded {
        /// The configured nesting limit.
        limit: usize,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::ParseRegex { message, offset } => {
                write!(f, "regex parse error at offset {offset}: {message}")
            }
            AutomataError::ParseSpec { message, line } => {
                write!(f, "spec parse error at line {line}: {message}")
            }
            AutomataError::UnknownSymbol(name) => write!(f, "unknown symbol `{name}`"),
            AutomataError::UnknownState(name) => write!(f, "unknown state `{name}`"),
            AutomataError::NondeterministicSpec { state, symbol } => write!(
                f,
                "state `{state}` has two transitions on `{symbol}` with different targets"
            ),
            AutomataError::MissingStartState => write!(f, "specification has no start state"),
            AutomataError::DepthExceeded { limit } => {
                write!(
                    f,
                    "groups nest deeper than the supported limit of {limit} levels"
                )
            }
        }
    }
}

impl std::error::Error for AutomataError {}
