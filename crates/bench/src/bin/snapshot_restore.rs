//! Warm restart (snapshot restore) vs cold replay on dense
//! regular-reachability digraphs: a solved base session is serialized once
//! with the crash-safe snapshot container, then brought back either by
//! deserializing the solved form (`Session::restore_bytes`) or by
//! rebuilding and re-solving every constraint from nothing.
//!
//! The dense shape (out-degree 16 over the adversarial 4-state monoid) is
//! the warm-restart stress case: cold solving examines roughly
//! `out_degree` candidate facts per annotation class that survives into
//! the solved form, while the restore path is linear in the solved form
//! itself.
//!
//! Emits `BENCH_snapshot.json` (one row per rung, 2k → 32k constraints)
//! and enforces the acceptance bound: at the largest rung the warm
//! restart must be at least 5× faster than the cold replay.
//!
//! Usage: `snapshot_restore [out.json]`.

use std::time::Duration;

use rasc_automata::{adversarial_machine, Dfa};
use rasc_bench::constraints_workload::{dense, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{SetExpr, System, VarId};
use rasc_devtools::bench;
use rasc_inc::json::{obj, Json};
use rasc_inc::Session;

fn build_solved(machine: &Dfa, wl: &EdgeListWorkload) -> Session<MonoidAlgebra> {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<VarId> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    Session::from_system(sys)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_snapshot.json".to_owned());
    let (sigma, machine) = adversarial_machine(4);

    println!("rasc-inc: warm restart (snapshot restore) vs cold replay");
    println!(
        "{:>12} {:>8} {:>10} {:>14} {:>14} {:>9}",
        "graph", "edges", "snap (KB)", "replay (ms)", "restore (ms)", "speedup"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut last_speedup = 0.0_f64;
    // out_degree * n_vars edges per rung: 2k → 8k → 32k constraints.
    let shapes = [(125usize, 16usize), (500, 16), (2000, 16)];
    for (i, &(n_vars, out_degree)) in shapes.iter().enumerate() {
        let wl = dense(n_vars, out_degree, &sigma, 7 + i as u64);
        let sink = VarId::from_index(wl.sink);

        // The durable artifact: one solved form, serialized once.
        let base = build_solved(&machine, &wl);
        let bytes = base.snapshot_bytes().expect("solved session snapshots");

        // Cold replay: rebuild the system and re-solve every constraint.
        let replay = bench("replay", 5, Duration::from_millis(400), || {
            let mut sess = build_solved(&machine, &wl);
            sess.nonempty(sink)
        });

        // Warm restart: deserialize the solved form and answer.
        let restore = bench("restore", 5, Duration::from_millis(400), || {
            let mut sess = Session::<MonoidAlgebra>::restore_bytes(&bytes).expect("valid snapshot");
            sess.nonempty(sink)
        });

        let speedup = replay.median_ns / restore.median_ns;
        last_speedup = speedup;
        println!(
            "{:>12} {:>8} {:>10.1} {:>14.3} {:>14.3} {:>8.1}x",
            format!("{n_vars}x{out_degree}"),
            wl.edges.len(),
            bytes.len() as f64 / 1024.0,
            replay.median_ns / 1e6,
            restore.median_ns / 1e6,
            speedup
        );
        rows.push(obj([
            ("n_vars", Json::from(n_vars)),
            ("out_degree", Json::from(out_degree)),
            ("constraints", Json::from(wl.edges.len())),
            ("snapshot_bytes", Json::from(bytes.len())),
            ("replay_median_ns", Json::Num(replay.median_ns)),
            ("restore_median_ns", Json::Num(restore.median_ns)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let report = obj([
        ("bench", Json::from("snapshot_restore_vs_replay")),
        ("machine", Json::from("adversarial(4)")),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    assert!(
        last_speedup >= 5.0,
        "warm restart must be ≥5× faster than cold replay at the largest \
         rung (got {last_speedup:.1}×)"
    );
}
