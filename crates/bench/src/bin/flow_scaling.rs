//! The §9 flow-analysis scaling experiment: the bracket automaton of the
//! primary analysis (§7.2.2) grows with the nesting depth of the largest
//! type, and with it the bidirectional solver's annotation classes — the
//! paper's reason to predict that "a bidirectional solver is unlikely to
//! scale for this problem".
//!
//! Usage: `flow_scaling [max_depth] [chains]` (defaults 7 and 4).

use rasc_bench::flow_workload::nested_pairs_program;
use rasc_bench::{secs, timed};
use rasc_core::SolverStats;
use rasc_flow::{DualAnalysis, FlowAnalysis, Program};

fn main() {
    let max_depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let chains: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    println!("§9: flow-analysis scaling with type depth ({chains} chains)");
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>12} {:>10}",
        "depth", "primary (s)", "anns", "facts", "dual (s)", "facts"
    );
    for depth in 1..=max_depth {
        let src = nested_pairs_program(depth, chains);
        let program = Program::parse(&src).expect("generated program parses");

        let ((p_stats, ok_p), t_primary) = timed(|| {
            let mut a = FlowAnalysis::new(&program).expect("well-typed");
            a.solve();
            let ok = a.flows("SRC0", "DST0") && !a.flows("SRC0", "DST1");
            (a.system().stats(), ok)
        });
        let ((d_stats, ok_d), t_dual) = timed(|| {
            let mut d = DualAnalysis::new(&program).expect("well-typed");
            d.solve();
            let ok = d.flows("SRC0", "DST0") && !d.flows("SRC0", "DST1");
            (d.system().stats(), ok)
        });
        assert!(ok_p && ok_d, "depth {depth}: flows must hold");
        let SolverStats {
            annotations: p_anns,
            facts_processed: p_facts,
            ..
        } = p_stats;
        println!(
            "{:>6} | {:>12} {:>10} {:>10} | {:>12} {:>10}",
            depth,
            secs(t_primary),
            p_anns,
            p_facts,
            secs(t_dual),
            d_stats.facts_processed
        );
    }
    println!();
    println!("(primary = pairs as bracket annotations: the automaton and the");
    println!(" interned annotation count grow with type depth; dual = pairs as");
    println!(" term constructors: annotation growth tracks call depth instead)");
}
