//! The §5.1 online/separate-analysis advantage: bidirectional solving
//! accepts constraints incrementally ("constraints can be solved online"),
//! so analyzing a program that arrives in pieces (files, compilation
//! units) costs one incremental pass instead of a from-scratch re-solve
//! per piece.
//!
//! Usage: `online_bench [size] [chunks]` (defaults 20000 and 8).

use rasc_automata::PropertySpec;
use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_bench::{secs, timed};
use rasc_cfgir::{Cfg, EdgeLabel};
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::{SetExpr, System, VarId, Variance};
use rasc_pdmc::properties;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let chunks: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let spec = PropertySpec::parse(properties::SIMPLE_PRIVILEGE).expect("valid");
    let (sigma, machine) = spec.compile();
    let names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();
    let wl = WorkloadConfig::sized(size, names, 0xD1CE);
    let program = generate(&wl);
    let cfg = Cfg::build(&program).expect("valid program");

    // Pre-compute the constraint stream: (kind, a, b, event?) tuples in
    // `chunks` slices (edges and call sites interleaved by index).
    #[derive(Clone)]
    enum Item {
        Edge(usize, usize, Option<String>),
        Call(usize, usize, usize, usize), // site, call, entry(exit at +1?), ret — encoded below
    }
    let mut items: Vec<Item> = Vec::new();
    for (from, to, label) in cfg.edges() {
        let ev = match label {
            EdgeLabel::Plain => None,
            EdgeLabel::Event { name, .. } => sigma.lookup(name).map(|_| name.clone()),
        };
        items.push(Item::Edge(from.index(), to.index(), ev));
    }
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        items.push(Item::Call(
            site.id.index(),
            site.call_node.index(),
            callee.entry.index() * cfg.num_nodes() + callee.exit.index(),
            site.return_node.index(),
        ));
    }
    let entry_node = cfg.entry("main").expect("main").entry.index();
    let n_nodes = cfg.num_nodes();

    let apply = |sys: &mut System<MonoidAlgebra>, vars: &[VarId], item: &Item| match item {
        Item::Edge(a, b, ev) => {
            let ann = match ev {
                Some(name) => {
                    let sym = sigma.lookup(name).expect("known");
                    sys.algebra().symbol(sym)
                }
                None => sys.algebra().identity(),
            };
            sys.add_ann(SetExpr::var(vars[*a]), SetExpr::var(vars[*b]), ann)
                .expect("well-formed");
        }
        Item::Call(site, call, packed, ret) => {
            let (entry, exit) = (packed / n_nodes, packed % n_nodes);
            let o_i = sys.constructor(&format!("o{site}"), &[Variance::Covariant]);
            sys.add(
                SetExpr::cons_vars(o_i, [vars[*call]]),
                SetExpr::var(vars[entry]),
            )
            .expect("well-formed");
            sys.add(SetExpr::proj(o_i, 0, vars[exit]), SetExpr::var(vars[*ret]))
                .expect("well-formed");
        }
    };
    let fresh = |items: &[Item]| -> System<MonoidAlgebra> {
        let mut sys = System::new(MonoidAlgebra::new(&machine));
        let vars: Vec<VarId> = (0..n_nodes).map(|i| sys.var(&format!("S{i}"))).collect();
        let pc = sys.constructor("pc", &[]);
        sys.add(SetExpr::cons(pc, []), SetExpr::var(vars[entry_node]))
            .expect("well-formed");
        for item in items {
            apply(&mut sys, &vars, item);
        }
        sys.solve();
        sys
    };

    println!(
        "§5.1: online vs from-scratch solving ({} constraints in {chunks} chunks)",
        items.len()
    );
    let chunk_size = items.len().div_ceil(chunks);

    // Online: one system, add a chunk, re-solve, repeat.
    let (_, online) = timed(|| {
        let mut sys = System::new(MonoidAlgebra::new(&machine));
        let vars: Vec<VarId> = (0..n_nodes).map(|i| sys.var(&format!("S{i}"))).collect();
        let pc = sys.constructor("pc", &[]);
        sys.add(SetExpr::cons(pc, []), SetExpr::var(vars[entry_node]))
            .expect("well-formed");
        for chunk in items.chunks(chunk_size) {
            for item in chunk {
                apply(&mut sys, &vars, item);
            }
            sys.solve(); // intermediate results available here
        }
        sys.stats().lower_bounds
    });

    // Offline: rebuild and re-solve the growing prefix each time (what a
    // solver without online support must do to offer the same
    // intermediate results).
    let (_, offline) = timed(|| {
        let mut total = 0;
        for k in 1..=chunks {
            let upto = (k * chunk_size).min(items.len());
            let sys = fresh(&items[..upto]);
            total = sys.stats().lower_bounds;
        }
        total
    });

    println!("online (incremental): {} s", secs(online));
    println!("offline (rebuild ×{chunks}): {} s", secs(offline));
    println!(
        "speedup: {:.1}×",
        offline.as_secs_f64() / online.as_secs_f64().max(1e-9)
    );
}
