//! Regenerates the Figure 2 / §4 observation: the rotate/swap/merge
//! machine's transition monoid is the *full* transformation monoid, so
//! `|F_M^≡| = |S|^{|S|}` — superexponential in the machine size. This is
//! the worst case for bidirectional solving.
//!
//! Usage: `fig2_adversarial [max_n]` (default 6; n=7 takes a few seconds
//! and ~1 GB).

use rasc_automata::{adversarial_machine, Monoid};
use rasc_bench::{secs, timed};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    println!("Figure 2 / §4: adversarial rotate/swap/merge machines");
    println!(
        "{:>4} {:>12} {:>14} {:>14}",
        "|S|", "|F_M^≡|", "|S|^|S|", "closure time"
    );
    for n in 2..=max_n {
        let (_, machine) = adversarial_machine(n);
        assert_eq!(machine.minimize().len(), n, "machine is minimal");
        let (monoid, elapsed) = timed(|| Monoid::of_dfa(&machine));
        println!(
            "{:>4} {:>12} {:>14} {:>14}",
            n,
            monoid.len(),
            (n as u64).pow(n as u32),
            secs(elapsed)
        );
        assert_eq!(monoid.len() as u64, (n as u64).pow(n as u32));
    }
    println!();
    println!("(the paper's point: bidirectional solving can pay |S|^|S| derived");
    println!(" annotations, while forward/backward solving pays only |S| — see");
    println!(" the solver_directions binary)");
}
