//! Regenerates the paper's **Table 1**: the process-privilege experiment.
//!
//! Paper setup: the full privilege property (11 states, 9 symbols) checked
//! on VixieCron (4k LoC), At (6k), Sendmail (222k), Apache (229k), with
//! BANSHEE (annotated constraints) vs MOPS (direct pushdown model
//! checker). Here: synthetic MiniImp packages at the same statement
//! counts, the reconstructed privilege property, and three engines —
//! the bidirectional constraint solver (BANSHEE's strategy), the forward
//! constraint solver (§5), and the direct PDS `post*` checker (the MOPS
//! stand-in).
//!
//! Usage: `table1 [--quick]` (`--quick` divides sizes by 10).

use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_bench::{secs, timed};
use rasc_cfgir::{Cfg, EdgeLabel};
use rasc_core::forward::ForwardSystem;
use rasc_core::Variance;
use rasc_pdmc::{properties, ConstraintChecker};
use rasc_pushdown::PdsChecker;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 10 } else { 1 };
    let (sigma, property) = properties::full_privilege_property();
    let event_names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();

    let packages = [
        ("VixieCron-like", 4_000usize, 2usize),
        ("At-like", 6_000, 2),
        ("Sendmail-like", 222_000, 1),
        ("Apache-like", 229_000, 1),
    ];

    println!("Table 1 (reproduction): process privilege property");
    println!(
        "property: {} states ({} minimized), {} symbols",
        property.len(),
        property.minimize().len(),
        sigma.len()
    );
    println!(
        "{:<16} {:>8} {:>9} {:>6} {:>12} {:>12} {:>12}",
        "Benchmark", "Size", "Programs", "Viol?", "bidi (s)", "forward (s)", "pds/MOPS (s)"
    );

    for (name, size, programs) in packages {
        let size = size / scale;
        let mut bidi_total = std::time::Duration::ZERO;
        let mut fwd_total = std::time::Duration::ZERO;
        let mut pds_total = std::time::Duration::ZERO;
        let mut any_violation = false;
        let mut actual_size = 0;
        for pnum in 0..programs {
            let wl =
                WorkloadConfig::sized(size / programs, event_names.clone(), 0xC0FFEE + pnum as u64);
            let program = generate(&wl);
            actual_size += program.num_stmts();
            let cfg = Cfg::build(&program).expect("generated programs are valid");

            // Engine 1: bidirectional annotated constraints (BANSHEE).
            let (bidi_violations, t) = timed(|| {
                let mut checker =
                    ConstraintChecker::new(&cfg, &sigma, &property, "main").expect("main exists");
                checker.solve();
                checker.violations().len()
            });
            bidi_total += t;

            // Engine 2: forward annotated constraints (§5).
            let (fwd_violations, t) = timed(|| forward_check(&cfg, &sigma, &property));
            fwd_total += t;

            // Engine 3: direct pushdown saturation (MOPS stand-in).
            let (pds_violations, t) = timed(|| {
                PdsChecker::new(&cfg, &sigma, &property, "main")
                    .expect("main exists")
                    .run()
                    .len()
            });
            pds_total += t;

            assert_eq!(
                bidi_violations > 0,
                pds_violations > 0,
                "engines must agree on {name} program {pnum}"
            );
            assert_eq!(bidi_violations > 0, fwd_violations > 0);
            any_violation |= bidi_violations > 0;
        }
        println!(
            "{:<16} {:>8} {:>9} {:>6} {:>12} {:>12} {:>12}",
            name,
            actual_size,
            programs,
            if any_violation { "yes" } else { "no" },
            secs(bidi_total),
            secs(fwd_total),
            secs(pds_total)
        );
    }
    println!();
    println!("paper (2.0 GHz Core Duo): VixieCron .52/.57, At .52/.62, Sendmail 2.3/5.1, Apache .6/.7 (BANSHEE/MOPS seconds)");
}

/// The §6.1 encoding on the forward solver.
fn forward_check(
    cfg: &Cfg,
    sigma: &rasc_automata::Alphabet,
    property: &rasc_automata::Dfa,
) -> usize {
    let mut sys = ForwardSystem::new(property);
    let vars: Vec<_> = (0..cfg.num_nodes())
        .map(|i| sys.var(&format!("S{i}")))
        .collect();
    let pc = sys.constant("pc");
    let entry = cfg.entry("main").expect("main exists").entry;
    sys.add_constant(pc, vars[entry.index()]);
    for (from, to, label) in cfg.edges() {
        let ann = match label {
            EdgeLabel::Plain => sys.identity(),
            EdgeLabel::Event { name, .. } => match sigma.lookup(name) {
                Some(s) => sys.word(&[s]),
                None => sys.identity(),
            },
        };
        sys.add_edge(vars[from.index()], vars[to.index()], ann);
    }
    let eps = sys.identity();
    for site in cfg.call_sites() {
        let callee = &cfg.functions()[site.callee.index()];
        let o_i = sys.declare(&format!("o{}", site.id.index()), &[Variance::Covariant]);
        sys.add_source(
            o_i,
            &[vars[site.call_node.index()]],
            vars[callee.entry.index()],
            eps,
        )
        .expect("well-formed");
        sys.add_projection(
            o_i,
            0,
            vars[callee.exit.index()],
            vars[site.return_node.index()],
            eps,
        )
        .expect("well-formed");
    }
    sys.solve();
    let occ = sys.constant_occurrence_states(pc);
    vars.iter()
        .filter(|v| occ[v.index()].iter().any(|&s| sys.state_accepting(s)))
        .count()
}
