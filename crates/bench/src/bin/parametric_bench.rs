//! The §6.4 parametric-annotation experiment: checking the file-state
//! property with on-the-fly parameter instantiation (substitution
//! environments, one solver pass) versus the explicit-instantiation
//! alternative (one pushdown run per descriptor — what a checker without
//! parametric annotations must do, and how MOPS-style tools scale).
//!
//! Usage: `parametric_bench [size]` (default 4000 statements).

use rasc_automata::PropertySpec;
use rasc_bench::workload::generate_parametric;
use rasc_bench::{secs, timed};
use rasc_cfgir::Cfg;
use rasc_pdmc::{properties, ConstraintChecker};
use rasc_pushdown::PdsChecker;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4_000);
    let spec = PropertySpec::parse(properties::FILE_STATE).expect("valid spec");
    let (sigma, dfa) = spec.compile();

    println!("§6.4: parametric file-state property, one pass vs per-descriptor runs");
    println!(
        "{:>12} {:>8} | {:>14} {:>8} | {:>20}",
        "descriptors", "size", "subst-env (s)", "envs", "instantiated (s)"
    );
    // The lazily-built product grows with the number of *simultaneously
    // tracked* descriptors (up to 3^K states' worth of environments):
    // realistic programs keep few descriptors in flight at once, which is
    // why the paper reports minimal overhead. Beyond ~8 the environment
    // count explodes — the honest worst case of §6.4.
    for n_desc in [1usize, 2, 4, 8] {
        let program = generate_parametric(size, n_desc, 0xFD + n_desc as u64);
        let cfg = Cfg::build(&program).expect("valid program");

        // One pass with substitution environments.
        let (envs, t_subst) = timed(|| {
            let mut checker =
                ConstraintChecker::parametric(&cfg, &spec, "main").expect("main exists");
            checker.solve();
            let _ = checker.violations().len();
            checker.system().stats().annotations
        });

        // Per-descriptor explicit instantiation (MOPS-style): K runs of
        // the plain checker, each seeing only its descriptor's events.
        let (_, t_inst) = timed(|| {
            for d in 0..n_desc {
                let label = format!("fd{d}");
                let checker = PdsChecker::with_event_map(&cfg, &dfa, "main", |name, args| {
                    (args.len() == 1 && args[0] == label)
                        .then(|| sigma.lookup(name))
                        .flatten()
                })
                .expect("main exists");
                let _ = checker.run().len();
            }
        });

        println!(
            "{:>12} {:>8} | {:>14} {:>8} | {:>20}",
            n_desc,
            program.num_stmts(),
            secs(t_subst),
            envs,
            secs(t_inst)
        );
    }
}
