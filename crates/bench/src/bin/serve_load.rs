//! Load generator for `rasc-serve`: a loopback client fleet driving the
//! JSON-lines protocol through a real TCP server, measuring throughput
//! and latency percentiles at 1, 4, and 16 concurrent clients.
//!
//! Clients are **closed-loop with think time**: each waits for its
//! response, then sleeps ~1 ms (PRNG-jittered) before the next request.
//! With per-request service time far below the think time, adding
//! clients raises throughput by overlapping their idle periods — the
//! scaling this bench guards (16 clients must deliver ≥ 3× the
//! single-client rate) measures the server's ability to interleave
//! connections, and holds even on a single-core host where CPU-bound
//! clients could never scale.
//!
//! Emits `BENCH_serve.json` and exits non-zero when the scaling floor
//! is violated.
//!
//! Usage: `serve_load [out.json] [--secs S]` (default 1.2 s per rung).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rasc_automata::{Alphabet, Dfa};
use rasc_devtools::Rng;
use rasc_inc::json::{obj, Json};
use rasc_serve::{ServeConfig, Server};

/// Mean think time between a client's requests, in microseconds.
const THINK_MICROS: u64 = 1_000;
/// Scaling floor: 16 clients must deliver at least this multiple of the
/// single-client throughput.
const MIN_SPEEDUP: f64 = 3.0;

/// One client's run: request count and per-request latencies (µs).
struct ClientRun {
    requests: u64,
    latencies_us: Vec<u64>,
}

/// Connects, seeds a tiny session, then issues closed-loop queries with
/// jittered think time until the deadline.
fn run_client(addr: SocketAddr, seed: u64, duration: Duration) -> ClientRun {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let mut request = |req: &str, line: &mut String| {
        writer.write_all(req.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        line.clear();
        reader.read_line(line).expect("read");
        assert!(!line.is_empty(), "server closed mid-session");
    };

    // Per-connection session setup: the server gives every connection
    // its own engine, so names do not collide across clients.
    for setup in [
        r#"{"cmd":"declare","cons":"probe"}"#,
        r#"{"cmd":"add","lhs":"probe","rhs":"Src"}"#,
        r#"{"cmd":"add","lhs":"Src","rhs":"Dst","ann":["g","k"]}"#,
    ] {
        request(setup, &mut line);
        assert!(line.contains("\"ok\""), "setup failed: {line}");
    }

    let mut rng = Rng::new(seed);
    let mut run = ClientRun {
        requests: 0,
        latencies_us: Vec::new(),
    };
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        let t0 = Instant::now();
        request(
            r#"{"cmd":"query","kind":"occurs","var":"Dst","cons":"probe"}"#,
            &mut line,
        );
        assert!(line.contains("\"ok\""), "query failed: {line}");
        run.requests += 1;
        run.latencies_us.push(t0.elapsed().as_micros() as u64);
        // Think: uniform in [0.5, 1.5) × the mean, so clients desynchronize.
        let jitter = THINK_MICROS / 2 + (rng.next_u64() % THINK_MICROS);
        std::thread::sleep(Duration::from_micros(jitter));
    }
    run
}

/// Runs one rung of `clients` concurrent closed-loop clients.
fn run_rung(addr: SocketAddr, clients: usize, duration: Duration) -> (f64, Vec<u64>, u64) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| std::thread::spawn(move || run_client(addr, 0x5eed + i as u64, duration)))
        .collect();
    let mut latencies = Vec::new();
    let mut requests = 0;
    for h in handles {
        let run = h.join().expect("client thread");
        requests += run.requests;
        latencies.extend(run.latencies_us);
    }
    let secs = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (requests as f64 / secs, latencies, requests)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut secs = 1.2f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--secs" {
            secs = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--secs expects a number");
        } else {
            out_path = a.clone();
        }
    }
    let duration = Duration::from_secs_f64(secs);

    let mut sigma = Alphabet::new();
    let (g, k) = (sigma.intern("g"), sigma.intern("k"));
    let machine = Dfa::one_bit(&sigma, g, k);
    let config = ServeConfig {
        threads: 16,
        max_connections: 64,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", sigma, &machine, config).expect("bind");
    let addr = server.local_addr();
    let (handle, join) = server.spawn();

    println!(
        "rasc-serve load: loopback fleet on {addr}, think ~{THINK_MICROS} us, \
         {secs:.1} s per rung"
    );

    // Warmup rung (discarded): populates code paths and the listener.
    let _ = run_rung(addr, 2, Duration::from_millis(200));

    let mut rung_rows = Vec::new();
    let mut rates = Vec::new();
    for clients in [1usize, 4, 16] {
        let (rps, latencies, requests) = run_rung(addr, clients, duration);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        println!(
            "{clients:>3} clients: {rps:>8.1} req/s  ({requests} requests, \
             p50 {p50} us, p99 {p99} us)"
        );
        rung_rows.push(Json::Obj(vec![
            ("clients".to_owned(), Json::from(clients)),
            ("requests".to_owned(), Json::from(requests as usize)),
            ("throughput_rps".to_owned(), Json::Num(rps)),
            ("p50_micros".to_owned(), Json::from(p50 as usize)),
            ("p99_micros".to_owned(), Json::from(p99 as usize)),
        ]));
        rates.push(rps);
    }

    handle.begin_shutdown();
    handle.shutdown();
    let report = join.join().expect("server thread").expect("server io");
    let speedup = rates[2] / rates[0];
    println!(
        "16-client speedup over 1: {speedup:.2}x (floor {MIN_SPEEDUP:.1}x); \
         server saw {} connections, {} requests, {} rejected",
        report.connections, report.requests, report.rejected
    );

    let json = obj([
        ("bench", Json::from("serve_load")),
        ("threads", Json::from(16usize)),
        ("max_connections", Json::from(64usize)),
        ("think_micros", Json::from(THINK_MICROS as usize)),
        ("secs_per_rung", Json::Num(secs)),
        ("rungs", Json::Arr(rung_rows)),
        ("speedup_16_over_1", Json::Num(speedup)),
        ("min_required_speedup", Json::Num(MIN_SPEEDUP)),
        (
            "server_connections",
            Json::from(report.connections as usize),
        ),
        ("server_requests", Json::from(report.requests as usize)),
        ("server_rejected", Json::from(report.rejected as usize)),
    ]);
    std::fs::write(&out_path, json.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    assert!(
        speedup >= MIN_SPEEDUP,
        "16 concurrent clients must deliver at least {MIN_SPEEDUP}x the \
         single-client throughput (got {speedup:.2}x)"
    );
}
