//! Regenerates the §8 observation: MOPS "Property 1" — the full privilege
//! model with 11 states and 9 symbols — has only **58** distinct
//! representative functions, far from the superexponential worst case.
//!
//! The original automaton is unpublished; this measures our POSIX-semantics
//! reconstruction (see `rasc_pdmc::properties::full_privilege_property`)
//! and, for context, the simple 3-state Figure 3 property.

use rasc_automata::{Monoid, PropertySpec};
use rasc_pdmc::properties;

fn main() {
    println!("§8: representative-function counts for realistic properties");
    println!();

    let (sigma3, dfa3) = PropertySpec::parse(properties::SIMPLE_PRIVILEGE)
        .expect("valid spec")
        .compile();
    let m3 = Monoid::of_dfa(&dfa3.minimize());
    println!(
        "Figure 3 privilege property: {} states, {} symbols, |F_M^≡| = {}",
        dfa3.minimize().len(),
        sigma3.len(),
        m3.len()
    );

    let (sigma, dfa) = properties::full_privilege_property();
    let minimal = dfa.minimize();
    let monoid = Monoid::of_dfa(&minimal);
    let n = minimal.len() as u64;
    println!(
        "full privilege property (reconstruction): {} states ({} raw), {} symbols",
        minimal.len(),
        dfa.len(),
        sigma.len()
    );
    println!(
        "|F_M^≡| = {}   (paper's Property 1: 11 states, 9 symbols, 58 functions)",
        monoid.len()
    );
    println!(
        "worst case |S|^|S| = {} — the measured monoid is {:.4}% of it",
        n.pow(n as u32),
        100.0 * monoid.len() as f64 / n.pow(n as u32) as f64
    );
    assert!(
        monoid.len() < 1000,
        "realistic property should have a tiny monoid"
    );
}
