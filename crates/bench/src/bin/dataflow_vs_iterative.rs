//! Compares the annotation-based interprocedural dataflow engine (§3.3 /
//! §6 intro) against the classical context-insensitive iterative solver:
//! soundness (refinement), precision gain (context sensitivity), and the
//! paper's §4 complexity dependence on the number of annotation classes —
//! the gen/kill monoid has `3ⁿ` elements for `n` facts, and bidirectional
//! solving pays for the classes that actually arise, so cost grows with
//! the fact count as well as program size.
//!
//! Usage: `dataflow_vs_iterative [max_size]`.

use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_bench::{secs, timed};
use rasc_cfgir::{Cfg, NodeId};
use rasc_dataflow::{ConstraintDataflow, ForwardDataflow, GenKillSpec, IterativeDataflow};
use rasc_devtools::Rng;

fn main() {
    let max_size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32_000);

    println!("§3.3: interprocedural gen/kill dataflow");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>14} {:>16}",
        "facts",
        "size",
        "bidi (s)",
        "fwd (s)",
        "iter (s)",
        "classes",
        "sound?",
        "nodes more precise"
    );
    let mut rng = Rng::new(99);
    for n_facts in [2usize, 4, 8] {
        let mut spec = GenKillSpec::new();
        let mut event_names = Vec::new();
        for i in 0..n_facts {
            let f = spec.fact(&format!("x{i}"));
            spec.event(&format!("def_x{i}"), &[f], &[]);
            spec.event(&format!("kill_x{i}"), &[], &[f]);
            event_names.push(format!("def_x{i}"));
            event_names.push(format!("kill_x{i}"));
        }
        // The bidirectional cost grows with the class count (§4): cap *its*
        // program size so the sweep stays minutes, not hours. The forward
        // solver (§5) runs at every size — that it keeps going is the
        // point.
        let bidi_cap = match n_facts {
            2 => max_size,
            4 => max_size / 2,
            _ => max_size / 8,
        };
        let mut size = 500;
        while size <= max_size {
            let wl = WorkloadConfig::sized(size, event_names.clone(), rng.next_u64());
            let program = generate(&wl);
            let cfg = Cfg::build(&program).expect("valid program");

            let run_bidi = size <= bidi_cap;
            let (cdf, t_constraint) = if run_bidi {
                let (df, t) = timed(|| {
                    let mut df = ConstraintDataflow::new(&cfg, &spec, "main").expect("main");
                    df.solve();
                    df
                });
                (Some(df), t)
            } else {
                (None, std::time::Duration::ZERO)
            };
            let (fdf, t_forward) = timed(|| {
                let mut df = ForwardDataflow::new(&cfg, &spec, "main").expect("main");
                df.solve();
                df
            });
            let (idf, t_iter) = timed(|| {
                let mut df = IterativeDataflow::new(&cfg, &spec, "main").expect("main");
                df.solve(0);
                df
            });

            // Soundness: the context-sensitive result must be a subset of the
            // context-insensitive one at every node; count strict wins. The
            // forward engine is the reference (it always ran).
            let mut sound = true;
            let mut wins = 0usize;
            for node in 0..cfg.num_nodes() {
                let n = NodeId::from_index(node);
                let cs = fdf.facts_at(n);
                let ci = idf.facts_at(n);
                if cs & !ci != 0 {
                    sound = false;
                }
                if cs != ci {
                    wins += 1;
                }
                if let Some(cdf) = &cdf {
                    assert_eq!(cdf.facts_at(n), cs, "forward and bidirectional must agree");
                }
            }
            println!(
                "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>14} {:>16}",
                n_facts,
                program.num_stmts(),
                if run_bidi {
                    secs(t_constraint)
                } else {
                    "-".to_owned()
                },
                secs(t_forward),
                secs(t_iter),
                cdf.as_ref().map_or(0, |c| c.system().stats().annotations),
                if sound { "yes" } else { "NO (bug)" },
                wins
            );
            assert!(sound, "context-sensitive result must refine the baseline");
            size *= 4;
        }
    }
}
