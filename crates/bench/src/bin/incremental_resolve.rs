//! Incremental re-solving (rasc-inc) vs from-scratch solving on the §5
//! ladder workloads: after a base system is solved, +1% new constraints
//! arrive and are solved either through a [`Session`] (epoch push, add,
//! re-drain the existing worklist fixpoint, epoch pop) or by rebuilding
//! and solving the whole system from nothing.
//!
//! Emits `BENCH_incremental.json` (one row per ladder) and enforces the
//! acceptance bound: on the largest ladder the incremental path must be at
//! least 5× faster than the from-scratch path.
//!
//! Usage: `incremental [out.json]`.

use std::time::Duration;

use rasc_automata::{adversarial_machine, Dfa, SymbolId};
use rasc_bench::constraints_workload::{ladder, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{SetExpr, System, VarId};
use rasc_devtools::{bench, Rng};
use rasc_inc::json::{obj, Json};
use rasc_inc::Session;

/// The +1% delta: fresh random edges over the existing variables.
fn delta_edges(wl: &EdgeListWorkload, seed: u64) -> Vec<(usize, usize, Vec<SymbolId>)> {
    let mut rng = Rng::new(seed);
    let n = (wl.edges.len() / 100).max(1);
    let syms: Vec<SymbolId> = wl
        .edges
        .iter()
        .flat_map(|(_, _, w)| w.iter().copied())
        .collect();
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..wl.n_vars),
                rng.gen_range(0..wl.n_vars),
                vec![syms[rng.gen_range(0..syms.len())]],
            )
        })
        .collect()
}

fn build_base(machine: &Dfa, wl: &EdgeListWorkload) -> (Session<MonoidAlgebra>, Vec<VarId>) {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<VarId> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    (Session::from_system(sys), vars)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_incremental.json".to_owned());
    let (sigma, machine) = adversarial_machine(3);

    println!("rasc-inc: incremental (+1% constraints) vs from-scratch re-solve");
    println!(
        "{:>12} {:>8} {:>7} {:>14} {:>14} {:>9}",
        "ladder", "edges", "delta", "scratch (ms)", "inc (ms)", "speedup"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut last_speedup = 0.0_f64;
    let shapes = [(4usize, 16usize), (4, 64), (4, 256)];
    for (i, &(width, len)) in shapes.iter().enumerate() {
        let wl = ladder(width, len, &sigma, 7 + i as u64);
        let delta = delta_edges(&wl, 1000 + i as u64);

        // From-scratch: rebuild and solve base + delta every time.
        let scratch = bench("scratch", 10, Duration::from_millis(400), || {
            let mut full = wl.clone();
            full.edges.extend(delta.iter().cloned());
            let (mut sess, vars) = build_base(&machine, &full);
            sess.system_mut().nonempty(vars[full.sink])
        });

        // Incremental: one pre-solved session; each round opens an epoch,
        // feeds the delta through the worklist, queries, and rolls back so
        // the next round starts from the same base fixpoint.
        let (mut sess, vars) = build_base(&machine, &wl);
        let sink = vars[wl.sink];
        let inc = bench("incremental", 10, Duration::from_millis(400), || {
            sess.push_epoch();
            for (from, to, word) in &delta {
                let ann = sess.system_mut().algebra_mut().word(word);
                sess.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
                    .expect("well-formed");
            }
            let reached = sess.system_mut().nonempty(sink);
            assert!(sess.pop_epoch());
            reached
        });

        let speedup = scratch.median_ns / inc.median_ns;
        last_speedup = speedup;
        println!(
            "{:>12} {:>8} {:>7} {:>14.3} {:>14.3} {:>8.1}x",
            format!("{width}x{len}"),
            wl.edges.len(),
            delta.len(),
            scratch.median_ns / 1e6,
            inc.median_ns / 1e6,
            speedup
        );
        rows.push(obj([
            ("ladder_width", Json::from(width)),
            ("ladder_len", Json::from(len)),
            ("base_edges", Json::from(wl.edges.len())),
            ("delta_edges", Json::from(delta.len())),
            ("scratch_median_ns", Json::Num(scratch.median_ns)),
            ("incremental_median_ns", Json::Num(inc.median_ns)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let report = obj([
        ("bench", Json::from("incremental_vs_scratch")),
        ("machine", Json::from("adversarial(3)")),
        ("delta_fraction", Json::Num(0.01)),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    assert!(
        last_speedup >= 5.0,
        "incremental re-solve must be ≥5× faster than scratch on the largest \
         ladder (got {last_speedup:.1}×)"
    );
}
