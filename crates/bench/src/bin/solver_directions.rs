//! Regenerates the §5 comparison: bidirectional vs forward vs backward
//! solving. On ladder workloads over an adversarial machine, the
//! bidirectional solver derives annotations from `F_M^≡` (up to
//! `|S|^{|S|}` classes) while the unidirectional solvers use the coarser
//! right/left congruences (`|S|` classes / acceptance sets), which shows
//! up both in interned-annotation counts and in wall-clock time.
//!
//! Usage: `solver_directions [machine_size] [max_len]`.

use rasc_automata::adversarial_machine;
use rasc_bench::constraints_workload::{ladder, run_backward, run_bidirectional, run_forward};
use rasc_bench::{secs, timed};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let max_len: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let (sigma, machine) = adversarial_machine(n);

    println!("§5: solver strategies on ladder workloads, adversarial machine |S| = {n}");
    println!(
        "{:>6} {:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "len", "width", "bidi (s)", "anns", "fwd (s)", "anns", "bwd (s)", "facts"
    );
    let width = 4;
    let mut len = 4;
    while len <= max_len {
        let wl = ladder(width, len, &sigma, 0xBEEF + len as u64);
        let (b, tb) = timed(|| run_bidirectional(&machine, &wl));
        let (f, tf) = timed(|| run_forward(&machine, &wl));
        let (k, tk) = timed(|| run_backward(&machine, &wl));
        assert_eq!(b.reached, f.reached);
        assert_eq!(b.reached, k.reached);
        println!(
            "{:>6} {:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            len,
            width,
            secs(tb),
            b.annotations,
            secs(tf),
            f.annotations,
            secs(tk),
            k.facts
        );
        len *= 2;
    }
    println!();
    println!(
        "(forward annotation counts converge to |S| + generators; bidirectional \
         counts grow toward |F_M^≡| = |S|^|S| = {})",
        (n as u64).pow(n as u32)
    );
}
