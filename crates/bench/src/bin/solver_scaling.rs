//! Solver scaling guard: the indexed `AnnSet` storage must keep the cost
//! *per derived fact* flat as systems grow.
//!
//! Two workload families, each at three growing rungs:
//!
//! * **closure chains** — a probe constant pushed down an annotated
//!   transitive-closure chain (the adversarial 3-state machine), the
//!   regime where the old `flatten(...)`-clone propagation went
//!   quadratic;
//! * **constructor chains** — alternating wrap/project stages, the meet/
//!   decompose machinery the per-constructor lower-bound buckets index.
//!
//! Emits `BENCH_solver.json` (one row per rung) and enforces near-linear
//! scaling: within each family, ns per processed fact at the largest rung
//! must be ≤ 3× the smallest rung.
//!
//! Usage: `solver_scaling [out.json]`.

use std::time::Duration;

use rasc_automata::adversarial_machine;
use rasc_bench::constraints_workload::{chain, cons_chain, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{SetExpr, System};
use rasc_devtools::bench;
use rasc_inc::json::{obj, Json};

/// Builds and solves one closure-chain rung; returns facts processed.
fn run_chain(machine: &rasc_automata::Dfa, wl: &EdgeListWorkload) -> usize {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    sys.solve();
    assert!(
        !sys.lower_bound_annotations(vars[wl.sink], probe).is_empty(),
        "probe must reach the chain sink"
    );
    sys.stats().facts_processed
}

/// Builds and solves one constructor-chain rung; returns facts processed.
fn run_cons(machine: &rasc_automata::Dfa, stages: usize) -> usize {
    let (mut sys, sink, probe) = cons_chain(machine, stages);
    sys.solve();
    assert!(sys.is_consistent());
    assert!(
        !sys.lower_bound_annotations(sink, probe).is_empty(),
        "probe must tunnel through every wrap/project stage"
    );
    sys.stats().facts_processed
}

struct Rung {
    family: &'static str,
    size: usize,
    facts: usize,
    median_ns: f64,
}

impl Rung {
    fn ns_per_fact(&self) -> f64 {
        self.median_ns / self.facts.max(1) as f64
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_solver.json".to_owned());
    let (sigma, machine) = adversarial_machine(3);

    println!("solver scaling: ns per processed fact across growing rungs");
    println!(
        "{:>12} {:>8} {:>10} {:>12} {:>10}",
        "family", "size", "facts", "median (ms)", "ns/fact"
    );

    let mut rungs: Vec<Rung> = Vec::new();
    for (i, &n) in [2_000usize, 8_000, 32_000].iter().enumerate() {
        let wl = chain(n, &sigma, 11 + i as u64);
        let facts = run_chain(&machine, &wl);
        let stats = bench("chain", 5, Duration::from_secs(2), || {
            run_chain(&machine, &wl)
        });
        rungs.push(Rung {
            family: "closure_chain",
            size: n,
            facts,
            median_ns: stats.median_ns,
        });
    }
    for &stages in &[1_000usize, 4_000, 16_000] {
        let facts = run_cons(&machine, stages);
        let stats = bench("cons", 5, Duration::from_secs(2), || {
            run_cons(&machine, stages)
        });
        rungs.push(Rung {
            family: "cons_chain",
            size: stages,
            facts,
            median_ns: stats.median_ns,
        });
    }

    let mut rows: Vec<Json> = Vec::new();
    for r in &rungs {
        println!(
            "{:>12} {:>8} {:>10} {:>12.3} {:>10.1}",
            r.family,
            r.size,
            r.facts,
            r.median_ns / 1e6,
            r.ns_per_fact()
        );
        rows.push(obj([
            ("family", Json::from(r.family)),
            ("size", Json::from(r.size)),
            ("facts_processed", Json::from(r.facts)),
            ("median_ns", Json::Num(r.median_ns)),
            ("ns_per_fact", Json::Num(r.ns_per_fact())),
        ]));
    }

    let report = obj([
        ("bench", Json::from("solver_scaling")),
        ("machine", Json::from("adversarial(3)")),
        (
            "guard",
            Json::from("largest rung ns/fact <= 3x smallest, per family"),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    for family in ["closure_chain", "cons_chain"] {
        let fam: Vec<&Rung> = rungs.iter().filter(|r| r.family == family).collect();
        let first = fam.first().expect("rungs").ns_per_fact();
        let last = fam.last().expect("rungs").ns_per_fact();
        assert!(
            last <= 3.0 * first,
            "{family}: ns/fact grew superlinearly — {last:.1} at the largest \
             rung vs {first:.1} at the smallest (limit 3x)"
        );
    }
    println!("scaling guard passed");
}
