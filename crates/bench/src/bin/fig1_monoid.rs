//! Regenerates the Figure 1 / §3.3 numbers: the 1-bit gen/kill language
//! has `F_M^≡ = {f_ε, f_g, f_k}`, and the n-bit language (a product
//! construction) has `3ⁿ` representative functions — which the dedicated
//! `GenKillAlgebra` represents as
//! mask pairs with O(1) composition.

use rasc_automata::{Alphabet, Dfa, Monoid};
use rasc_bench::{secs, timed};
use rasc_core::algebra::{Algebra, GenKillAlgebra};

fn main() {
    // The 1-bit machine.
    let mut sigma = Alphabet::new();
    let g = sigma.intern("g");
    let k = sigma.intern("k");
    let one_bit = Dfa::one_bit(&sigma, g, k);
    let monoid = Monoid::of_dfa(&one_bit);
    println!("Figure 1 / §3.3: gen/kill monoids");
    println!(
        "1-bit machine: {} states, |F_M^≡| = {} (paper: 3)",
        one_bit.len(),
        monoid.len()
    );
    println!();
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>16}",
        "n", "states", "|F_M^≡|", "expected 3^n", "closure time"
    );

    for n in 1..=8u32 {
        // Product of n 1-bit machines, each over its own gen/kill pair.
        let mut sigma = Alphabet::new();
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let g = sigma.intern(&format!("g{i}"));
                let k = sigma.intern(&format!("k{i}"));
                (g, k)
            })
            .collect();
        let mut product = Dfa::one_bit(&sigma, pairs[0].0, pairs[0].1);
        for &(g, k) in &pairs[1..] {
            product = product.product(&Dfa::one_bit(&sigma, g, k));
        }
        // Make every state accepting iff... for monoid size the acceptance
        // set is irrelevant; keep the intersection machine.
        let (monoid, elapsed) = timed(|| Monoid::of_dfa(&product));
        println!(
            "{:>4} {:>10} {:>12} {:>14} {:>16}",
            n,
            product.len(),
            monoid.len(),
            3u64.pow(n),
            secs(elapsed)
        );
        assert_eq!(monoid.len(), 3usize.pow(n));
    }

    // Cross-check the GenKill algebra against the generic monoid for n=3.
    println!();
    let mut alg = GenKillAlgebra::new(3);
    let mut anns = vec![alg.identity()];
    for i in 0..3 {
        let t1 = alg.transfer(1 << i, 0);
        let t2 = alg.transfer(0, 1 << i);
        anns.push(t1);
        anns.push(t2);
    }
    // Close under composition and count.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = anns.clone();
        for &a in &snapshot {
            for &b in &snapshot {
                let c = alg.compose(a, b);
                if !anns.contains(&c) {
                    anns.push(c);
                    changed = true;
                }
            }
        }
    }
    println!(
        "GenKill algebra closure for n=3: {} elements (expected 27)",
        anns.len()
    );
    assert_eq!(anns.len(), 27);
}
