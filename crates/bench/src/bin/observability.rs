//! Observability overhead guard: solving the same §5 ladder workload
//! with no sink installed vs with a `NoopSink` installed must cost
//! (almost) the same — the instrumentation contract is that hot-path
//! counters are batched into plain integer adds and only flushed at
//! solve boundaries, so a wired-up-but-discarding subscriber may add at
//! most 5% to solve time.
//!
//! Emits `BENCH_observability.json` with the medians and the ratios, and
//! exits non-zero when the guard is violated. The same ≤5% budget is
//! enforced for [`rasc_obs::MetricsRegistry`] — the aggregating sink
//! `rasc serve` keeps permanently installed — since its hot path is a
//! shard lookup plus one relaxed atomic add. A further, informational
//! row measures a real recording subscriber (`Recorder`).
//!
//! Usage: `observability [out.json]`.

use std::sync::Arc;
use std::time::Duration;

use rasc_automata::{adversarial_machine, Dfa};
use rasc_bench::constraints_workload::{ladder, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{SetExpr, System};
use rasc_devtools::bench;
use rasc_inc::json::{obj, Json};
use rasc_obs::{scoped, EventSink, MetricsRegistry, NoopSink, Recorder};

/// Builds and fully solves the workload, returning the probe answer so
/// the optimizer keeps the work.
fn solve_once(machine: &Dfa, wl: &EdgeListWorkload) -> bool {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    sys.nonempty(vars[wl.sink])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_observability.json".to_owned());
    let (sigma, machine) = adversarial_machine(3);
    let wl = ladder(4, 192, &sigma, 7);

    println!(
        "rasc-obs: instrumentation overhead on ladder 4x192 ({} edges)",
        wl.edges.len()
    );

    let min_iters = 20;
    let min_time = Duration::from_millis(600);
    let baseline = bench("no sink", min_iters, min_time, || solve_once(&machine, &wl));
    let noop = bench("noop sink", min_iters, min_time, || {
        scoped(Arc::new(NoopSink), || solve_once(&machine, &wl))
    });
    let registry_sink: Arc<MetricsRegistry> = Arc::new(MetricsRegistry::new());
    let registry = bench("metrics registry", min_iters, min_time, || {
        scoped(Arc::clone(&registry_sink) as Arc<dyn EventSink>, || {
            solve_once(&machine, &wl)
        })
    });
    let recorder_sink: Arc<Recorder> = Arc::new(Recorder::new());
    let recording = bench("recorder", min_iters, min_time, || {
        scoped(Arc::clone(&recorder_sink) as Arc<dyn EventSink>, || {
            solve_once(&machine, &wl)
        })
    });

    let ratio = noop.median_ns / baseline.median_ns;
    let registry_ratio = registry.median_ns / baseline.median_ns;
    let recorder_ratio = recording.median_ns / baseline.median_ns;
    for (label, stats, r) in [
        ("no sink", &baseline, 1.0),
        ("noop sink", &noop, ratio),
        ("metrics registry", &registry, registry_ratio),
        ("recorder", &recording, recorder_ratio),
    ] {
        println!(
            "{label:>16}: median {:.3} ms over {} iters ({:.3}x baseline)",
            stats.median_ns / 1e6,
            stats.iters,
            r
        );
    }

    let report = obj([
        ("bench", Json::from("observability_overhead")),
        ("machine", Json::from("adversarial(3)")),
        ("workload", Json::from("ladder(4,192)")),
        ("edges", Json::from(wl.edges.len())),
        ("baseline_median_ns", Json::Num(baseline.median_ns)),
        ("noop_sink_median_ns", Json::Num(noop.median_ns)),
        ("metrics_registry_median_ns", Json::Num(registry.median_ns)),
        ("recorder_median_ns", Json::Num(recording.median_ns)),
        ("noop_overhead_ratio", Json::Num(ratio)),
        ("metrics_registry_overhead_ratio", Json::Num(registry_ratio)),
        ("recorder_overhead_ratio", Json::Num(recorder_ratio)),
        ("max_allowed_ratio", Json::Num(1.05)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    assert!(
        ratio <= 1.05,
        "a NoopSink subscriber may add at most 5% to solve time \
         (got {ratio:.3}x baseline)"
    );
    assert!(
        registry_ratio <= 1.05,
        "the aggregating MetricsRegistry must fit the same 5% budget \
         (got {registry_ratio:.3}x baseline)"
    );
}
