//! Parallel fixpoint scaling: `System::solve_parallel` vs the sequential
//! solver on dense regular-reachability digraphs.
//!
//! The parallel engine speculates each worklist round on sharded worker
//! threads and commits the precomputed effects in one deterministic merge
//! pass, so the solved form is byte-identical to the sequential solve
//! (see `tests/proptest_parallel.rs`); this bench measures what that
//! buys in wall-clock on cold solves. The dense workload makes the
//! solver walk ~`out_degree` candidate facts per annotation class — the
//! bound-walk regime the workers absorb.
//!
//! Emits `BENCH_parallel.json` (one row per rung, 2k → 32k constraints)
//! and enforces the acceptance bound: at the largest rung, 4 solver
//! threads must be at least 2× faster than sequential. The bound is only
//! meaningful where 4 workers can actually run — on hosts with fewer
//! than 4 CPUs the numbers are still reported but the guard is skipped
//! (CI runs this on multi-core runners).
//!
//! Usage: `parallel_scaling [out.json]`.

use std::time::Duration;

use rasc_automata::{adversarial_machine, Dfa};
use rasc_bench::constraints_workload::{dense, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{Budget, SetExpr, System, VarId};
use rasc_devtools::bench;
use rasc_inc::json::{obj, Json};

/// Builds the unsolved system for one rung (everything queued, nothing
/// propagated yet).
fn build(machine: &Dfa, wl: &EdgeListWorkload) -> System<MonoidAlgebra> {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<VarId> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    sys
}

/// Cold build+solve at a given thread count (0 = the sequential solver),
/// returning facts processed so the arms can be cross-checked.
fn run(machine: &Dfa, wl: &EdgeListWorkload, threads: usize) -> usize {
    let mut sys = build(machine, wl);
    if threads == 0 {
        sys.solve();
    } else {
        assert!(
            sys.solve_parallel_bounded(&Budget::unlimited(), threads)
                .is_complete(),
            "unlimited solve completes"
        );
    }
    let sink = VarId::from_index(wl.sink);
    assert!(sys.nonempty(sink), "probe must saturate the dense cycle");
    sys.stats().facts_processed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let (sigma, machine) = adversarial_machine(4);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    println!("rasc: parallel fixpoint vs sequential solve ({cores} cores)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "edges", "facts", "seq (ms)", "2t (ms)", "4t (ms)", "speedup2", "speedup4"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut last_speedup4 = 0.0_f64;
    // out_degree * n_vars edges per rung: 2k → 8k → 32k constraints.
    let shapes = [(125usize, 16usize), (500, 16), (2000, 16)];
    for (i, &(n_vars, out_degree)) in shapes.iter().enumerate() {
        let wl = dense(n_vars, out_degree, &sigma, 7 + i as u64);
        let edges = wl.edges.len();

        let facts = run(&machine, &wl, 0);
        for threads in [2usize, 4] {
            let par_facts = run(&machine, &wl, threads);
            assert_eq!(
                par_facts, facts,
                "parallel solve at {threads} threads diverged from sequential"
            );
        }

        let seq = bench("seq", 5, Duration::from_secs(2), || run(&machine, &wl, 0));
        let par2 = bench("par2", 5, Duration::from_secs(2), || run(&machine, &wl, 2));
        let par4 = bench("par4", 5, Duration::from_secs(2), || run(&machine, &wl, 4));
        let speedup2 = seq.median_ns / par2.median_ns;
        let speedup4 = seq.median_ns / par4.median_ns;
        last_speedup4 = speedup4;

        println!(
            "{:>8} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>8.2}x",
            edges,
            facts,
            seq.median_ns / 1e6,
            par2.median_ns / 1e6,
            par4.median_ns / 1e6,
            speedup2,
            speedup4
        );
        rows.push(obj([
            ("edges", Json::from(edges)),
            ("facts_processed", Json::from(facts)),
            ("sequential_ns", Json::Num(seq.median_ns)),
            ("parallel2_ns", Json::Num(par2.median_ns)),
            ("parallel4_ns", Json::Num(par4.median_ns)),
            ("speedup_2t", Json::Num(speedup2)),
            ("speedup_4t", Json::Num(speedup4)),
        ]));
    }

    let report = obj([
        ("bench", Json::from("parallel_scaling")),
        ("machine", Json::from("adversarial(4)")),
        ("cores", Json::from(cores)),
        (
            "guard",
            Json::from("largest rung: 4-thread solve >= 2x sequential (requires >= 4 cores)"),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    if cores >= 4 {
        assert!(
            last_speedup4 >= 2.0,
            "parallel solve too slow: {last_speedup4:.2}x at 4 threads on the \
             largest rung (acceptance bound 2x)"
        );
        println!("parallel scaling guard passed");
    } else {
        println!("parallel scaling guard skipped: {cores} cores < 4");
    }
}
