//! Ablation of the §8 solver optimizations (inherited from BANSHEE):
//! online cycle elimination \[7\] and projection merging \[27\]. Runs the
//! Table 1 workload under all four configurations.
//!
//! Usage: `ablation [size]` (default 40000 statements).

use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_bench::{secs, timed};
use rasc_cfgir::Cfg;
use rasc_core::SolverConfig;
use rasc_pdmc::{properties, ConstraintChecker};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let (sigma, property) = properties::full_privilege_property();
    let event_names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();
    // A loop-heavy shape (daemon-style event loops): ε-cycles are what
    // cycle elimination targets.
    let mut wl = WorkloadConfig::sized(size, event_names, 0xC0FFEE);
    wl.loop_density = 0.20;
    wl.branch_density = 0.15;
    let program = generate(&wl);
    let cfg = Cfg::build(&program).expect("valid program");
    println!(
        "§8 optimization ablation: privilege property, {} statements",
        program.num_stmts()
    );
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "time (s)", "facts", "collapsed", "violations"
    );

    let configs = [
        ("cycle-elim + proj-merge", true, true),
        ("cycle-elim only", true, false),
        ("proj-merge only", false, true),
        ("neither", false, false),
    ];
    let mut baseline: Option<usize> = None;
    for (name, ce, pm) in configs {
        let config = SolverConfig {
            cycle_elimination: ce,
            projection_merging: pm,
            ..SolverConfig::default()
        };
        let ((violations, stats), t) = timed(|| {
            let mut checker =
                ConstraintChecker::new_with_config(&cfg, &sigma, &property, "main", config)
                    .expect("main exists");
            checker.solve();
            let v = checker.violations().len();
            (v, checker.system().stats())
        });
        println!(
            "{:<28} {:>10} {:>12} {:>12} {:>10}",
            name,
            secs(t),
            stats.facts_processed,
            stats.cycles_collapsed,
            violations
        );
        match baseline {
            None => baseline = Some(violations),
            Some(b) => assert_eq!(b, violations, "configs must agree"),
        }
    }
}
