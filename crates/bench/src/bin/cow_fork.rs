//! Copy-on-write fork vs per-connection restore on dense
//! regular-reachability digraphs: a solved base session is serialized
//! once, then brought up per "connection" either by deserializing the
//! whole solved form (`Session::restore_bytes` — what `rasc-serve` did
//! for every accepted connection) or by decoding once into a frozen
//! [`rasc_core::BaseSystem`] and forking copy-on-write
//! (`Session::fork_from` — what the server does now).
//!
//! Restore is linear in the solved form; a fork is a handful of `Arc`
//! bumps plus per-variable bookkeeping, so the gap widens with base
//! size. Also reports per-connection resident overhead: the RSS delta of
//! holding [`FLEET`] live sessions built each way (Linux `/proc`, best
//! effort — reported, not enforced).
//!
//! Emits `BENCH_cow.json` (one row per rung, 2k → 32k constraints) and
//! enforces the acceptance bound: at the largest rung the fork must be
//! at least 5× faster than the per-connection restore.
//!
//! Usage: `cow_fork [out.json]`.

use std::time::Duration;

use rasc_automata::{adversarial_machine, Dfa};
use rasc_bench::constraints_workload::{dense, EdgeListWorkload};
use rasc_core::algebra::MonoidAlgebra;
use rasc_core::{BaseSystem, SetExpr, System, VarId};
use rasc_devtools::bench;
use rasc_inc::json::{obj, Json};
use rasc_inc::Session;

/// Concurrent sessions held live for the resident-overhead measurement.
const FLEET: usize = 64;

fn build_solved(machine: &Dfa, wl: &EdgeListWorkload) -> Session<MonoidAlgebra> {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<VarId> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    Session::from_system(sys)
}

/// Resident set size in KiB, from `/proc/self/statm` (0 where absent).
#[cfg(target_os = "linux")]
fn resident_kb() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").unwrap_or_default();
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    pages * 4096 / 1024
}

#[cfg(not(target_os = "linux"))]
fn resident_kb() -> u64 {
    0
}

/// RSS growth per session, holding `FLEET` of them live at once.
fn fleet_overhead_kb(make: impl Fn() -> Session<MonoidAlgebra>) -> u64 {
    let before = resident_kb();
    let fleet: Vec<Session<MonoidAlgebra>> = (0..FLEET).map(|_| make()).collect();
    let after = resident_kb();
    drop(fleet);
    after.saturating_sub(before) / FLEET as u64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cow.json".to_owned());
    let (sigma, machine) = adversarial_machine(4);

    println!("rasc-inc: copy-on-write fork vs per-connection restore");
    println!(
        "{:>12} {:>8} {:>14} {:>12} {:>9} {:>12} {:>12}",
        "graph", "edges", "restore (ms)", "fork (ms)", "speedup", "rss/conn", "rss/conn"
    );
    println!(
        "{:>12} {:>8} {:>14} {:>12} {:>9} {:>12} {:>12}",
        "", "", "", "", "", "restore(KB)", "fork(KB)"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut last_speedup = 0.0_f64;
    // out_degree * n_vars edges per rung: 2k → 8k → 32k constraints.
    let shapes = [(125usize, 16usize), (500, 16), (2000, 16)];
    for (i, &(n_vars, out_degree)) in shapes.iter().enumerate() {
        let wl = dense(n_vars, out_degree, &sigma, 7 + i as u64);
        let sink = VarId::from_index(wl.sink);

        // The durable artifact, serialized once; the frozen base is the
        // decode-once product the server shares across connections.
        let solved = build_solved(&machine, &wl);
        let bytes = solved.snapshot_bytes().expect("solved session snapshots");
        let base: BaseSystem<MonoidAlgebra> = solved.into_base().expect("solved session freezes");

        // Per-connection restore: deserialize the solved form and answer.
        let restore = bench("restore", 5, Duration::from_millis(400), || {
            let mut sess = Session::<MonoidAlgebra>::restore_bytes(&bytes).expect("valid snapshot");
            sess.nonempty(sink)
        });

        // Copy-on-write fork: alias the frozen base and answer.
        let fork = bench("fork", 5, Duration::from_millis(400), || {
            let mut sess = Session::fork_from(&base);
            sess.nonempty(sink)
        });

        let restore_rss = fleet_overhead_kb(|| {
            Session::<MonoidAlgebra>::restore_bytes(&bytes).expect("valid snapshot")
        });
        let fork_rss = fleet_overhead_kb(|| Session::fork_from(&base));

        let speedup = restore.median_ns / fork.median_ns;
        last_speedup = speedup;
        println!(
            "{:>12} {:>8} {:>14.3} {:>12.4} {:>8.1}x {:>12} {:>12}",
            format!("{n_vars}x{out_degree}"),
            wl.edges.len(),
            restore.median_ns / 1e6,
            fork.median_ns / 1e6,
            speedup,
            restore_rss,
            fork_rss
        );
        rows.push(obj([
            ("n_vars", Json::from(n_vars)),
            ("out_degree", Json::from(out_degree)),
            ("constraints", Json::from(wl.edges.len())),
            ("snapshot_bytes", Json::from(bytes.len())),
            ("restore_median_ns", Json::Num(restore.median_ns)),
            ("fork_median_ns", Json::Num(fork.median_ns)),
            ("speedup", Json::Num(speedup)),
            ("restore_rss_per_conn_kb", Json::from(restore_rss)),
            ("fork_rss_per_conn_kb", Json::from(fork_rss)),
        ]));
    }

    let report = obj([
        ("bench", Json::from("cow_fork_vs_restore")),
        ("machine", Json::from("adversarial(4)")),
        ("fleet", Json::from(FLEET)),
        ("rows", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    println!("wrote {out_path}");

    assert!(
        last_speedup >= 5.0,
        "a copy-on-write fork must be ≥5× faster than a per-connection \
         restore at the largest rung (got {last_speedup:.1}×)"
    );
}
