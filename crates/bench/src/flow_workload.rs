//! Synthetic MiniLam programs for the §7/§9 flow-analysis scaling
//! experiment.
//!
//! The paper's §9 notes that for the type-based flow analysis "the number
//! of states of the DFA grows at least with the size of the largest type
//! in the program", and predicts that the bidirectional solver will not
//! scale there. These workloads make that measurable: programs that build
//! nested pairs up to a chosen depth and project them back down, with a
//! configurable number of wrap/unwrap call chains.

use std::fmt::Write as _;

/// Generates a MiniLam program whose largest type has nesting `depth`
/// (`T₀ = int`, `T_k = (T_{k-1}, int)`), with `chains` independent
/// build-then-project call chains from `main`.
///
/// Each chain `c` seeds a literal labeled `SRC{c}`, wraps it to depth
/// `depth` through per-chain functions (distinct instantiation sites),
/// projects back down, and labels the result `DST{c}`. Matched flow
/// `SRC{c} → DST{c}` must hold, and `SRC{c} → DST{c'}` must not.
pub fn nested_pairs_program(depth: usize, chains: usize) -> String {
    assert!(depth >= 1 && chains >= 1);
    let ty = |k: usize| -> String {
        let mut t = "int".to_owned();
        for _ in 0..k {
            t = format!("({t}, int)");
        }
        t
    };
    let mut src = String::new();
    // Shared wrap/unwrap functions per level.
    for k in 1..=depth {
        let _ = writeln!(src, "fn mk{k}(x: {}) -> {} {{ (x, 0) }}", ty(k - 1), ty(k));
        let _ = writeln!(src, "fn un{k}(p: {}) -> {} {{ p.1 }}", ty(k), ty(k - 1));
    }
    let _ = writeln!(src, "fn main() -> int {{");
    // Chains: let v_c = un1[..](… mk1[..](SRC) …); sum via choice.
    let mut results = Vec::new();
    for c in 0..chains {
        let mut expr = format!("{}@SRC{c}", c + 1);
        for k in 1..=depth {
            expr = format!("mk{k}[w{c}_{k}]({expr})");
        }
        for k in (1..=depth).rev() {
            expr = format!("un{k}[u{c}_{k}]({expr})");
        }
        let _ = writeln!(src, "    let v{c} = {expr}@DST{c};");
        results.push(format!("v{c}"));
    }
    // Combine all results so everything is used.
    let mut combined = results[0].clone();
    for r in &results[1..] {
        combined = format!("choice({combined}, {r})");
    }
    let _ = writeln!(src, "    {combined}");
    let _ = writeln!(src, "}}");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_flow::{FlowAnalysis, Program};

    #[test]
    fn generated_programs_analyze_correctly() {
        for depth in 1..=3 {
            let src = nested_pairs_program(depth, 2);
            let program = Program::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let mut a = FlowAnalysis::new(&program).unwrap_or_else(|e| panic!("{e}\n{src}"));
            a.solve();
            assert!(a.flows("SRC0", "DST0"), "depth {depth}\n{src}");
            assert!(a.flows("SRC1", "DST1"), "depth {depth}");
            assert!(!a.flows("SRC0", "DST1"), "depth {depth}");
            assert!(!a.flows("SRC1", "DST0"), "depth {depth}");
        }
    }
}
