//! Workload generators and measurement helpers for the `rasc` benchmark
//! harness.
//!
//! The binaries in `src/bin/` regenerate every table- and figure-style
//! number from the paper's evaluation (see DESIGN.md's per-experiment
//! index and EXPERIMENTS.md for recorded results):
//!
//! * `table1` — the §8 process-privilege experiment (BANSHEE vs MOPS),
//!   on synthetic packages scaled to the paper's benchmark sizes;
//! * `fig1_monoid` — the 1-bit/n-bit gen/kill monoids (§3.3);
//! * `fig2_adversarial` — superexponential `|F_M^≡|` growth (§4, Fig. 2);
//! * `property1_monoid` — the "11 states / 58 representative functions"
//!   observation (§8);
//! * `solver_directions` — bidirectional vs forward vs backward solving
//!   (§5);
//! * `dataflow_vs_iterative` — constraint-based vs classical dataflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints_workload;
pub mod flow_workload;
pub mod workload;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Renders a duration in seconds with two decimals, like the paper's
/// Table 1.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}
