//! Synthetic MiniImp program generation.
//!
//! The paper's Table 1 checks four C packages (4k–229k lines). Those
//! sources (and MOPS's C front end) are not reproducible here, so the
//! harness generates MiniImp programs whose *analysis-relevant* shape is
//! controlled: statement count (the paper's size column), call-graph
//! fan-out, branching/looping structure, and the density of
//! property-relevant syscall events. Solver cost is a function of exactly
//! these knobs, so the comparison's shape survives the substitution (see
//! DESIGN.md).

use rasc_cfgir::{Block, Program, Stmt};
use rasc_devtools::Rng;

/// Parameters for the program generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Approximate total number of statements ("lines").
    pub target_stmts: usize,
    /// Number of functions (including `main`).
    pub functions: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Fraction of statements that are property-relevant events.
    pub event_density: f64,
    /// Fraction of statements that are calls.
    pub call_density: f64,
    /// Fraction of statements that open a branch.
    pub branch_density: f64,
    /// Fraction of statements that open a loop.
    pub loop_density: f64,
    /// The pool of property-relevant event names.
    pub event_names: Vec<String>,
    /// How many distinct irrelevant event names to sprinkle in.
    pub irrelevant_events: usize,
}

impl WorkloadConfig {
    /// A configuration shaped like the paper's benchmark programs, scaled
    /// to `target_stmts` statements.
    pub fn sized(target_stmts: usize, event_names: Vec<String>, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            target_stmts,
            functions: (target_stmts / 40).clamp(1, 4000),
            seed,
            event_density: 0.04,
            call_density: 0.12,
            branch_density: 0.10,
            loop_density: 0.04,
            event_names,
            irrelevant_events: 16,
        }
    }
}

/// Generates a deterministic synthetic program for `cfg`.
pub fn generate(cfg: &WorkloadConfig) -> Program {
    let mut rng = Rng::new(cfg.seed);
    let n_funs = cfg.functions.max(1);
    let per_fun = (cfg.target_stmts / n_funs).max(1);

    let mut program = Program::new();
    for f in 0..n_funs {
        let name = if f == 0 {
            "main".to_owned()
        } else {
            format!("f{f}")
        };
        let body = gen_block(&mut rng, cfg, n_funs, per_fun, 0);
        program.fun(&name, body);
    }
    program
}

fn gen_block(
    rng: &mut Rng,
    cfg: &WorkloadConfig,
    n_funs: usize,
    budget: usize,
    depth: usize,
) -> Block {
    let mut block = Block::new();
    let mut remaining = budget;
    while remaining > 0 {
        let roll: f64 = rng.gen_f64();
        if roll < cfg.event_density && !cfg.event_names.is_empty() {
            let name = &cfg.event_names[rng.gen_range(0..cfg.event_names.len())];
            block.push(Stmt::Event {
                name: name.clone(),
                args: vec![],
            });
            remaining -= 1;
        } else if roll < cfg.event_density + cfg.call_density && n_funs > 1 {
            let callee = rng.gen_range(1..n_funs);
            block.push(Stmt::Call(format!("f{callee}")));
            remaining -= 1;
        } else if roll < cfg.event_density + cfg.call_density + cfg.branch_density
            && depth < 4
            && remaining >= 4
        {
            let inner = remaining / 2;
            let then_block = gen_block(rng, cfg, n_funs, inner / 2, depth + 1);
            let else_block = gen_block(rng, cfg, n_funs, inner / 2, depth + 1);
            block.push(Stmt::If(then_block, else_block));
            remaining = remaining.saturating_sub(inner + 1);
        } else if roll
            < cfg.event_density + cfg.call_density + cfg.branch_density + cfg.loop_density
            && depth < 4
            && remaining >= 3
        {
            let inner = remaining / 3;
            let body = gen_block(rng, cfg, n_funs, inner, depth + 1);
            block.push(Stmt::While(body));
            remaining = remaining.saturating_sub(inner + 1);
        } else if rng.gen_bool(0.3) && cfg.irrelevant_events > 0 {
            // Irrelevant events model ordinary statements the property
            // does not observe.
            let k = rng.gen_range(0..cfg.irrelevant_events);
            block.push(Stmt::Event {
                name: format!("noop{k}"),
                args: vec![],
            });
            remaining -= 1;
        } else {
            block.push(Stmt::Skip);
            remaining -= 1;
        }
    }
    block
}

/// Generates a program exercising the *parametric* file-state property:
/// random open/close events over `n_descriptors` distinct descriptors,
/// with calls/branches/loops as in [`generate`].
pub fn generate_parametric(target_stmts: usize, n_descriptors: usize, seed: u64) -> Program {
    let mut rng = Rng::new(seed);
    let cfg = WorkloadConfig::sized(target_stmts, Vec::new(), seed);
    let n_funs = cfg.functions.max(1);
    let per_fun = (target_stmts / n_funs).max(1);
    let mut program = Program::new();
    for f in 0..n_funs {
        let name = if f == 0 {
            "main".to_owned()
        } else {
            format!("f{f}")
        };
        let body = gen_parametric_block(&mut rng, &cfg, n_funs, n_descriptors, per_fun, 0);
        program.fun(&name, body);
    }
    program
}

fn gen_parametric_block(
    rng: &mut Rng,
    cfg: &WorkloadConfig,
    n_funs: usize,
    n_descriptors: usize,
    budget: usize,
    depth: usize,
) -> Block {
    let mut block = Block::new();
    let mut remaining = budget;
    while remaining > 0 {
        let roll: f64 = rng.gen_f64();
        if roll < 0.10 {
            let fd = rng.gen_range(0..n_descriptors);
            let name = if rng.gen_bool(0.5) { "open" } else { "close" };
            block.push(Stmt::Event {
                name: name.to_owned(),
                args: vec![format!("fd{fd}")],
            });
            remaining -= 1;
        } else if roll < 0.10 + cfg.call_density && n_funs > 1 {
            let callee = rng.gen_range(1..n_funs);
            block.push(Stmt::Call(format!("f{callee}")));
            remaining -= 1;
        } else if roll < 0.10 + cfg.call_density + cfg.branch_density && depth < 4 && remaining >= 4
        {
            let inner = remaining / 2;
            let t = gen_parametric_block(rng, cfg, n_funs, n_descriptors, inner / 2, depth + 1);
            let e = gen_parametric_block(rng, cfg, n_funs, n_descriptors, inner / 2, depth + 1);
            block.push(Stmt::If(t, e));
            remaining = remaining.saturating_sub(inner + 1);
        } else {
            block.push(Stmt::Skip);
            remaining -= 1;
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_cfgir::Cfg;

    fn privilege_events() -> Vec<String> {
        ["seteuid_zero", "seteuid_nonzero", "execl"]
            .map(str::to_owned)
            .to_vec()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::sized(500, privilege_events(), 42);
        let p1 = generate(&cfg);
        let p2 = generate(&cfg);
        assert_eq!(p1, p2);
        let p3 = generate(&WorkloadConfig::sized(500, privilege_events(), 43));
        assert_ne!(p1, p3);
    }

    #[test]
    fn size_is_approximately_respected() {
        for target in [100, 1000, 5000] {
            let cfg = WorkloadConfig::sized(target, privilege_events(), 7);
            let p = generate(&cfg);
            let n = p.num_stmts();
            assert!(
                n >= target / 2 && n <= target * 2,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn generated_programs_build_cfgs() {
        let cfg = WorkloadConfig::sized(2000, privilege_events(), 11);
        let p = generate(&cfg);
        let graph = Cfg::build(&p).expect("valid program");
        assert!(graph.entry("main").is_ok());
        assert!(graph.call_sites().len() > 10);
    }

    #[test]
    fn events_appear_at_requested_density() {
        let cfg = WorkloadConfig::sized(4000, privilege_events(), 3);
        let p = generate(&cfg);
        let printed = p.to_string();
        let relevant =
            printed.matches("event seteuid").count() + printed.matches("event execl").count();
        assert!(
            relevant > 40,
            "expected ≥ 1% relevant events, got {relevant}"
        );
    }
}
