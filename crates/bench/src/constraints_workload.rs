//! Synthetic raw constraint systems for comparing solver strategies (§5).
//!
//! These workloads are pure regular-reachability systems (a constant
//! source, annotated variable-variable edges, an accepting query at a
//! sink), which all three solver strategies handle, so their costs are
//! directly comparable. The *ladder* shape gives each variable many
//! distinct path classes — the regime where the paper's complexity
//! analysis separates bidirectional (`i` up to `|S|^{|S|}`) from
//! unidirectional (`i = |S|`) solving.

use rasc_automata::{Alphabet, Dfa, SymbolId};
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::backward::BackwardSystem;
use rasc_core::forward::ForwardSystem;
use rasc_core::{SetExpr, System};
use rasc_devtools::Rng;

/// An annotated edge-list workload over some machine's alphabet.
#[derive(Debug, Clone)]
pub struct EdgeListWorkload {
    /// Number of variables.
    pub n_vars: usize,
    /// Edges `(from, to, word)`.
    pub edges: Vec<(usize, usize, Vec<SymbolId>)>,
    /// The variable seeded with the probe constant.
    pub source: usize,
    /// The variable queried.
    pub sink: usize,
}

/// A linear chain of `n` edges with random single-symbol annotations.
pub fn chain(n: usize, sigma: &Alphabet, seed: u64) -> EdgeListWorkload {
    let mut rng = Rng::new(seed);
    let syms: Vec<SymbolId> = sigma.symbols().collect();
    let edges = (0..n)
        .map(|i| (i, i + 1, vec![syms[rng.gen_range(0..syms.len())]]))
        .collect();
    EdgeListWorkload {
        n_vars: n + 1,
        edges,
        source: 0,
        sink: n,
    }
}

/// A ladder: `len` stages, each fanning out to `width` parallel edges with
/// random annotations and merging again — every stage multiplies the set
/// of distinct path words.
pub fn ladder(width: usize, len: usize, sigma: &Alphabet, seed: u64) -> EdgeListWorkload {
    let mut rng = Rng::new(seed);
    let syms: Vec<SymbolId> = sigma.symbols().collect();
    let mut edges = Vec::new();
    // Variables: stage hubs 0..=len, plus width rung vars per stage.
    let hub = |stage: usize| stage * (width + 1);
    let rung = |stage: usize, k: usize| stage * (width + 1) + 1 + k;
    for stage in 0..len {
        for k in 0..width {
            let w1 = vec![syms[rng.gen_range(0..syms.len())]];
            let w2 = vec![syms[rng.gen_range(0..syms.len())]];
            edges.push((hub(stage), rung(stage, k), w1));
            edges.push((rung(stage, k), hub(stage + 1), w2));
        }
    }
    EdgeListWorkload {
        n_vars: hub(len) + 1,
        edges,
        source: 0,
        sink: hub(len),
    }
}

/// A dense random digraph: every variable gets `out_degree` outgoing
/// edges with random single-symbol annotations, the first of which chains
/// to the next variable so the whole graph is one reachable cycle. High
/// out-degree makes the solver examine ~`out_degree` candidate facts for
/// every annotation class that lands in the solved form, so cold solving
/// costs far more than the solved form's size — the regime where a warm
/// restart (linear in the solved form) beats cold replay by the widest
/// margin (see `snapshot_restore`).
pub fn dense(n_vars: usize, out_degree: usize, sigma: &Alphabet, seed: u64) -> EdgeListWorkload {
    let mut rng = Rng::new(seed);
    let syms: Vec<SymbolId> = sigma.symbols().collect();
    let mut edges = Vec::with_capacity(n_vars * out_degree);
    for v in 0..n_vars {
        edges.push((
            v,
            (v + 1) % n_vars,
            vec![syms[rng.gen_range(0..syms.len())]],
        ));
        for _ in 1..out_degree {
            edges.push((
                v,
                rng.gen_range(0..n_vars),
                vec![syms[rng.gen_range(0..syms.len())]],
            ));
        }
    }
    EdgeListWorkload {
        n_vars,
        edges,
        source: 0,
        sink: n_vars - 1,
    }
}

/// Builds (without solving) a constructor-heavy chain system: a probe
/// constant at `v0`, then `stages` wrap/project pairs
/// `o(v_{2i}) ⊆ v_{2i+1}`, `o⁻¹(v_{2i+1}) ⊆ v_{2i+2}` — each stage forces
/// one source/sink meet and one decomposition, so the derived-fact count
/// grows linearly with `stages` (the scaling-bench workload for the
/// constructor machinery; see `solver_scaling`).
///
/// Returns the system, the final chain variable, and the probe head.
pub fn cons_chain(
    machine: &Dfa,
    stages: usize,
) -> (System<MonoidAlgebra>, rasc_core::VarId, rasc_core::ConsId) {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<_> = (0..=2 * stages)
        .map(|i| sys.var(&format!("v{i}")))
        .collect();
    let probe = sys.constructor("probe", &[]);
    let o = sys.constructor("o", &[rasc_core::Variance::Covariant]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[0]))
        .expect("well-formed");
    for i in 0..stages {
        sys.add(
            SetExpr::cons_vars(o, [vars[2 * i]]),
            SetExpr::var(vars[2 * i + 1]),
        )
        .expect("well-formed");
        sys.add(
            SetExpr::proj(o, 0, vars[2 * i + 1]),
            SetExpr::var(vars[2 * i + 2]),
        )
        .expect("well-formed");
    }
    (sys, vars[2 * stages], probe)
}

/// Outcome of running a workload: whether the probe reaches the sink with
/// an accepting annotation, plus a work measure (distinct annotated facts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Accepting reachability of the sink.
    pub reached: bool,
    /// Facts processed by the solver (duplicates included).
    pub facts: usize,
    /// Annotations interned by the algebra (bidirectional/forward only).
    pub annotations: usize,
}

/// Runs the workload on the bidirectional solver.
pub fn run_bidirectional(machine: &Dfa, wl: &EdgeListWorkload) -> RunOutcome {
    let mut sys = System::new(MonoidAlgebra::new(machine));
    let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constructor("probe", &[]);
    sys.add(SetExpr::cons(probe, []), SetExpr::var(vars[wl.source]))
        .expect("well-formed");
    for (from, to, word) in &wl.edges {
        let ann = sys.algebra_mut().word(word);
        sys.add_ann(SetExpr::var(vars[*from]), SetExpr::var(vars[*to]), ann)
            .expect("well-formed");
    }
    sys.solve();
    let reached = sys
        .lower_bound_annotations(vars[wl.sink], probe)
        .iter()
        .any(|&a| sys.algebra().is_accepting(a));
    let stats = sys.stats();
    RunOutcome {
        reached,
        facts: stats.facts_processed,
        annotations: stats.annotations,
    }
}

/// Runs the workload on the forward solver.
pub fn run_forward(machine: &Dfa, wl: &EdgeListWorkload) -> RunOutcome {
    let mut sys = ForwardSystem::new(machine);
    let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    let probe = sys.constant("probe");
    sys.add_constant(probe, vars[wl.source]);
    for (from, to, word) in &wl.edges {
        let ann = sys.word(word);
        sys.add_edge(vars[*from], vars[*to], ann);
    }
    sys.solve();
    let reached = sys.constant_accepting(vars[wl.sink], probe);
    let (_, facts, annotations) = sys.stats();
    RunOutcome {
        reached,
        facts,
        annotations,
    }
}

/// Runs the workload on the backward solver.
pub fn run_backward(machine: &Dfa, wl: &EdgeListWorkload) -> RunOutcome {
    let mut sys = BackwardSystem::new(machine);
    let vars: Vec<_> = (0..wl.n_vars).map(|i| sys.var(&format!("v{i}"))).collect();
    for (from, to, word) in &wl.edges {
        let ann = sys.word(word);
        sys.add_edge(vars[*from], vars[*to], ann);
    }
    let probe = sys.probe(vars[wl.sink], "sink");
    sys.solve();
    let reached = sys.reaches_accepting(probe, vars[wl.source]);
    let (_, facts) = sys.stats();
    RunOutcome {
        reached,
        facts,
        annotations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasc_automata::adversarial_machine;

    #[test]
    fn all_three_solvers_agree_on_chains() {
        let (sigma, machine) = adversarial_machine(3);
        for seed in 0..10 {
            let wl = chain(30, &sigma, seed);
            let b = run_bidirectional(&machine, &wl);
            let f = run_forward(&machine, &wl);
            let k = run_backward(&machine, &wl);
            assert_eq!(b.reached, f.reached, "seed {seed}");
            assert_eq!(b.reached, k.reached, "seed {seed}");
        }
    }

    #[test]
    fn all_three_solvers_agree_on_ladders() {
        let (sigma, machine) = adversarial_machine(3);
        for seed in 0..5 {
            let wl = ladder(4, 6, &sigma, seed);
            let b = run_bidirectional(&machine, &wl);
            let f = run_forward(&machine, &wl);
            let k = run_backward(&machine, &wl);
            assert_eq!(b.reached, f.reached, "seed {seed}");
            assert_eq!(b.reached, k.reached, "seed {seed}");
        }
    }

    #[test]
    fn forward_interns_fewer_annotations_on_ladders() {
        // §5.1: the unidirectional congruence is coarser, so the forward
        // solver should materialize no more monoid elements than the
        // bidirectional one on multiplicative workloads.
        let (sigma, machine) = adversarial_machine(4);
        let wl = ladder(6, 8, &sigma, 1);
        let b = run_bidirectional(&machine, &wl);
        let f = run_forward(&machine, &wl);
        assert!(
            f.annotations <= b.annotations,
            "forward {} vs bidirectional {}",
            f.annotations,
            b.annotations
        );
    }
}
