//! Criterion benchmark for the §7 flow analyses: the primary encoding
//! (type brackets as annotations) vs the §7.6 dual (calls as annotations),
//! across type depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasc_bench::flow_workload::nested_pairs_program;
use rasc_flow::{DualAnalysis, FlowAnalysis, Program};

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_analyses");
    for depth in [3usize, 6] {
        let src = nested_pairs_program(depth, 4);
        let program = Program::parse(&src).expect("generated program parses");
        group.bench_with_input(BenchmarkId::new("primary", depth), &program, |b, p| {
            b.iter(|| {
                let mut a = FlowAnalysis::new(p).expect("well-typed");
                a.solve();
                a.flows("SRC0", "DST0")
            })
        });
        group.bench_with_input(BenchmarkId::new("dual", depth), &program, |b, p| {
            b.iter(|| {
                let mut d = DualAnalysis::new(p).expect("well-typed");
                d.solve();
                d.flows("SRC0", "DST0")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
