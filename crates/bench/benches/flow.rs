//! Benchmark for the §7 flow analyses: the primary encoding (type
//! brackets as annotations) vs the §7.6 dual (calls as annotations),
//! across type depths.

use rasc_bench::flow_workload::nested_pairs_program;
use rasc_devtools::Bencher;
use rasc_flow::{DualAnalysis, FlowAnalysis, Program};

fn main() {
    let mut b = Bencher::new();
    for depth in [3usize, 6] {
        let src = nested_pairs_program(depth, 4);
        let program = Program::parse(&src).expect("generated program parses");
        b.bench(&format!("flow_analyses/primary/{depth}"), || {
            let mut a = FlowAnalysis::new(&program).expect("well-typed");
            a.solve();
            a.flows("SRC0", "DST0")
        });
        b.bench(&format!("flow_analyses/dual/{depth}"), || {
            let mut d = DualAnalysis::new(&program).expect("well-typed");
            d.solve();
            d.flows("SRC0", "DST0")
        });
    }
}
