//! Benchmark: annotation-based interprocedural dataflow vs the classical
//! iterative worklist baseline (§3.3).

use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_cfgir::Cfg;
use rasc_dataflow::{ConstraintDataflow, GenKillSpec, IterativeDataflow};
use rasc_devtools::Bencher;

fn main() {
    let mut spec = GenKillSpec::new();
    let mut event_names = Vec::new();
    for i in 0..8 {
        let f = spec.fact(&format!("x{i}"));
        spec.event(&format!("def_x{i}"), &[f], &[]);
        spec.event(&format!("kill_x{i}"), &[], &[f]);
        event_names.push(format!("def_x{i}"));
        event_names.push(format!("kill_x{i}"));
    }

    let mut b = Bencher::new().sample_size(10);
    for size in [500usize, 4_000] {
        let wl = WorkloadConfig::sized(size, event_names.clone(), 1234);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).expect("valid");
        b.bench(&format!("dataflow/constraints_genkill/{size}"), || {
            let mut df = ConstraintDataflow::new(&cfg, &spec, "main").expect("main");
            df.solve();
        });
        b.bench(&format!("dataflow/iterative/{size}"), || {
            let mut df = IterativeDataflow::new(&cfg, &spec, "main").expect("main");
            df.solve(0);
        });
    }
}
