//! Criterion benchmark: annotation-based interprocedural dataflow vs the
//! classical iterative worklist baseline (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_cfgir::Cfg;
use rasc_dataflow::{ConstraintDataflow, GenKillSpec, IterativeDataflow};

fn bench_dataflow(c: &mut Criterion) {
    let mut spec = GenKillSpec::new();
    let mut event_names = Vec::new();
    for i in 0..8 {
        let f = spec.fact(&format!("x{i}"));
        spec.event(&format!("def_x{i}"), &[f], &[]);
        spec.event(&format!("kill_x{i}"), &[], &[f]);
        event_names.push(format!("def_x{i}"));
        event_names.push(format!("kill_x{i}"));
    }

    let mut group = c.benchmark_group("dataflow");
    group.sample_size(10);
    for size in [500usize, 4_000] {
        let wl = WorkloadConfig::sized(size, event_names.clone(), 1234);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("constraints_genkill", size),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut df = ConstraintDataflow::new(cfg, &spec, "main").expect("main");
                    df.solve();
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("iterative", size), &cfg, |b, cfg| {
            b.iter(|| {
                let mut df = IterativeDataflow::new(cfg, &spec, "main").expect("main");
                df.solve(0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
