//! Benchmark for the §5 solver-strategy comparison on ladder workloads
//! over an adversarial machine.

use rasc_automata::adversarial_machine;
use rasc_bench::constraints_workload::{ladder, run_backward, run_bidirectional, run_forward};
use rasc_devtools::Bencher;

fn main() {
    let (sigma, machine) = adversarial_machine(4);
    let mut b = Bencher::new().sample_size(10);
    for len in [8usize, 32] {
        let wl = ladder(4, len, &sigma, 0xBEEF);
        b.bench(&format!("solver_directions/bidirectional/{len}"), || {
            run_bidirectional(&machine, &wl)
        });
        b.bench(&format!("solver_directions/forward/{len}"), || {
            run_forward(&machine, &wl)
        });
        b.bench(&format!("solver_directions/backward/{len}"), || {
            run_backward(&machine, &wl)
        });
    }
}
