//! Criterion benchmark for the §5 solver-strategy comparison on ladder
//! workloads over an adversarial machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasc_automata::adversarial_machine;
use rasc_bench::constraints_workload::{ladder, run_backward, run_bidirectional, run_forward};

fn bench_directions(c: &mut Criterion) {
    let (sigma, machine) = adversarial_machine(4);
    let mut group = c.benchmark_group("solver_directions");
    group.sample_size(10);
    for len in [8usize, 32] {
        let wl = ladder(4, len, &sigma, 0xBEEF);
        group.bench_with_input(BenchmarkId::new("bidirectional", len), &wl, |b, wl| {
            b.iter(|| run_bidirectional(&machine, wl))
        });
        group.bench_with_input(BenchmarkId::new("forward", len), &wl, |b, wl| {
            b.iter(|| run_forward(&machine, wl))
        });
        group.bench_with_input(BenchmarkId::new("backward", len), &wl, |b, wl| {
            b.iter(|| run_backward(&machine, wl))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_directions);
criterion_main!(benches);
