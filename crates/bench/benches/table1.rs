//! Benchmark for the Table 1 experiment (scaled-down sizes so a full
//! bench run stays minutes, not hours; the `table1` binary runs the
//! paper-scale version).

use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_cfgir::Cfg;
use rasc_devtools::Bencher;
use rasc_pdmc::{properties, ConstraintChecker};
use rasc_pushdown::PdsChecker;

fn main() {
    let (sigma, property) = properties::full_privilege_property();
    let event_names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();

    let mut b = Bencher::new().sample_size(10);
    for size in [400usize, 2_000, 8_000] {
        let wl = WorkloadConfig::sized(size, event_names.clone(), 0xC0FFEE);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).expect("valid");

        b.bench(
            &format!("table1_privilege/constraints_bidirectional/{size}"),
            || {
                let mut checker =
                    ConstraintChecker::new(&cfg, &sigma, &property, "main").expect("main");
                checker.solve();
                checker.violations().len()
            },
        );
        b.bench(&format!("table1_privilege/pds_poststar/{size}"), || {
            PdsChecker::new(&cfg, &sigma, &property, "main")
                .expect("main")
                .run()
                .len()
        });
    }
}
