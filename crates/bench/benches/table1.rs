//! Criterion benchmark for the Table 1 experiment (scaled-down sizes so a
//! full `cargo bench` stays minutes, not hours; the `table1` binary runs
//! the paper-scale version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasc_bench::workload::{generate, WorkloadConfig};
use rasc_cfgir::Cfg;
use rasc_pdmc::{properties, ConstraintChecker};
use rasc_pushdown::PdsChecker;

fn bench_privilege_checkers(c: &mut Criterion) {
    let (sigma, property) = properties::full_privilege_property();
    let event_names: Vec<String> = sigma.symbols().map(|s| sigma.name(s).to_owned()).collect();

    let mut group = c.benchmark_group("table1_privilege");
    group.sample_size(10);
    for size in [400usize, 2_000, 8_000] {
        let wl = WorkloadConfig::sized(size, event_names.clone(), 0xC0FFEE);
        let program = generate(&wl);
        let cfg = Cfg::build(&program).expect("valid");

        group.bench_with_input(
            BenchmarkId::new("constraints_bidirectional", size),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut checker =
                        ConstraintChecker::new(cfg, &sigma, &property, "main").expect("main");
                    checker.solve();
                    checker.violations().len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pds_poststar", size), &cfg, |b, cfg| {
            b.iter(|| {
                PdsChecker::new(cfg, &sigma, &property, "main")
                    .expect("main")
                    .run()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_privilege_checkers);
criterion_main!(benches);
