//! Benchmarks for the representative-function machinery: Figure 1
//! (gen/kill), Figure 2 (adversarial closure), and the §8
//! composition-is-a-table-lookup claim.

use rasc_automata::{adversarial_machine, Alphabet, Dfa, Monoid};
use rasc_core::algebra::{Algebra, GenKillAlgebra, MonoidAlgebra};
use rasc_devtools::Bencher;
use rasc_pdmc::properties;

fn main() {
    let mut b = Bencher::new();

    for n in [3usize, 4, 5] {
        let (_, machine) = adversarial_machine(n);
        b.bench(&format!("fig2_monoid_closure/{n}"), || {
            Monoid::of_dfa(&machine).len()
        });
    }

    // Memoized composition on the full privilege property: the steady
    // state should be a hash lookup.
    let (_, dfa) = properties::full_privilege_property();
    let mut alg = MonoidAlgebra::new(&dfa);
    let mut anns = Vec::new();
    for sym in 0..9u32 {
        anns.push(alg.symbol(rasc_automata::SymbolId::from_index(sym as usize)));
    }
    // Warm the memo table.
    for &a in &anns {
        for &c in &anns {
            let _ = alg.compose(a, c);
        }
    }
    let mut i = 0usize;
    b.bench("property1_compose_memoized", || {
        let a = anns[i % anns.len()];
        let c = anns[(i / anns.len()) % anns.len()];
        i += 1;
        alg.compose(a, c)
    });

    // The bit-parallel gen/kill algebra (§3.3) for comparison.
    let mut gk = GenKillAlgebra::new(32);
    let t1 = gk.transfer(0xffff, 0xffff0000);
    let t2 = gk.transfer(0x0f0f, 0xf0f0);
    b.bench("genkill_compose", || gk.compose(t1, t2));

    for n in [2u32, 4, 6] {
        let mut sigma = Alphabet::new();
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let g = sigma.intern(&format!("g{i}"));
                let k = sigma.intern(&format!("k{i}"));
                (g, k)
            })
            .collect();
        let mut product = Dfa::one_bit(&sigma, pairs[0].0, pairs[0].1);
        for &(g, k) in &pairs[1..] {
            product = product.product(&Dfa::one_bit(&sigma, g, k));
        }
        b.bench(&format!("fig1_nbit_closure/{n}"), || {
            Monoid::of_dfa(&product).len()
        });
    }
}
