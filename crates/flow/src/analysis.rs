//! The primary flow analysis (§7.2–§7.5): calls as terms, type brackets
//! as regular annotations.

use std::collections::HashMap;

use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::{ConsId, SetExpr, System, VarId, Variance};

use crate::ast::{Expr, Program};
use crate::brackets::BracketLang;
use crate::error::{FlowError, Result};
use crate::types::{TypeId, TypeTable};

/// Per-function signature labels: one top-level label for the parameter
/// and one for the return (constraints extend only to top-level
/// constructors, §7.2).
#[derive(Debug, Clone, Copy)]
struct FunSig {
    param_ty: Option<TypeId>,
    param_label: Option<VarId>,
    ret_ty: TypeId,
    ret_label: VarId,
}

/// The paper's primary context-sensitive, field-sensitive flow analysis:
/// polymorphic recursion (calls/returns matched by per-site constructors)
/// combined with non-structural subtyping (type-constructor matching as a
/// regular bracket language).
///
/// See the crate-level documentation for an example.
#[derive(Debug)]
pub struct FlowAnalysis {
    sys: System<MonoidAlgebra>,
    brackets: BracketLang,
    types: TypeTable,
    labels: HashMap<String, VarId>,
    label_types: HashMap<String, TypeId>,
    probes: HashMap<String, ConsId>,
}

impl FlowAnalysis {
    /// Type-checks `program` and generates its constraints.
    ///
    /// # Errors
    ///
    /// Returns type errors ([`FlowError::TypeMismatch`],
    /// [`FlowError::ProjectNonPair`], [`FlowError::Unbound`]) and
    /// [`FlowError::MissingMain`].
    pub fn new(program: &Program) -> Result<FlowAnalysis> {
        if program.find("main").is_none() {
            return Err(FlowError::MissingMain);
        }
        // Intern every type occurring anywhere: declared signatures plus
        // the types of all subexpressions (a checking pre-pass), so the
        // bracket automaton covers every pair the program constructs.
        let mut types = TypeTable::new();
        collect_types(program, &mut types)?;
        let brackets = BracketLang::build(&types);
        let mut sys: System<MonoidAlgebra> = System::new(MonoidAlgebra::new(&brackets.dfa));

        // Function signatures first (mutual recursion).
        let mut sigs: HashMap<String, FunSig> = HashMap::new();
        for f in &program.funs {
            let (param_ty, param_label) = match &f.param {
                Some((_, ty)) => {
                    let t = types.intern(ty);
                    (Some(t), Some(sys.var(&format!("{}::param", f.name))))
                }
                None => (None, None),
            };
            let ret_ty = types.intern(&f.ret);
            let ret_label = sys.var(&format!("{}::ret", f.name));
            sigs.insert(
                f.name.clone(),
                FunSig {
                    param_ty,
                    param_label,
                    ret_ty,
                    ret_label,
                },
            );
        }

        let mut analysis = FlowAnalysis {
            sys,
            brackets,
            types,
            labels: HashMap::new(),
            label_types: HashMap::new(),
            probes: HashMap::new(),
        };

        // Generate constraints per function body.
        let mut sites: HashMap<String, ConsId> = HashMap::new();
        for f in &program.funs {
            let sig = sigs[&f.name];
            let mut env: HashMap<&str, (TypeId, VarId)> = HashMap::new();
            if let (Some((name, _)), Some(t), Some(l)) = (&f.param, sig.param_ty, sig.param_label) {
                env.insert(name, (t, l));
            }
            let (body_ty, body_label) = analysis.gen(&f.body, &env, &sigs, &mut sites)?;
            if body_ty != sig.ret_ty {
                return Err(FlowError::TypeMismatch {
                    context: format!("return of `{}`", f.name),
                    expected: analysis.types.render(sig.ret_ty),
                    found: analysis.types.render(body_ty),
                });
            }
            analysis
                .sys
                .add(SetExpr::var(body_label), SetExpr::var(sig.ret_label))
                .expect("well-formed");
        }
        Ok(analysis)
    }

    fn fresh(&mut self, label: &Option<String>, ty: TypeId, what: &str) -> VarId {
        let v = self.sys.var(label.as_deref().unwrap_or(what));
        if let Some(l) = label {
            self.labels.insert(l.clone(), v);
            self.label_types.insert(l.clone(), ty);
        }
        v
    }

    fn gen(
        &mut self,
        e: &Expr,
        env: &HashMap<&str, (TypeId, VarId)>,
        sigs: &HashMap<String, FunSig>,
        sites: &mut HashMap<String, ConsId>,
    ) -> Result<(TypeId, VarId)> {
        match e {
            Expr::Int { value, label } => {
                let ty = self.types.int();
                let v = self.fresh(label, ty, "int");
                // Seed a distinct constant per literal occurrence so alias
                // queries (§7.5) see concrete abstract values.
                let k = self.sys.num_vars();
                let lit = self.sys.constructor(&format!("lit_{value}_{k}"), &[]);
                self.sys
                    .add(SetExpr::cons(lit, []), SetExpr::var(v))
                    .expect("well-formed");
                Ok((ty, v))
            }
            Expr::Var { name, label } => {
                let &(ty, src) = env
                    .get(name.as_str())
                    .ok_or_else(|| FlowError::Unbound(name.clone()))?;
                let v = self.fresh(label, ty, name);
                self.sys
                    .add(SetExpr::var(src), SetExpr::var(v))
                    .expect("well-formed");
                Ok((ty, v))
            }
            Expr::Pair { fst, snd, label } => {
                let (t1, l1) = self.gen(fst, env, sigs, sites)?;
                let (t2, l2) = self.gen(snd, env, sigs, sites)?;
                // The pair type must already be interned (it is a subterm
                // of some declared type, or we intern it now for
                // expression-local pairs).
                let pair_ty = self.pair_type(t1, t2)?;
                let p = self.fresh(label, pair_ty, "pair");
                // tl(σ₁) ⊆^{[1_π} P and tl(σ₂) ⊆^{[2_π} P (§7.2.2).
                let a1 = self.bracket_open(0, pair_ty);
                let a2 = self.bracket_open(1, pair_ty);
                self.sys
                    .add_ann(SetExpr::var(l1), SetExpr::var(p), a1)
                    .expect("well-formed");
                self.sys
                    .add_ann(SetExpr::var(l2), SetExpr::var(p), a2)
                    .expect("well-formed");
                Ok((pair_ty, p))
            }
            Expr::Proj {
                subject,
                index,
                label,
            } => {
                let (pt, pl) = self.gen(subject, env, sigs, sites)?;
                let comp_ty =
                    self.types
                        .component(pt, *index)
                        .ok_or_else(|| FlowError::ProjectNonPair {
                            found: self.types.render(pt),
                        })?;
                let z = self.fresh(label, comp_ty, "proj");
                // P ⊆^{]ᵢ_π} Z.
                let a = self.bracket_close(*index, pt);
                self.sys
                    .add_ann(SetExpr::var(pl), SetExpr::var(z), a)
                    .expect("well-formed");
                Ok((comp_ty, z))
            }
            Expr::Call {
                callee,
                site,
                arg,
                label,
            } => {
                let sig = *sigs
                    .get(callee)
                    .ok_or_else(|| FlowError::Unbound(callee.clone()))?;
                // Per-site constructor o_i (§7.2.1).
                let o_i = match sites.get(site) {
                    Some(&c) => c,
                    None => {
                        let c = self
                            .sys
                            .constructor(&format!("o_{site}"), &[Variance::Covariant]);
                        sites.insert(site.clone(), c);
                        c
                    }
                };
                match (arg, sig.param_ty, sig.param_label) {
                    (Some(a), Some(pt), Some(pl)) => {
                        let (at, al) = self.gen(a, env, sigs, sites)?;
                        if at != pt {
                            return Err(FlowError::TypeMismatch {
                                context: format!("argument of `{callee}`"),
                                expected: self.types.render(pt),
                                found: self.types.render(at),
                            });
                        }
                        // o_i(A) ⊆ P_f (Fig. 12: o_i(B) ⊆ Y).
                        self.sys
                            .add(SetExpr::cons_vars(o_i, [al]), SetExpr::var(pl))
                            .expect("well-formed");
                    }
                    (None, None, None) => {}
                    _ => {
                        return Err(FlowError::TypeMismatch {
                            context: format!("arity of call to `{callee}`"),
                            expected: if sig.param_ty.is_some() {
                                "one argument".to_owned()
                            } else {
                                "no argument".to_owned()
                            },
                            found: if arg.is_some() {
                                "one argument".to_owned()
                            } else {
                                "no argument".to_owned()
                            },
                        })
                    }
                }
                let t = self.fresh(label, sig.ret_ty, "call");
                // o_i⁻¹(R_f) ⊆ T (Fig. 12: o_i⁻¹(H) ⊆ T).
                self.sys
                    .add(SetExpr::proj(o_i, 0, sig.ret_label), SetExpr::var(t))
                    .expect("well-formed");
                Ok((sig.ret_ty, t))
            }
            Expr::Let { name, bound, body } => {
                let (bt, bl) = self.gen(bound, env, sigs, sites)?;
                let mut inner = env.clone();
                inner.insert(name, (bt, bl));
                self.gen(body, &inner, sigs, sites)
            }
            Expr::Choice { fst, snd, label } => {
                let (t1, l1) = self.gen(fst, env, sigs, sites)?;
                let (t2, l2) = self.gen(snd, env, sigs, sites)?;
                if t1 != t2 {
                    return Err(FlowError::TypeMismatch {
                        context: "arms of choice".to_owned(),
                        expected: self.types.render(t1),
                        found: self.types.render(t2),
                    });
                }
                let v = self.fresh(label, t1, "choice");
                self.sys
                    .add(SetExpr::var(l1), SetExpr::var(v))
                    .expect("well-formed");
                self.sys
                    .add(SetExpr::var(l2), SetExpr::var(v))
                    .expect("well-formed");
                Ok((t1, v))
            }
        }
    }

    fn pair_type(&mut self, t1: TypeId, t2: TypeId) -> Result<TypeId> {
        // Rebuild the surface type and intern: component ids are stable.
        fn surface(table: &TypeTable, t: TypeId) -> crate::ast::Type {
            if table.is_pair(t) {
                crate::ast::Type::Pair(
                    Box::new(surface(table, table.component(t, 0).expect("pair"))),
                    Box::new(surface(table, table.component(t, 1).expect("pair"))),
                )
            } else {
                crate::ast::Type::Int
            }
        }
        let ty = crate::ast::Type::Pair(
            Box::new(surface(&self.types, t1)),
            Box::new(surface(&self.types, t2)),
        );
        let before = self.types.all().count();
        let id = self.types.intern(&ty);
        if self.types.all().count() != before {
            // The collect_types pre-pass interns every expression type, so
            // a fresh pair type here is a bug in the pre-pass.
            return Err(FlowError::Internal(format!(
                "pair type {} missed by the type-collection pre-pass",
                self.types.render(id)
            )));
        }
        Ok(id)
    }

    fn bracket_open(&mut self, component: usize, pair: TypeId) -> rasc_core::algebra::AnnId {
        let sym = self.brackets.open(component, pair);
        self.sys.algebra_mut().word(&[sym])
    }

    fn bracket_close(&mut self, component: usize, pair: TypeId) -> rasc_core::algebra::AnnId {
        let sym = self.brackets.close(component, pair);
        self.sys.algebra_mut().word(&[sym])
    }

    /// Runs constraint resolution.
    pub fn solve(&mut self) {
        self.sys.solve();
    }

    /// The set variable of a source label.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownLabel`] if no expression carries it.
    pub fn label_var(&self, label: &str) -> Result<VarId> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| FlowError::UnknownLabel(label.to_owned()))
    }

    /// Whether values *flow* from `src` to `dst` along a matched path
    /// (§7.3): a fresh constant seeded at `src` appears at `dst`'s top
    /// level with a balanced (accepting) bracket annotation.
    ///
    /// # Panics
    ///
    /// Panics if either label is unknown (use [`FlowAnalysis::label_var`]
    /// to validate labels first when they come from user input).
    pub fn flows(&mut self, src: &str, dst: &str) -> bool {
        let probe = self.probe(src);
        let dst_var = self.label_var(dst).expect("unknown destination label");
        self.sys
            .lower_bound_annotations(dst_var, probe)
            .iter()
            .any(|&a| self.sys.algebra().is_accepting(a))
    }

    /// Like the matched query but along *PN paths* (§7.3): the value may
    /// sit inside unreturned calls or unprojected structure (the P part)
    /// and may have escaped through unmatched returns/projections (the N
    /// part). Acceptance is "substring of a matched flow" — for the
    /// bracket languages here, exactly the N-then-P words.
    pub fn flows_pn(&mut self, src: &str, dst: &str) -> bool {
        let probe = self.probe(src);
        let dst_var = self.label_var(dst).expect("unknown destination label");
        let anns = self.sys.pn_occurrence_annotations(dst_var, probe);
        anns.iter().any(|&a| self.sys.algebra().is_useful(a))
    }

    /// Stack-aware alias query (§7.5): do the two labels' solutions share
    /// a ground term? Term sets encode calling contexts, so labels whose
    /// flat value sets overlap can still be proven non-aliased.
    pub fn may_alias(&mut self, l1: &str, l2: &str) -> Result<bool> {
        let v1 = self.label_var(l1)?;
        let v2 = self.label_var(l2)?;
        Ok(self.sys.intersect_nonempty(v1, v2))
    }

    fn probe(&mut self, src: &str) -> ConsId {
        if let Some(&c) = self.probes.get(src) {
            return c;
        }
        let var = self.label_var(src).expect("unknown source label");
        let c = self.sys.constructor(&format!("probe_{src}"), &[]);
        self.sys
            .add(SetExpr::cons(c, []), SetExpr::var(var))
            .expect("well-formed");
        self.sys.solve();
        self.probes.insert(src.to_owned(), c);
        c
    }

    /// The underlying constraint system.
    pub fn system(&self) -> &System<MonoidAlgebra> {
        &self.sys
    }

    /// The interned type table (for diagnostics).
    pub fn types(&self) -> &TypeTable {
        &self.types
    }
}

/// Type-checking pre-pass: interns the type of every subexpression so the
/// bracket automaton covers every pair the program can construct. The
/// error cases are re-checked (with labels available) during constraint
/// generation; this pass only needs the types.
pub(crate) fn collect_types(program: &Program, types: &mut TypeTable) -> Result<()> {
    // Signatures first.
    let mut sigs: HashMap<&str, (Option<TypeId>, TypeId)> = HashMap::new();
    for f in &program.funs {
        let param = f.param.as_ref().map(|(_, ty)| types.intern(ty));
        let ret = types.intern(&f.ret);
        sigs.insert(&f.name, (param, ret));
    }

    fn walk(
        e: &Expr,
        env: &HashMap<&str, TypeId>,
        sigs: &HashMap<&str, (Option<TypeId>, TypeId)>,
        types: &mut TypeTable,
    ) -> Result<TypeId> {
        match e {
            Expr::Int { .. } => Ok(types.int()),
            Expr::Var { name, .. } => env
                .get(name.as_str())
                .copied()
                .ok_or_else(|| FlowError::Unbound(name.clone())),
            Expr::Pair { fst, snd, .. } => {
                let t1 = walk(fst, env, sigs, types)?;
                let t2 = walk(snd, env, sigs, types)?;
                fn surface(table: &TypeTable, t: TypeId) -> crate::ast::Type {
                    if table.is_pair(t) {
                        crate::ast::Type::Pair(
                            Box::new(surface(table, table.component(t, 0).expect("pair"))),
                            Box::new(surface(table, table.component(t, 1).expect("pair"))),
                        )
                    } else {
                        crate::ast::Type::Int
                    }
                }
                let ty = crate::ast::Type::Pair(
                    Box::new(surface(types, t1)),
                    Box::new(surface(types, t2)),
                );
                Ok(types.intern(&ty))
            }
            Expr::Proj { subject, index, .. } => {
                let pt = walk(subject, env, sigs, types)?;
                types
                    .component(pt, *index)
                    .ok_or_else(|| FlowError::ProjectNonPair {
                        found: types.render(pt),
                    })
            }
            Expr::Call { callee, arg, .. } => {
                let &(param, ret) = sigs
                    .get(callee.as_str())
                    .ok_or_else(|| FlowError::Unbound(callee.clone()))?;
                if let Some(a) = arg {
                    walk(a, env, sigs, types)?;
                }
                let _ = param;
                Ok(ret)
            }
            Expr::Let { name, bound, body } => {
                let bt = walk(bound, env, sigs, types)?;
                let mut inner = env.clone();
                inner.insert(name, bt);
                walk(body, &inner, sigs, types)
            }
            Expr::Choice { fst, snd, .. } => {
                let t1 = walk(fst, env, sigs, types)?;
                let t2 = walk(snd, env, sigs, types)?;
                if t1 != t2 {
                    return Err(FlowError::TypeMismatch {
                        context: "arms of choice".to_owned(),
                        expected: types.render(t1),
                        found: types.render(t2),
                    });
                }
                Ok(t1)
            }
        }
    }

    for f in &program.funs {
        let mut env: HashMap<&str, TypeId> = HashMap::new();
        if let Some((name, ty)) = &f.param {
            let t = types.intern(ty);
            env.insert(name, t);
        }
        walk(&f.body, &env, &sigs, types)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    fn analyze(src: &str) -> FlowAnalysis {
        let program = Program::parse(src).unwrap();
        let mut a = FlowAnalysis::new(&program).unwrap();
        a.solve();
        a
    }

    const FIG11: &str = "fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }\n\
                         fn main() -> int { pair[i](2@B)@T.2@V }";

    #[test]
    fn figure_11_flow_b_to_v() {
        let mut a = analyze(FIG11);
        assert!(a.flows("B", "V"), "the paper's §7.4 derivation");
        assert!(!a.flows("A", "V"), "component 1 does not reach .2");
        // Y → V crosses an *unmatched return* (an N-path); the solver
        // models matched and P-paths (unreturned calls), so this is not
        // reported — see DESIGN.md.
        assert!(!a.flows("Y", "V"));
        // B → Y enters the callee without returning: a P-path, visible to
        // the PN query but not the matched one.
        assert!(!a.flows("B", "Y"));
    }

    #[test]
    fn partially_matched_flow_into_callee() {
        let mut a = analyze(FIG11);
        // B flows into the callee's parameter y, but wrapped in o_i (the
        // call never "returns" on this path): PN yes, matched no... except
        // the parameter label Y is inside the callee where the probe is
        // wrapped.
        assert!(a.flows_pn("B", "Y"));
    }

    #[test]
    fn projection_components_do_not_mix() {
        let mut a = analyze("fn main() -> int { (1@ONE, 2@TWO).1@FST }");
        assert!(a.flows("ONE", "FST"));
        assert!(!a.flows("TWO", "FST"));
    }

    #[test]
    fn polymorphic_recursion_contexts_separated() {
        // id is used at two sites with different values; matched flow must
        // keep them apart.
        let mut a = analyze(
            "fn id(x: int) -> int { x }\n\
             fn main() -> int { (id[s1](1@L1)@R1, id[s2](2@L2)@R2).1 }",
        );
        assert!(a.flows("L1", "R1"));
        assert!(a.flows("L2", "R2"));
        assert!(!a.flows("L1", "R2"), "cross-context flow excluded");
        assert!(!a.flows("L2", "R1"));
    }

    #[test]
    fn recursive_function_terminates() {
        let mut a = analyze(
            "fn rec(x: int) -> int { rec[r](x@IN)@OUT }\n\
             fn main() -> int { rec[top](5@SEED)@RES }",
        );
        // The recursion never returns a base value; SEED flows into IN
        // (partially matched) but no matched flow reaches RES.
        assert!(a.flows_pn("SEED", "IN"));
        assert!(!a.flows("SEED", "RES"));
    }

    #[test]
    fn nested_pair_flow() {
        let mut a = analyze(
            "fn mk(x: int) -> ((int, int), int) { ((x@X1, 2)@INNER, 3)@OUTER }\n\
             fn main() -> int { mk[m](7@SRC)@GOT.1.1@DST }",
        );
        assert!(a.flows("SRC", "DST"));
        assert!(!a.flows("SRC", "OUTER"), "SRC is nested, not at top level");
    }

    #[test]
    fn stack_aware_alias_negative() {
        // Two call sites exchanging two constants: the same flat values,
        // disjoint term sets (the §7.5 idea transplanted to MiniLam).
        let mut a = analyze(
            "fn id(x: int) -> int { x@MID }\n\
             fn main() -> int { (id[s1](1@ONE)@R1, id[s2](2@TWO)@R2).1 }",
        );
        assert!(a.may_alias("R1", "R1").unwrap(), "a label aliases itself");
        assert!(!a.may_alias("R1", "R2").unwrap(), "distinct literals");
    }

    #[test]
    fn let_bindings_flow_through() {
        let mut a = analyze(
            "fn main() -> int {\n\
                 let p = (1@ONE, 2@TWO)@P;\n\
                 let x = p.1@FST;\n\
                 x@USE\n\
             }",
        );
        assert!(a.flows("ONE", "USE"));
        assert!(!a.flows("TWO", "USE"));
        assert!(a.flows("FST", "USE"));
    }

    #[test]
    fn let_shadowing_uses_innermost_binding() {
        let mut a = analyze(
            "fn main() -> int {\n\
                 let x = 1@OUTER;\n\
                 let x = 2@INNER;\n\
                 x@USE\n\
             }",
        );
        assert!(a.flows("INNER", "USE"));
        assert!(!a.flows("OUTER", "USE"));
    }

    #[test]
    fn choice_merges_both_arms() {
        let mut a = analyze("fn main() -> int { choice(1@L, 2@R)@C }");
        assert!(a.flows("L", "C"));
        assert!(a.flows("R", "C"));
    }

    #[test]
    fn choice_with_calls_remains_context_sensitive() {
        // Both arms call id at different sites; the merge must not create
        // cross-context flow.
        let mut a = analyze(
            "fn id(x: int) -> int { x }\n\
             fn main() -> int {\n\
                 choice(id[s1](1@L1)@R1, id[s2](2@L2)@R2)@C\n\
             }",
        );
        assert!(a.flows("L1", "C"));
        assert!(a.flows("L2", "C"));
        assert!(!a.flows("L1", "R2"));
    }

    #[test]
    fn choice_arms_must_agree_in_type() {
        let program = Program::parse("fn main() -> int { choice(1, (2, 3)).1 }");
        if let Ok(p) = program {
            assert!(matches!(
                FlowAnalysis::new(&p),
                Err(FlowError::TypeMismatch { .. })
            ));
        }
    }

    #[test]
    fn type_errors_reported() {
        let program = Program::parse("fn main() -> int { (1, 2) }").unwrap();
        assert!(matches!(
            FlowAnalysis::new(&program),
            Err(FlowError::TypeMismatch { .. })
        ));
        let program = Program::parse("fn main() -> int { 1 .1 }").unwrap();
        assert!(matches!(
            FlowAnalysis::new(&program),
            Err(FlowError::ProjectNonPair { .. })
        ));
        let program = Program::parse("fn main() -> int { nope }").unwrap();
        assert!(matches!(
            FlowAnalysis::new(&program),
            Err(FlowError::Unbound(_))
        ));
        let program = Program::parse("fn f() -> int { 1 }").unwrap();
        assert!(matches!(
            FlowAnalysis::new(&program),
            Err(FlowError::MissingMain)
        ));
    }

    #[test]
    fn unknown_labels_rejected() {
        let a = analyze(FIG11);
        assert!(matches!(
            a.label_var("NOPE"),
            Err(FlowError::UnknownLabel(_))
        ));
    }
}
