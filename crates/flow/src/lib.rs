//! Type-based flow analysis with polymorphic recursion and non-structural
//! subtyping (paper §7).
//!
//! The analysis operates on **MiniLam**, the paper's first-order source
//! language with pairs (§7.1). Two precision-equivalent formulations are
//! provided:
//!
//! * [`FlowAnalysis`] — the paper's primary analysis: function call/return
//!   matching is the *context-free* property, modeled with per-site
//!   constructors `o_i` (the set-constraint/CFL-reachability reduction of
//!   §7.2.1); type-constructor matching is the *regular* property, modeled
//!   with bracket annotations `[ᵢ_π` / `]ᵢ_π` over an automaton derived
//!   from the program's types (Figure 10, §7.2.2). This combination
//!   supports polymorphic recursion *and* non-structural subtyping — the
//!   open problem the paper solves.
//! * [`DualAnalysis`] (§7.6) — the roles swapped: an n-ary `pair`
//!   constructor carries type matching, and call/return brackets `[ᵢ`/`]ᵢ`
//!   are the regular annotations (recursive call cycles approximated with
//!   ε, i.e. monomorphically — the standard approximation).
//!
//! Flow queries (§7.3) seed a fresh constant at the source label and test
//! for an *accepting* (bracket-balanced) annotation at the target.
//! Stack-aware alias queries (§7.5) intersect two labels' term sets.
//!
//! # Example
//!
//! The paper's Figure 11 program:
//!
//! ```
//! use rasc_flow::{FlowAnalysis, Program};
//!
//! let src = r#"
//!     fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }
//!     fn main() -> int { pair[i](2@B)@T.2@V }
//! "#;
//! let program = Program::parse(src)?;
//! let mut analysis = FlowAnalysis::new(&program)?;
//! analysis.solve();
//! // Flow from B to V is captured (the paper's §7.4 derivation).
//! assert!(analysis.flows("B", "V"));
//! // The constant 1's label A does not flow to V (it is component 1).
//! assert!(!analysis.flows("A", "V"));
//! # Ok::<(), rasc_flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod ast;
mod brackets;
mod dual;
mod error;
mod types;

pub use analysis::FlowAnalysis;
pub use ast::{Expr, FunDef, Program, Type};
pub use dual::DualAnalysis;
pub use error::{FlowError, Result};
pub use types::{TypeId, TypeTable};
