//! Bracket-annotation automata (paper §7.2.2, Figure 10).
//!
//! Type-constructor matching uses annotations `[ᵢ_π` (the value becomes
//! component `i` of a pair of type `π`) and `]ᵢ_π` (component `i` is
//! projected out of a `π` pair). Without recursive types an open bracket
//! cannot be followed by the *same* open before its close, so the matched
//! language — though it looks context-free — is bounded by the nesting
//! depth of the program's largest type and is regular.
//!
//! The automaton's states are valid *open chains*: stacks of `(i, π)`
//! where each enclosing pair type contains the previous one at the opened
//! position. The empty chain is the single accepting state (balanced
//! words). For the paper's "single level pairs" (Figure 10) this yields
//! exactly start + one state per (component, pair) + dead.

use std::collections::HashMap;

use rasc_automata::{Alphabet, Dfa, StateId, SymbolId};

use crate::types::{TypeId, TypeTable};

/// The bracket-annotation language of a program's types.
#[derive(Debug, Clone)]
pub(crate) struct BracketLang {
    /// The matched-bracket DFA (complete; accepting = balanced).
    pub dfa: Dfa,
    opens: HashMap<(usize, TypeId), SymbolId>,
    closes: HashMap<(usize, TypeId), SymbolId>,
}

impl BracketLang {
    /// Builds the bracket language for all pair types in `table`.
    pub fn build(table: &TypeTable) -> BracketLang {
        let mut sigma = Alphabet::new();
        let mut opens = HashMap::new();
        let mut closes = HashMap::new();
        let pairs: Vec<TypeId> = table.pairs().collect();
        for &pi in &pairs {
            for i in 0..2 {
                opens.insert(
                    (i, pi),
                    sigma.intern(&format!("open{}_t{}", i + 1, pi.index())),
                );
                closes.insert(
                    (i, pi),
                    sigma.intern(&format!("close{}_t{}", i + 1, pi.index())),
                );
            }
        }

        // States: valid open chains, discovered by BFS from the empty
        // chain. A chain `…(i, π)` means the tracked value is currently a
        // component at position `i` of a `π`-pair; a further open `(j, π')`
        // is valid when `π'_j = π`.
        let mut chains: Vec<Vec<(usize, TypeId)>> = vec![Vec::new()];
        let mut chain_ids: HashMap<Vec<(usize, TypeId)>, usize> = HashMap::new();
        chain_ids.insert(Vec::new(), 0);
        let mut dfa = Dfa::new(sigma.len());
        let s0 = dfa.add_state(true); // empty chain: balanced
        let dead = dfa.add_state(false);
        for sym in sigma.symbols() {
            dfa.set_transition(dead, sym, dead);
        }
        dfa.set_start(s0);
        let mut dfa_states: Vec<StateId> = vec![s0];

        let mut i = 0;
        while i < chains.len() {
            let chain = chains[i].clone();
            let state = dfa_states[i];
            for &pi in &pairs {
                for comp in 0..2 {
                    let open = opens[&(comp, pi)];
                    let close = closes[&(comp, pi)];
                    // Open (comp, π): valid if the chain is empty (any
                    // origin) or π's component matches the current pair.
                    let open_valid = match chain.last() {
                        None => true,
                        Some(&(_, cur)) => table.component(pi, comp) == Some(cur),
                    };
                    if open_valid {
                        let mut next = chain.clone();
                        next.push((comp, pi));
                        let idx = *chain_ids.entry(next.clone()).or_insert_with(|| {
                            chains.push(next);
                            dfa_states.push(dfa.add_state(false));
                            chains.len() - 1
                        });
                        dfa.set_transition(state, open, dfa_states[idx]);
                    } else {
                        dfa.set_transition(state, open, dead);
                    }
                    // Close (comp, π): pops a matching open.
                    match chain.last() {
                        Some(&(c, p)) if c == comp && p == pi => {
                            let prev = &chain[..chain.len() - 1];
                            let idx = chain_ids[prev];
                            dfa.set_transition(state, close, dfa_states[idx]);
                        }
                        _ => dfa.set_transition(state, close, dead),
                    }
                }
            }
            i += 1;
        }
        BracketLang { dfa, opens, closes }
    }

    /// The `[ᵢ_π` symbol.
    pub fn open(&self, component: usize, pair: TypeId) -> SymbolId {
        self.opens[&(component, pair)]
    }

    /// The `]ᵢ_π` symbol.
    pub fn close(&self, component: usize, pair: TypeId) -> SymbolId {
        self.closes[&(component, pair)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Type;

    fn single_level() -> (TypeTable, BracketLang, TypeId) {
        let mut table = TypeTable::new();
        let pi = table.intern(&Type::Pair(Box::new(Type::Int), Box::new(Type::Int)));
        let lang = BracketLang::build(&table);
        (table, lang, pi)
    }

    #[test]
    fn figure_10_shape() {
        // Largest type pair(int): start + [1-open + [2-open + dead = 4.
        let (_, lang, _) = single_level();
        assert_eq!(lang.dfa.len(), 4);
        assert_eq!(lang.dfa.alphabet_len(), 4);
    }

    #[test]
    fn balanced_words_accepted() {
        let (_, lang, pi) = single_level();
        let o1 = lang.open(0, pi);
        let c1 = lang.close(0, pi);
        let o2 = lang.open(1, pi);
        let c2 = lang.close(1, pi);
        assert!(lang.dfa.accepts(&[]));
        assert!(lang.dfa.accepts(&[o1, c1]));
        assert!(lang.dfa.accepts(&[o2, c2, o1, c1]));
        assert!(!lang.dfa.accepts(&[o1, c2]), "mismatched component");
        assert!(!lang.dfa.accepts(&[o1]), "unclosed");
        assert!(!lang.dfa.accepts(&[c1, o1]), "close before open");
    }

    #[test]
    fn nested_types_allow_nested_brackets() {
        let mut table = TypeTable::new();
        let inner = Type::Pair(Box::new(Type::Int), Box::new(Type::Int));
        let outer = Type::Pair(Box::new(inner.clone()), Box::new(Type::Int));
        let inner_id = table.intern(&inner);
        let outer_id = table.intern(&outer);
        let lang = BracketLang::build(&table);
        // A value enters an inner pair (component 2), which enters the
        // outer pair (component 1): [2_inner [1_outer ]1_outer ]2_inner.
        let word = [
            lang.open(1, inner_id),
            lang.open(0, outer_id),
            lang.close(0, outer_id),
            lang.close(1, inner_id),
        ];
        assert!(lang.dfa.accepts(&word));
        // The inner pair cannot directly become component 2 of the outer
        // pair (outer's second component is int).
        let bad = [lang.open(1, inner_id), lang.open(1, outer_id)];
        assert_eq!(
            lang.dfa.run_from(lang.dfa.start().unwrap(), &bad),
            Some(rasc_automata::StateId::from_index(1)),
            "invalid nesting goes to the dead state"
        );
    }
}
