//! MiniLam abstract syntax and parser (paper §7.1).
//!
//! ```text
//! program := fundef*
//! fundef  := 'fn' IDENT '(' (IDENT ':' type)? ')' '->' type '{' expr '}'
//! type    := 'int' | '(' type ',' type ')'
//! expr    := 'let' IDENT '=' expr ';' expr
//!          | 'choice' '(' expr ',' expr ')' label?       (nondeterministic)
//!          | postfix
//! postfix := primary ('.' ('1'|'2') label?)*
//! primary := INT label?
//!          | IDENT '[' IDENT ']' '(' expr? ')' label?   (call at site)
//!          | IDENT label?                                (variable)
//!          | '(' expr ',' expr ')' label?                (pair)
//! label   := '@' IDENT
//! ```
//!
//! `let` and `choice` are the paper's "conditionals … omitted only to
//! simplify the presentation" (§7.1): `choice` models an abstracted
//! conditional whose both arms flow to the result.
//!
//! Labels name program points for flow queries, mirroring the paper's
//! `2^B`, `(1^A, y^Y)^P` notation. Instantiation sites `f[i](…)` carry
//! explicit site names, mirroring `pair^i`.

use crate::error::{FlowError, Result};

/// A MiniLam type: `int` or a pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The integer base type.
    Int,
    /// A pair type.
    Pair(Box<Type>, Box<Type>),
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

/// A MiniLam expression. Every node carries an optional query label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int {
        /// The literal value.
        value: i64,
        /// Optional query label.
        label: Option<String>,
    },
    /// A variable reference.
    Var {
        /// The variable name.
        name: String,
        /// Optional query label.
        label: Option<String>,
    },
    /// A pair construction.
    Pair {
        /// First component.
        fst: Box<Expr>,
        /// Second component.
        snd: Box<Expr>,
        /// Optional query label.
        label: Option<String>,
    },
    /// A projection `e.1` / `e.2` (stored 0-based).
    Proj {
        /// The pair expression.
        subject: Box<Expr>,
        /// 0-based component index.
        index: usize,
        /// Optional query label.
        label: Option<String>,
    },
    /// A function call at a named instantiation site, `f[i](e)`.
    Call {
        /// Callee name.
        callee: String,
        /// Instantiation-site name (the `i` of `f^i`).
        site: String,
        /// The argument, if the callee takes one.
        arg: Option<Box<Expr>>,
        /// Optional query label.
        label: Option<String>,
    },
    /// A let binding `let x = e₁; e₂`.
    Let {
        /// The bound variable.
        name: String,
        /// The bound expression.
        bound: Box<Expr>,
        /// The body.
        body: Box<Expr>,
    },
    /// An abstracted conditional `choice(e₁, e₂)`: both arms may flow to
    /// the result.
    Choice {
        /// First arm.
        fst: Box<Expr>,
        /// Second arm.
        snd: Box<Expr>,
        /// Optional query label.
        label: Option<String>,
    },
}

impl Expr {
    /// The node's query label, if any.
    pub fn label(&self) -> Option<&str> {
        match self {
            Expr::Int { label, .. }
            | Expr::Var { label, .. }
            | Expr::Pair { label, .. }
            | Expr::Proj { label, .. }
            | Expr::Call { label, .. }
            | Expr::Choice { label, .. } => label.as_deref(),
            Expr::Let { body, .. } => body.label(),
        }
    }
}

/// A function definition `fn f(x: τ) -> τ' { e }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDef {
    /// The function's name.
    pub name: String,
    /// The parameter, if any.
    pub param: Option<(String, Type)>,
    /// The declared return type.
    pub ret: Type,
    /// The body.
    pub body: Expr,
}

/// A MiniLam program: function definitions, with `main` as the entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The function definitions in source order.
    pub funs: Vec<FunDef>,
}

impl Program {
    /// Parses MiniLam source text.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] on malformed syntax and
    /// [`FlowError::DuplicateFunction`] for name collisions.
    pub fn parse(src: &str) -> Result<Program> {
        let mut p = Parser::new(src)?;
        let mut program = Program::default();
        while p.peek().is_some() {
            let fun = p.fundef()?;
            if program.find(&fun.name).is_some() {
                return Err(FlowError::DuplicateFunction(fun.name));
            }
            program.funs.push(fun);
        }
        Ok(program)
    }

    /// Looks up a function by name.
    pub fn find(&self, name: &str) -> Option<&FunDef> {
        self.funs.iter().find(|f| f.name == name)
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn lbl(label: &Option<String>) -> String {
            label.as_ref().map(|l| format!("@{l}")).unwrap_or_default()
        }
        match self {
            Expr::Int { value, label } => write!(f, "{value}{}", lbl(label)),
            Expr::Var { name, label } => write!(f, "{name}{}", lbl(label)),
            Expr::Pair { fst, snd, label } => write!(f, "({fst}, {snd}){}", lbl(label)),
            Expr::Proj {
                subject,
                index,
                label,
            } => write!(f, "{subject}.{}{}", index + 1, lbl(label)),
            Expr::Call {
                callee,
                site,
                arg,
                label,
            } => match arg {
                Some(a) => write!(f, "{callee}[{site}]({a}){}", lbl(label)),
                None => write!(f, "{callee}[{site}](){}", lbl(label)),
            },
            Expr::Let { name, bound, body } => write!(f, "let {name} = {bound}; {body}"),
            Expr::Choice { fst, snd, label } => {
                write!(f, "choice({fst}, {snd}){}", lbl(label))
            }
        }
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fun in &self.funs {
            match &fun.param {
                Some((name, ty)) => writeln!(
                    f,
                    "fn {}({name}: {ty}) -> {} {{ {} }}",
                    fun.name, fun.ret, fun.body
                )?,
                None => writeln!(f, "fn {}() -> {} {{ {} }}", fun.name, fun.ret, fun.body)?,
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Eq,
    Semi,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Arrow,
    Dot,
    At,
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
        })
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> FlowError {
        FlowError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn fundef(&mut self) -> Result<FunDef> {
        let kw = self.ident("`fn`")?;
        if kw != "fn" {
            return Err(self.err(format!("expected `fn`, found `{kw}`")));
        }
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let param = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            let pname = self.ident("parameter name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.ty()?;
            Some((pname, ty))
        };
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Arrow, "`->`")?;
        let ret = self.ty()?;
        self.expect(&Tok::LBrace, "`{`")?;
        let body = self.expr()?;
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(FunDef {
            name,
            param,
            ret,
            body,
        })
    }

    fn ty(&mut self) -> Result<Type> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == "int" => Ok(Type::Int),
            Some(Tok::LParen) => {
                let a = self.ty()?;
                self.expect(&Tok::Comma, "`,`")?;
                let b = self.ty()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Type::Pair(Box::new(a), Box::new(b)))
            }
            other => Err(self.err(format!("expected a type, found {other:?}"))),
        }
    }

    fn label(&mut self) -> Result<Option<String>> {
        if self.peek() == Some(&Tok::At) {
            self.pos += 1;
            Ok(Some(self.ident("label name")?))
        } else {
            Ok(None)
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Ident(k)) if k == "let") {
            self.pos += 1;
            let name = self.ident("bound variable name")?;
            self.expect(&Tok::Eq, "`=`")?;
            let bound = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            let body = self.expr()?;
            return Ok(Expr::Let {
                name,
                bound: Box::new(bound),
                body: Box::new(body),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let index = match self.bump() {
                Some(Tok::Int(1)) => 0,
                Some(Tok::Int(2)) => 1,
                other => return Err(self.err(format!("expected `.1` or `.2`, found {other:?}"))),
            };
            let label = self.label()?;
            e = Expr::Proj {
                subject: Box::new(e),
                index,
                label,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Tok::Int(value)) => {
                let label = self.label()?;
                Ok(Expr::Int { value, label })
            }
            Some(Tok::Ident(name)) if name == "choice" => {
                self.expect(&Tok::LParen, "`(`")?;
                let fst = self.expr()?;
                self.expect(&Tok::Comma, "`,`")?;
                let snd = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let label = self.label()?;
                Ok(Expr::Choice {
                    fst: Box::new(fst),
                    snd: Box::new(snd),
                    label,
                })
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    let site = self.ident("instantiation-site name")?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    self.expect(&Tok::LParen, "`(`")?;
                    let arg = if self.peek() == Some(&Tok::RParen) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect(&Tok::RParen, "`)`")?;
                    let label = self.label()?;
                    Ok(Expr::Call {
                        callee: name,
                        site,
                        arg,
                        label,
                    })
                } else {
                    let label = self.label()?;
                    Ok(Expr::Var { name, label })
                }
            }
            Some(Tok::LParen) => {
                let fst = self.expr()?;
                self.expect(&Tok::Comma, "`,`")?;
                let snd = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let label = self.label()?;
                Ok(Expr::Pair {
                    fst: Box::new(fst),
                    snd: Box::new(snd),
                    label,
                })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                tokens.push((Tok::RParen, line));
                i += 1;
            }
            '{' => {
                tokens.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                tokens.push((Tok::RBrace, line));
                i += 1;
            }
            '[' => {
                tokens.push((Tok::LBracket, line));
                i += 1;
            }
            ']' => {
                tokens.push((Tok::RBracket, line));
                i += 1;
            }
            ',' => {
                tokens.push((Tok::Comma, line));
                i += 1;
            }
            ':' => {
                tokens.push((Tok::Colon, line));
                i += 1;
            }
            '.' => {
                tokens.push((Tok::Dot, line));
                i += 1;
            }
            '@' => {
                tokens.push((Tok::At, line));
                i += 1;
            }
            '=' => {
                tokens.push((Tok::Eq, line));
                i += 1;
            }
            ';' => {
                tokens.push((Tok::Semi, line));
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push((Tok::Arrow, line));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let value = src[start..i].parse().map_err(|_| FlowError::Parse {
                    message: "integer literal out of range".to_owned(),
                    line,
                })?;
                tokens.push((Tok::Int(value), line));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push((Tok::Ident(src[start..i].to_owned()), line));
            }
            other => {
                return Err(FlowError::Parse {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_11() {
        let p = Program::parse(
            "fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }\n\
             fn main() -> int { pair[i](2@B)@T.2@V }",
        )
        .unwrap();
        assert_eq!(p.funs.len(), 2);
        let pair_fn = p.find("pair").unwrap();
        assert_eq!(pair_fn.param, Some(("y".to_owned(), Type::Int)));
        assert_eq!(
            pair_fn.ret,
            Type::Pair(Box::new(Type::Int), Box::new(Type::Int))
        );
        let Expr::Pair { label, .. } = &pair_fn.body else {
            panic!("expected pair body");
        };
        assert_eq!(label.as_deref(), Some("P"));
        let main_fn = p.find("main").unwrap();
        let Expr::Proj { index, label, .. } = &main_fn.body else {
            panic!("expected projection body");
        };
        assert_eq!(*index, 1);
        assert_eq!(label.as_deref(), Some("V"));
    }

    #[test]
    fn nested_types_and_projections() {
        let p = Program::parse("fn main() -> int { ((1, 2), 3).1.2@Z }").unwrap();
        let Expr::Proj {
            subject, index: 1, ..
        } = &p.find("main").unwrap().body
        else {
            panic!("outer .2");
        };
        assert!(matches!(**subject, Expr::Proj { index: 0, .. }));
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = Program::parse("fn f() -> int { 1 } fn f() -> int { 2 }").unwrap_err();
        assert_eq!(err, FlowError::DuplicateFunction("f".to_owned()));
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = Program::parse("fn main() -> int {\n  (1,\n}").unwrap_err();
        assert!(matches!(err, FlowError::Parse { line: 3, .. }));
    }

    #[test]
    fn pretty_print_round_trips() {
        let src = "fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }\n\
                   fn main() -> int { let t = pair[i](2@B)@T; choice(t.2@V, 0) }";
        let p1 = Program::parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn parses_let_and_choice() {
        let p = Program::parse("fn main() -> int { let x = 1@A; choice(x@U, 2@B)@C }").unwrap();
        let Expr::Let { name, body, .. } = &p.find("main").unwrap().body else {
            panic!("expected let");
        };
        assert_eq!(name, "x");
        assert!(matches!(**body, Expr::Choice { .. }));
    }

    #[test]
    fn zero_arg_calls() {
        let p = Program::parse(
            "fn gen() -> int { 7@G }\n\
             fn main() -> int { gen[a]()@R }",
        )
        .unwrap();
        let Expr::Call { arg, site, .. } = &p.find("main").unwrap().body else {
            panic!("expected call");
        };
        assert!(arg.is_none());
        assert_eq!(site, "a");
    }
}
