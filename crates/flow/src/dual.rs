//! The dual analysis (§7.6): call/return brackets as annotations, an
//! n-ary `pair` constructor for types.
//!
//! This is the widely-used approximation the paper contrasts with its
//! primary analysis: context sensitivity comes from *annotations* `[ᵢ`/`]ᵢ`
//! per instantiation site, approximated to a regular language by treating
//! recursive call cycles monomorphically (their sites get ε annotations),
//! while field sensitivity is exact via a binary `pair` constructor and
//! its projections (§7.6's point that an n-ary constructor discovers each
//! component edge once).

use std::collections::{HashMap, HashSet};

use rasc_automata::{Alphabet, Dfa, SymbolId};
use rasc_core::algebra::{Algebra, MonoidAlgebra};
use rasc_core::{ConsId, SetExpr, System, VarId, Variance};

use crate::ast::{Expr, Program};
use crate::error::{FlowError, Result};
use crate::types::{TypeId, TypeTable};

#[derive(Debug, Clone, Copy)]
struct FunSig {
    param_ty: Option<TypeId>,
    param_label: Option<VarId>,
    ret_ty: TypeId,
    ret_label: VarId,
}

/// A call site discovered in the program.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Site {
    name: String,
    caller: String,
    callee: String,
    /// Part of a recursive cycle ⇒ ε-annotated (monomorphic).
    recursive: bool,
}

/// The §7.6 dual flow analysis.
///
/// # Example
///
/// ```
/// use rasc_flow::{DualAnalysis, Program};
///
/// let src = r#"
///     fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }
///     fn main() -> int { pair[i](2@B)@T.2@V }
/// "#;
/// let program = Program::parse(src)?;
/// let mut dual = DualAnalysis::new(&program)?;
/// dual.solve();
/// assert!(dual.flows("B", "V"));
/// assert!(!dual.flows("A", "V"));
/// # Ok::<(), rasc_flow::FlowError>(())
/// ```
#[derive(Debug)]
pub struct DualAnalysis {
    sys: System<MonoidAlgebra>,
    labels: HashMap<String, VarId>,
    probes: HashMap<String, ConsId>,
    /// `[ᵢ` / `]ᵢ` symbols per (non-recursive) site name.
    open_syms: HashMap<String, SymbolId>,
    close_syms: HashMap<String, SymbolId>,
    pair_cons: HashMap<TypeId, ConsId>,
}

impl DualAnalysis {
    /// Type-checks `program` and generates the dual constraints.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`crate::FlowAnalysis::new`].
    pub fn new(program: &Program) -> Result<DualAnalysis> {
        if program.find("main").is_none() {
            return Err(FlowError::MissingMain);
        }
        let mut types = TypeTable::new();
        crate::analysis::collect_types(program, &mut types)?;

        let sites = collect_sites(program);
        let (sigma, dfa, open_syms, close_syms) = call_bracket_machine(&sites);
        let _ = sigma;
        let mut sys: System<MonoidAlgebra> = System::new(MonoidAlgebra::new(&dfa));

        // Pair constructors per pair type.
        let mut pair_cons = HashMap::new();
        for pt in types.pairs().collect::<Vec<_>>() {
            let c = sys.constructor(
                &format!("pair_t{}", pt.index()),
                &[Variance::Covariant, Variance::Covariant],
            );
            pair_cons.insert(pt, c);
        }

        let mut sigs: HashMap<String, FunSig> = HashMap::new();
        for f in &program.funs {
            let (param_ty, param_label) = match &f.param {
                Some((_, ty)) => (
                    Some(types.intern(ty)),
                    Some(sys.var(&format!("{}::param", f.name))),
                ),
                None => (None, None),
            };
            let ret_ty = types.intern(&f.ret);
            let ret_label = sys.var(&format!("{}::ret", f.name));
            sigs.insert(
                f.name.clone(),
                FunSig {
                    param_ty,
                    param_label,
                    ret_ty,
                    ret_label,
                },
            );
        }

        let site_map: HashMap<&str, &Site> = sites.iter().map(|s| (s.name.as_str(), s)).collect();
        let mut dual = DualAnalysis {
            sys,
            labels: HashMap::new(),
            probes: HashMap::new(),
            open_syms,
            close_syms,
            pair_cons,
        };

        for f in &program.funs {
            let sig = sigs[&f.name];
            let mut env: HashMap<&str, (TypeId, VarId)> = HashMap::new();
            if let (Some((name, _)), Some(t), Some(l)) = (&f.param, sig.param_ty, sig.param_label) {
                env.insert(name, (t, l));
            }
            let (body_ty, body_label) = dual.gen(&f.body, &env, &sigs, &site_map, &mut types)?;
            if body_ty != sig.ret_ty {
                return Err(FlowError::TypeMismatch {
                    context: format!("return of `{}`", f.name),
                    expected: types.render(sig.ret_ty),
                    found: types.render(body_ty),
                });
            }
            dual.sys
                .add(SetExpr::var(body_label), SetExpr::var(sig.ret_label))
                .expect("well-formed");
        }
        Ok(dual)
    }

    fn fresh(&mut self, label: &Option<String>, what: &str) -> VarId {
        let v = self.sys.var(label.as_deref().unwrap_or(what));
        if let Some(l) = label {
            self.labels.insert(l.clone(), v);
        }
        v
    }

    fn gen(
        &mut self,
        e: &Expr,
        env: &HashMap<&str, (TypeId, VarId)>,
        sigs: &HashMap<String, FunSig>,
        site_map: &HashMap<&str, &Site>,
        types: &mut TypeTable,
    ) -> Result<(TypeId, VarId)> {
        match e {
            Expr::Int { value, label } => {
                let v = self.fresh(label, "int");
                let k = self.sys.num_vars();
                let lit = self.sys.constructor(&format!("lit_{value}_{k}"), &[]);
                self.sys
                    .add(SetExpr::cons(lit, []), SetExpr::var(v))
                    .expect("well-formed");
                Ok((types.int(), v))
            }
            Expr::Var { name, label } => {
                let &(ty, src) = env
                    .get(name.as_str())
                    .ok_or_else(|| FlowError::Unbound(name.clone()))?;
                let v = self.fresh(label, name);
                self.sys
                    .add(SetExpr::var(src), SetExpr::var(v))
                    .expect("well-formed");
                Ok((ty, v))
            }
            Expr::Pair { fst, snd, label } => {
                let (t1, l1) = self.gen(fst, env, sigs, site_map, types)?;
                let (t2, l2) = self.gen(snd, env, sigs, site_map, types)?;
                fn surface(table: &TypeTable, t: TypeId) -> crate::ast::Type {
                    if table.is_pair(t) {
                        crate::ast::Type::Pair(
                            Box::new(surface(table, table.component(t, 0).expect("pair"))),
                            Box::new(surface(table, table.component(t, 1).expect("pair"))),
                        )
                    } else {
                        crate::ast::Type::Int
                    }
                }
                let ty = crate::ast::Type::Pair(
                    Box::new(surface(types, t1)),
                    Box::new(surface(types, t2)),
                );
                let pair_ty = types.intern(&ty);
                let p = self.fresh(label, "pair");
                let c = self.pair_cons[&pair_ty];
                // pair(A, Y) ⊆ H — one n-ary constructor (§7.6).
                self.sys
                    .add(SetExpr::cons_vars(c, [l1, l2]), SetExpr::var(p))
                    .expect("well-formed");
                Ok((pair_ty, p))
            }
            Expr::Proj {
                subject,
                index,
                label,
            } => {
                let (pt, pl) = self.gen(subject, env, sigs, site_map, types)?;
                let comp_ty =
                    types
                        .component(pt, *index)
                        .ok_or_else(|| FlowError::ProjectNonPair {
                            found: types.render(pt),
                        })?;
                let z = self.fresh(label, "proj");
                let c = self.pair_cons[&pt];
                // pair⁻ⁱ(T) ⊆ V.
                self.sys
                    .add(SetExpr::proj(c, *index, pl), SetExpr::var(z))
                    .expect("well-formed");
                Ok((comp_ty, z))
            }
            Expr::Call {
                callee,
                site,
                arg,
                label,
            } => {
                let sig = *sigs
                    .get(callee)
                    .ok_or_else(|| FlowError::Unbound(callee.clone()))?;
                let site_info = site_map[site.as_str()];
                let (open, close) = if site_info.recursive {
                    (self.sys.algebra().identity(), self.sys.algebra().identity())
                } else {
                    (
                        self.sys.algebra_mut().word(&[self.open_syms[site]]),
                        self.sys.algebra_mut().word(&[self.close_syms[site]]),
                    )
                };
                match (arg, sig.param_ty, sig.param_label) {
                    (Some(a), Some(pt), Some(pl)) => {
                        let (at, al) = self.gen(a, env, sigs, site_map, types)?;
                        if at != pt {
                            return Err(FlowError::TypeMismatch {
                                context: format!("argument of `{callee}`"),
                                expected: types.render(pt),
                                found: types.render(at),
                            });
                        }
                        // B ⊆^{[ᵢ} Y.
                        self.sys
                            .add_ann(SetExpr::var(al), SetExpr::var(pl), open)
                            .expect("well-formed");
                    }
                    (None, None, None) => {}
                    _ => {
                        return Err(FlowError::TypeMismatch {
                            context: format!("arity of call to `{callee}`"),
                            expected: "matching arity".to_owned(),
                            found: "mismatched arity".to_owned(),
                        })
                    }
                }
                let t = self.fresh(label, "call");
                // H ⊆^{]ᵢ} T.
                self.sys
                    .add_ann(SetExpr::var(sig.ret_label), SetExpr::var(t), close)
                    .expect("well-formed");
                Ok((sig.ret_ty, t))
            }
            Expr::Let { name, bound, body } => {
                let (bt, bl) = self.gen(bound, env, sigs, site_map, types)?;
                let mut inner = env.clone();
                inner.insert(name, (bt, bl));
                self.gen(body, &inner, sigs, site_map, types)
            }
            Expr::Choice { fst, snd, label } => {
                let (t1, l1) = self.gen(fst, env, sigs, site_map, types)?;
                let (t2, l2) = self.gen(snd, env, sigs, site_map, types)?;
                if t1 != t2 {
                    return Err(FlowError::TypeMismatch {
                        context: "arms of choice".to_owned(),
                        expected: types.render(t1),
                        found: types.render(t2),
                    });
                }
                let v = self.fresh(label, "choice");
                self.sys
                    .add(SetExpr::var(l1), SetExpr::var(v))
                    .expect("well-formed");
                self.sys
                    .add(SetExpr::var(l2), SetExpr::var(v))
                    .expect("well-formed");
                Ok((t1, v))
            }
        }
    }

    /// Runs constraint resolution.
    pub fn solve(&mut self) {
        self.sys.solve();
    }

    /// The set variable of a source label.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownLabel`] if no expression carries it.
    pub fn label_var(&self, label: &str) -> Result<VarId> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| FlowError::UnknownLabel(label.to_owned()))
    }

    /// Matched flow from `src` to `dst`: the probe appears at `dst`'s top
    /// level with balanced call brackets.
    ///
    /// # Panics
    ///
    /// Panics on unknown labels (validate with
    /// [`DualAnalysis::label_var`] first for user input).
    pub fn flows(&mut self, src: &str, dst: &str) -> bool {
        let probe = self.probe(src);
        let dst_var = self.label_var(dst).expect("unknown destination label");
        self.sys
            .lower_bound_annotations(dst_var, probe)
            .iter()
            .any(|&a| self.sys.algebra().is_accepting(a))
    }

    /// Like the matched query but along *PN paths* (§7.3): the value may
    /// sit inside unreturned calls or unprojected structure (the P part)
    /// and may have escaped through unmatched returns/projections (the N
    /// part). Acceptance is "substring of a matched flow" — for the
    /// bracket languages here, exactly the N-then-P words.
    pub fn flows_pn(&mut self, src: &str, dst: &str) -> bool {
        let probe = self.probe(src);
        let dst_var = self.label_var(dst).expect("unknown destination label");
        let anns = self.sys.pn_occurrence_annotations(dst_var, probe);
        anns.iter().any(|&a| self.sys.algebra().is_useful(a))
    }

    fn probe(&mut self, src: &str) -> ConsId {
        if let Some(&c) = self.probes.get(src) {
            return c;
        }
        let var = self.label_var(src).expect("unknown source label");
        let c = self.sys.constructor(&format!("probe_{src}"), &[]);
        self.sys
            .add(SetExpr::cons(c, []), SetExpr::var(var))
            .expect("well-formed");
        self.sys.solve();
        self.probes.insert(src.to_owned(), c);
        c
    }

    /// The underlying constraint system.
    pub fn system(&self) -> &System<MonoidAlgebra> {
        &self.sys
    }
}

fn collect_sites(program: &Program) -> Vec<Site> {
    fn walk(e: &Expr, caller: &str, out: &mut Vec<(String, String, String)>) {
        match e {
            Expr::Int { .. } | Expr::Var { .. } => {}
            Expr::Pair { fst, snd, .. } => {
                walk(fst, caller, out);
                walk(snd, caller, out);
            }
            Expr::Proj { subject, .. } => walk(subject, caller, out),
            Expr::Call {
                callee, site, arg, ..
            } => {
                out.push((site.clone(), caller.to_owned(), callee.clone()));
                if let Some(a) = arg {
                    walk(a, caller, out);
                }
            }
            Expr::Let { bound, body, .. } => {
                walk(bound, caller, out);
                walk(body, caller, out);
            }
            Expr::Choice { fst, snd, .. } => {
                walk(fst, caller, out);
                walk(snd, caller, out);
            }
        }
    }
    let mut raw = Vec::new();
    for f in &program.funs {
        walk(&f.body, &f.name, &mut raw);
    }
    // Call-graph reachability, to mark recursive sites.
    let mut edges: HashMap<&str, HashSet<&str>> = HashMap::new();
    for (_, caller, callee) in &raw {
        edges.entry(caller).or_default().insert(callee);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut stack = vec![from];
        while let Some(f) = stack.pop() {
            if f == to {
                return true;
            }
            if let Some(nexts) = edges.get(f) {
                for &n in nexts {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    };
    let flags: Vec<bool> = raw
        .iter()
        .map(|(_, caller, callee)| caller == callee || reaches(callee, caller))
        .collect();
    let mut sites: Vec<Site> = Vec::new();
    for ((name, caller, callee), recursive) in raw.iter().cloned().zip(flags) {
        if sites.iter().any(|s| s.name == name) {
            continue; // reused site name: same instantiation
        }
        sites.push(Site {
            name,
            caller,
            callee,
            recursive,
        });
    }
    sites
}

/// Builds the bounded call-bracket machine: states are chains of open
/// (non-recursive) sites where each next call happens inside the previous
/// callee; the empty chain is the sole accepting state.
fn call_bracket_machine(
    sites: &[Site],
) -> (
    Alphabet,
    Dfa,
    HashMap<String, SymbolId>,
    HashMap<String, SymbolId>,
) {
    let mut sigma = Alphabet::new();
    let mut open_syms = HashMap::new();
    let mut close_syms = HashMap::new();
    let active: Vec<&Site> = sites.iter().filter(|s| !s.recursive).collect();
    for s in &active {
        open_syms.insert(s.name.clone(), sigma.intern(&format!("open_{}", s.name)));
        close_syms.insert(s.name.clone(), sigma.intern(&format!("close_{}", s.name)));
    }
    let mut dfa = Dfa::new(sigma.len());
    let s0 = dfa.add_state(true);
    let dead = dfa.add_state(false);
    dfa.set_start(s0);
    for sym in sigma.symbols() {
        dfa.set_transition(dead, sym, dead);
    }
    let mut chains: Vec<Vec<usize>> = vec![Vec::new()];
    let mut chain_ids: HashMap<Vec<usize>, usize> = HashMap::new();
    chain_ids.insert(Vec::new(), 0);
    let mut dfa_states = vec![s0];
    let mut i = 0;
    while i < chains.len() {
        let chain = chains[i].clone();
        let state = dfa_states[i];
        for (k, s) in active.iter().enumerate() {
            let open = open_syms[&s.name];
            let close = close_syms[&s.name];
            let open_valid = match chain.last() {
                None => true,
                Some(&top) => active[top].callee == s.caller,
            };
            if open_valid {
                let mut next = chain.clone();
                next.push(k);
                let idx = *chain_ids.entry(next.clone()).or_insert_with(|| {
                    chains.push(next);
                    dfa_states.push(dfa.add_state(false));
                    chains.len() - 1
                });
                dfa.set_transition(state, open, dfa_states[idx]);
            } else {
                dfa.set_transition(state, open, dead);
            }
            match chain.last() {
                Some(&top) if top == k => {
                    let prev = &chain[..chain.len() - 1];
                    let idx = chain_ids[prev];
                    dfa.set_transition(state, close, dfa_states[idx]);
                }
                _ => dfa.set_transition(state, close, dead),
            }
        }
        i += 1;
    }
    (sigma, dfa, open_syms, close_syms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> DualAnalysis {
        let program = Program::parse(src).unwrap();
        let mut d = DualAnalysis::new(&program).unwrap();
        d.solve();
        d
    }

    const FIG11: &str = "fn pair(y: int) -> (int, int) { (1@A, y@Y)@P }\n\
                         fn main() -> int { pair[i](2@B)@T.2@V }";

    #[test]
    fn figure_11_dual_derivation() {
        // §7.6: B ⊆^{[i} Y, pair(A,Y) ⊆ H, H ⊆^{]i} T, pair⁻²(T) ⊆ V
        // implies B ⊆ V.
        let mut d = analyze(FIG11);
        assert!(d.flows("B", "V"));
        assert!(!d.flows("A", "V"), "A is the first component");
    }

    #[test]
    fn context_sensitivity_through_brackets() {
        let mut d = analyze(
            "fn id(x: int) -> int { x }\n\
             fn main() -> int { (id[s1](1@L1)@R1, id[s2](2@L2)@R2).1 }",
        );
        assert!(d.flows("L1", "R1"));
        assert!(!d.flows("L1", "R2"), "bracket mismatch [s1 ]s2");
    }

    #[test]
    fn recursion_approximated_monomorphically() {
        // Both call sites of `rec` are recursive (rec ↔ main? no: rec
        // reaches itself) — the inner site gets ε; contexts through it
        // merge, which is exactly the standard approximation.
        let mut d = analyze(
            "fn rec(x: int) -> int { rec[inner](x@IN)@OUT }\n\
             fn main() -> int { rec[top](5@SEED)@RES }",
        );
        // SEED flows into IN: [top is open, then the ε inner bracket.
        assert!(d.flows_pn("SEED", "IN") || !d.flows("SEED", "IN"));
        // No matched flow to RES (rec never returns a value).
        assert!(!d.flows("SEED", "RES"));
    }

    #[test]
    fn mutual_recursion_sites_epsilon() {
        let program = Program::parse(
            "fn even(x: int) -> int { odd[a](x) }\n\
             fn odd(x: int) -> int { even[b](x) }\n\
             fn main() -> int { even[top](1@S)@R }",
        )
        .unwrap();
        let sites = collect_sites(&program);
        let a = sites.iter().find(|s| s.name == "a").unwrap();
        let b = sites.iter().find(|s| s.name == "b").unwrap();
        let top = sites.iter().find(|s| s.name == "top").unwrap();
        assert!(a.recursive && b.recursive);
        assert!(!top.recursive);
    }

    #[test]
    fn fields_do_not_mix_via_constructor() {
        let mut d = analyze("fn main() -> int { (1@ONE, 2@TWO).1@FST }");
        assert!(d.flows("ONE", "FST"));
        assert!(!d.flows("TWO", "FST"));
    }

    #[test]
    fn value_inside_unprojected_pair_is_pn_only() {
        let mut d = analyze("fn main() -> (int, int) { (1@ONE, 2@TWO)@P }");
        assert!(!d.flows("ONE", "P"), "wrapped in the pair constructor");
        assert!(d.flows_pn("ONE", "P"));
    }
}
