//! Error types for the flow analysis.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, FlowError>;

/// Errors from parsing or analyzing MiniLam programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Malformed source text.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// An unbound variable or function.
    Unbound(String),
    /// A type mismatch found while checking an expression.
    TypeMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Rendered expected type.
        expected: String,
        /// Rendered found type.
        found: String,
    },
    /// `.1`/`.2` applied to a non-pair expression.
    ProjectNonPair {
        /// Rendered subject type.
        found: String,
    },
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A flow-query label does not exist in the program.
    UnknownLabel(String),
    /// The program has no `main` function.
    MissingMain,
    /// The program contains recursive types/uses beyond what the bracket
    /// automaton models (should not occur: MiniLam types are finite).
    Internal(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FlowError::Unbound(name) => write!(f, "unbound name `{name}`"),
            FlowError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            FlowError::ProjectNonPair { found } => {
                write!(f, "projection applied to non-pair type {found}")
            }
            FlowError::DuplicateFunction(name) => write!(f, "function `{name}` defined twice"),
            FlowError::UnknownLabel(name) => write!(f, "no expression carries label `{name}`"),
            FlowError::MissingMain => write!(f, "program has no `main` function"),
            FlowError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {}
