//! Interned MiniLam types.

use std::collections::HashMap;

use crate::ast::Type;

/// An interned type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(u32);

impl TypeId {
    /// The type's index within its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TyNode {
    Int,
    Pair(TypeId, TypeId),
}

/// An interning table for MiniLam types; subterms are shared.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    nodes: Vec<TyNode>,
    by_node: HashMap<TyNode, TypeId>,
}

impl TypeTable {
    /// An empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Interns a surface type (and its subterms).
    pub fn intern(&mut self, ty: &Type) -> TypeId {
        let node = match ty {
            Type::Int => TyNode::Int,
            Type::Pair(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                TyNode::Pair(a, b)
            }
        };
        self.intern_node(node)
    }

    fn intern_node(&mut self, node: TyNode) -> TypeId {
        if let Some(&id) = self.by_node.get(&node) {
            return id;
        }
        let id = TypeId(u32::try_from(self.nodes.len()).expect("too many types"));
        self.nodes.push(node);
        self.by_node.insert(node, id);
        id
    }

    /// The `int` type (interned on demand).
    pub fn int(&mut self) -> TypeId {
        self.intern_node(TyNode::Int)
    }

    /// Whether `t` is a pair type.
    pub fn is_pair(&self, t: TypeId) -> bool {
        matches!(self.nodes[t.index()], TyNode::Pair(..))
    }

    /// The `i`-th component of a pair type (0-based).
    pub fn component(&self, t: TypeId, i: usize) -> Option<TypeId> {
        match self.nodes[t.index()] {
            TyNode::Pair(a, b) => Some(if i == 0 { a } else { b }),
            TyNode::Int => None,
        }
    }

    /// All interned types.
    pub fn all(&self) -> impl Iterator<Item = TypeId> {
        (0..self.nodes.len() as u32).map(TypeId)
    }

    /// All interned *pair* types.
    pub fn pairs(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.all().filter(|&t| self.is_pair(t))
    }

    /// Renders a type for diagnostics.
    pub fn render(&self, t: TypeId) -> String {
        match self.nodes[t.index()] {
            TyNode::Int => "int".to_owned(),
            TyNode::Pair(a, b) => format!("({}, {})", self.render(a), self.render(b)),
        }
    }

    /// The maximum nesting depth over all interned types (the bound the
    /// paper places on bracket-annotation strings, §7.2.2).
    pub fn max_depth(&self) -> usize {
        self.all().map(|t| self.depth(t)).max().unwrap_or(0)
    }

    fn depth(&self, t: TypeId) -> usize {
        match self.nodes[t.index()] {
            TyNode::Int => 1,
            TyNode::Pair(a, b) => 1 + self.depth(a).max(self.depth(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_subterms() {
        let mut table = TypeTable::new();
        let t1 = table.intern(&Type::Pair(Box::new(Type::Int), Box::new(Type::Int)));
        let t2 = table.intern(&Type::Pair(Box::new(Type::Int), Box::new(Type::Int)));
        assert_eq!(t1, t2);
        assert_eq!(table.all().count(), 2); // int and the pair
        assert!(table.is_pair(t1));
        assert_eq!(table.component(t1, 0), Some(table.int()));
    }

    #[test]
    fn depth_of_nested_pairs() {
        let mut table = TypeTable::new();
        let nested = Type::Pair(
            Box::new(Type::Pair(Box::new(Type::Int), Box::new(Type::Int))),
            Box::new(Type::Int),
        );
        table.intern(&nested);
        assert_eq!(table.max_depth(), 3);
        assert_eq!(table.pairs().count(), 2);
    }
}
