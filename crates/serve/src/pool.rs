//! A bounded worker pool with graceful drain.
//!
//! The server hands each accepted connection to the pool as one job. The
//! queue is bounded — [`ThreadPool::try_execute`] refuses work instead of
//! queuing unboundedly, which is what lets the accept loop answer
//! overload with a typed in-band error rather than building an invisible
//! backlog — and [`ThreadPool::drain`] finishes every queued and running
//! job before joining the workers, which is what makes server shutdown
//! *graceful*.
//!
//! Jobs run under `catch_unwind`: a panicking job (which the batch engine
//! already prevents for protocol work) can never take a worker down.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the data on poisoning (jobs are already
/// unwind-isolated; a poisoned queue mutex would only ever mean a panic
/// inside this module's own tiny critical sections).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct State {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when a job arrives or drain begins.
    wake: Condvar,
    queue_cap: usize,
}

/// The error returned when the pool's bounded queue is full (or the pool
/// is draining): the caller should shed the work, not wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

/// A fixed-size worker pool over a bounded job queue.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("queue_cap", &self.inner.queue_cap)
            .field("queued", &self.queued())
            .finish()
    }
}

impl ThreadPool {
    /// A pool of `threads` workers (at least one) whose queue holds at
    /// most `queue_cap` waiting jobs.
    pub fn new(threads: usize, queue_cap: usize) -> ThreadPool {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            queue_cap,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rasc-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .filter_map(Result::ok)
            .collect();
        ThreadPool { inner, workers }
    }

    /// The number of jobs waiting for a worker (not counting running ones).
    pub fn queued(&self) -> usize {
        lock(&self.inner.state).jobs.len()
    }

    /// Submits a job, or refuses it when the queue is at capacity or the
    /// pool is draining. Never blocks.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Overloaded> {
        let mut st = lock(&self.inner.state);
        if st.draining || st.jobs.len() >= self.inner.queue_cap {
            return Err(Overloaded);
        }
        st.jobs.push_back(Box::new(job));
        drop(st);
        self.inner.wake.notify_one();
        Ok(())
    }

    /// Graceful drain: stops accepting new jobs, runs everything already
    /// queued to completion, and joins every worker. Blocks until the
    /// pool is fully stopped.
    pub fn drain(self) {
        lock(&self.inner.state).draining = true;
        self.inner.wake.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = lock(&inner.state);
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break Some(job);
                }
                if st.draining {
                    break None;
                }
                st = inner.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn runs_jobs_and_drains_them_all() {
        let pool = ThreadPool::new(3, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 32, "drain finishes the queue");
    }

    #[test]
    fn bounded_queue_refuses_overload() {
        let pool = ThreadPool::new(1, 2);
        // Block the single worker so queued jobs pile up deterministically.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = entered_tx.send(());
            let _ = release_rx.recv();
        })
        .unwrap();
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker started");
        // Two fit in the queue; the third is refused, not queued.
        assert!(pool.try_execute(|| {}).is_ok());
        assert!(pool.try_execute(|| {}).is_ok());
        assert_eq!(pool.try_execute(|| {}), Err(Overloaded));
        release_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1, 8);
        pool.try_execute(|| panic!("job panic")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.try_execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }
}
