//! The TCP server: accept loop, admission control, per-connection
//! sessions, and graceful drain.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rasc_automata::{Alphabet, Dfa};
use rasc_core::snapshot::{read_snapshot_file, write_atomic};
use rasc_core::{CancelToken, Clock, SnapshotError};
use rasc_inc::json::{obj, Json};
use rasc_inc::{BatchEngine, EngineBase, EngineCaps};
use rasc_obs::{self as obs, EventSink, Fanout, MetricsRegistry, MetricsSnapshot, ScopedSink};

use crate::admin::{run_admin, ContentType, SlowLog};
use crate::pool::ThreadPool;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server-wide configuration: concurrency, admission control, and the
/// per-request resource caps applied to every connection's engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; each serves one connection at a time.
    pub threads: usize,
    /// Admission cap on connections being served or waiting for a worker.
    /// Arrivals beyond it receive `{"error":{"code":"overloaded",…}}` and
    /// are closed instead of queuing unboundedly.
    pub max_connections: usize,
    /// Per-request resource caps wired into every connection's
    /// [`BatchEngine`] (the protocol `limits` command can tighten but
    /// never exceed them).
    pub caps: EngineCaps,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag, in milliseconds — the upper bound on how long an *idle*
    /// connection delays a drain.
    pub poll_millis: u64,
    /// If set, a drain that has not finished after this many milliseconds
    /// fires every connection's [`CancelToken`], so runaway in-flight
    /// solves roll back (reported in-band as `budget_exhausted` /
    /// `cancelled`) instead of stalling shutdown forever.
    pub drain_cancel_millis: Option<u64>,
    /// Observability sink installed on every worker (and the accept
    /// thread) for the server's counters, latency histograms, and
    /// per-connection spans.
    pub sink: Option<Arc<dyn EventSink>>,
    /// Deadline time source injected into every engine (deterministic
    /// tests; `None` = real monotonic clock).
    pub clock: Option<Arc<dyn Clock>>,
    /// Whether the in-band `{"cmd":"shutdown"}` admin command initiates a
    /// graceful drain (the protocol answers `unknown_command` when off).
    pub allow_shutdown_command: bool,
    /// Warm-restart directory. When set, the server decodes
    /// `<dir>/current.snap` **once** at startup into a shared read-only
    /// base that every new connection forks copy-on-write (near-constant
    /// time per connection), routes the in-band `{"cmd":"snapshot"}`
    /// command to that file (client-chosen paths are disabled), and
    /// checkpoints the latest base image there again on graceful
    /// shutdown. A corrupt base file is rejected with a
    /// `snap.corrupt_rejected` counter and the server starts cold; an
    /// unreadable (but present) file is counted as
    /// `serve.base.io_errors`.
    pub snapshot_dir: Option<PathBuf>,
    /// External shutdown request polled by the accept loop (the CLI wires
    /// its SIGINT/SIGTERM handler here): setting it true initiates the
    /// same graceful drain as [`ServerHandle::begin_shutdown`].
    pub shutdown_flag: Option<Arc<AtomicBool>>,
    /// Address of the admin telemetry listener (`rasc serve
    /// --admin-addr`). When set, the server answers `GET /metrics`
    /// (Prometheus text exposition), `GET /stats` (JSON with p50/p90/p99
    /// latency estimates), and `GET /healthz` (uptime, warm/cold start,
    /// in-flight requests, snapshot checkpoint age) from an internal
    /// [`MetricsRegistry`] that aggregates every `serve.*`/`snap.*`
    /// event. The listener runs on its own thread and never touches the
    /// solver.
    pub admin_addr: Option<String>,
    /// Slow-query threshold in milliseconds: any request whose handling
    /// latency reaches it is appended to the slow-query log as one JSON
    /// line (request id, command, latency, fuel spent, epoch depth,
    /// outcome). `None` disables the log.
    pub slow_millis: Option<u64>,
    /// Destination of the slow-query log. `None` with
    /// [`ServeConfig::slow_millis`] set defaults to stderr.
    pub slow_log: Option<Arc<SlowLog>>,
    /// Solver threads per connection (`rasc serve --solve-threads`).
    /// Values above 1 route every unconditional `add` solve through
    /// [`BatchEngine::bulk_solve`]'s sharded parallel fixpoint engine;
    /// answers and snapshots are byte-identical to the sequential solver
    /// by construction, so this is purely a latency knob for large
    /// constraint batches.
    pub solve_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 4,
            max_connections: 64,
            caps: EngineCaps::unlimited(),
            poll_millis: 20,
            drain_cancel_millis: None,
            sink: None,
            clock: None,
            allow_shutdown_command: true,
            snapshot_dir: None,
            shutdown_flag: None,
            admin_addr: None,
            slow_millis: None,
            slow_log: None,
            solve_threads: 1,
        }
    }
}

/// Counters aggregated over one server lifetime, returned by
/// [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted and served (including ones still counted
    /// during drain).
    pub connections: u64,
    /// Requests answered across all connections.
    pub requests: u64,
    /// Connections refused by admission control.
    pub rejected: u64,
}

#[derive(Debug)]
struct Shared {
    sigma: Alphabet,
    dfa: Dfa,
    config: ServeConfig,
    draining: AtomicBool,
    /// `(done, cv)`: flipped and broadcast once the server has fully
    /// drained and stopped.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Connections admitted and not yet finished (serving or queued).
    active: AtomicUsize,
    next_conn: AtomicU64,
    /// In-flight connections' cancellation tokens, keyed by connection id
    /// (fired by the drain watchdog).
    cancels: Mutex<HashMap<u64, CancelToken>>,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    /// Warm-restart file (`<snapshot_dir>/current.snap`) when persistence
    /// is configured.
    snapshot_path: Option<PathBuf>,
    /// The latest durable base image bytes: loaded from disk at startup,
    /// refreshed by every in-band `snapshot` command, and checkpointed on
    /// graceful shutdown. Connections never re-parse these — they fork
    /// from [`Shared::base`].
    snapshot: Mutex<Option<Arc<Vec<u8>>>>,
    /// The decoded, frozen counterpart of [`Shared::snapshot`]: the image
    /// is parsed and validated **once** (at startup or when an in-band
    /// `snapshot` swaps it), and every new connection builds its engine
    /// with [`BatchEngine::fork_from`] — a few `Arc` bumps instead of a
    /// full per-connection restore.
    base: Mutex<Option<Arc<EngineBase>>>,
    /// Aggregated telemetry behind the admin endpoint. Always present;
    /// it is installed (fanned out with [`ServeConfig::sink`]) on every
    /// worker so `serve.*` counters and latency histograms accumulate
    /// here whether or not an admin listener is configured.
    metrics: Arc<MetricsRegistry>,
    /// The sink every server thread installs: the metrics registry,
    /// fanned out with the embedder's [`ServeConfig::sink`] if any.
    effective_sink: Arc<dyn EventSink>,
    /// Resolved admin listener address (port 0 resolved), when configured.
    admin_addr: Option<SocketAddr>,
    /// Monotone request-id source shared by every connection.
    next_req: AtomicU64,
    /// Requests currently being handled (the `/healthz` in-flight gauge).
    inflight: AtomicUsize,
    /// Server start time (the `/healthz` uptime origin).
    started: Instant,
    /// Whether startup restored a warm base image (`/healthz`).
    warm_start: bool,
    /// When the base image was last made durable, as `(stamp, age at
    /// stamp)`: a fresh in-band `snapshot` records `(now, 0)`, while the
    /// startup load records the snapshot **file's** age (from its mtime)
    /// so a warm restart reports how stale the image really is, not how
    /// long this process has been up. `/healthz` reports
    /// `stamp.elapsed() + age`. The pair sidesteps `Instant` arithmetic
    /// that would fail when the file is older than the process.
    last_checkpoint: Mutex<Option<(Instant, Duration)>>,
}

impl Shared {
    /// Routes one admin request path to its response body.
    fn admin_route(&self, path: &str) -> Option<(ContentType, String)> {
        match path {
            "/metrics" => Some((ContentType::PromText, self.metrics.render_prometheus())),
            "/stats" => Some((ContentType::Json, self.metrics.render_json())),
            "/healthz" => Some((ContentType::Json, self.health_json())),
            _ => None,
        }
    }

    /// The `/healthz` body: liveness plus the operational facts a probe
    /// wants before routing traffic here.
    fn health_json(&self) -> String {
        let uptime = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let checkpoint_age = lock(&self.last_checkpoint).map(|(stamp, age_at_stamp)| {
            u64::try_from((stamp.elapsed() + age_at_stamp).as_millis()).unwrap_or(u64::MAX)
        });
        obj([
            ("ok", Json::from(true)),
            ("draining", Json::from(self.is_draining())),
            ("warm_start", Json::from(self.warm_start)),
            ("uptime_millis", Json::from(uptime)),
            (
                "inflight_requests",
                Json::from(self.inflight.load(Ordering::SeqCst)),
            ),
            (
                "active_connections",
                Json::from(self.active.load(Ordering::SeqCst)),
            ),
            ("requests", Json::from(self.requests.load(Ordering::SeqCst))),
            (
                "connections",
                Json::from(self.connections.load(Ordering::SeqCst)),
            ),
            ("rejected", Json::from(self.rejected.load(Ordering::SeqCst))),
            (
                "checkpoint_age_millis",
                checkpoint_age.map_or(Json::Null, Json::from),
            ),
        ])
        .render()
    }

    fn is_draining(&self) -> bool {
        // An externally wired shutdown flag (the CLI's signal handler)
        // requests the same graceful drain as ServerHandle::begin_shutdown.
        if let Some(flag) = &self.config.shutdown_flag {
            if flag.load(Ordering::SeqCst) {
                self.draining.store(true, Ordering::SeqCst);
            }
        }
        self.draining.load(Ordering::SeqCst)
    }
}

/// A cloneable handle for inspecting and stopping a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals a graceful shutdown and returns immediately: the accept
    /// loop stops, in-flight requests complete, connections close.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Signals a graceful shutdown and blocks until the server has fully
    /// drained and stopped.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let mut done = lock(&self.shared.done);
        while !*done {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether a shutdown has been initiated.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Connections currently admitted (serving or waiting for a worker).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The admin telemetry listener's resolved address, when configured
    /// (useful with an `--admin-addr` port of 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.shared.admin_addr
    }

    /// A point-in-time copy of the server's aggregated metrics — what
    /// `GET /metrics` and `GET /stats` render, available in-process for
    /// embedders and tests.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

/// A concurrent JSON-lines constraint-solving server: one
/// [`rasc_inc::Session`] (inside a [`BatchEngine`]) per connection,
/// served by a bounded [`ThreadPool`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    /// Admin telemetry listener, bound when `--admin-addr` is configured.
    admin_listener: Option<TcpListener>,
    addr: SocketAddr,
    shared: Arc<Shared>,
    pool: ThreadPool,
}

impl Server {
    /// Binds `addr` and prepares the worker pool. The server speaks the
    /// batch protocol of [`BatchEngine`]; each connection gets a fresh
    /// session over `machine`'s annotation monoid.
    pub fn bind(
        addr: impl ToSocketAddrs,
        sigma: Alphabet,
        machine: &Dfa,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Queue capacity matches the admission cap, so a connection that
        // passed admission is never refused by the pool.
        let pool = ThreadPool::new(config.threads, config.max_connections.max(1));
        // Bind the admin listener here so port 0 resolves before run()
        // and a bad --admin-addr fails loudly at startup, not mid-serve.
        let admin_listener = match &config.admin_addr {
            Some(spec) => Some(TcpListener::bind(spec.as_str())?),
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let mut config = config;
        if config.slow_millis.is_some() && config.slow_log.is_none() {
            config.slow_log = Some(Arc::new(SlowLog::stderr()));
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let effective_sink: Arc<dyn EventSink> = match &config.sink {
            Some(user) => Arc::new(Fanout::new(vec![
                Arc::clone(&metrics) as Arc<dyn EventSink>,
                Arc::clone(user),
            ])),
            None => Arc::clone(&metrics) as Arc<dyn EventSink>,
        };
        let snapshot_path = match &config.snapshot_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(dir.join("current.snap"))
            }
            None => None,
        };
        // Load and decode the warm-restart image under the server's sink,
        // so bind-time telemetry (`snap.restore.micros`,
        // `snap.corrupt_rejected`, `serve.base.io_errors`) lands in the
        // same registry the admin endpoint scrapes.
        let loaded = {
            let _sink_guard = ScopedSink::install(Arc::clone(&effective_sink));
            snapshot_path
                .as_deref()
                .and_then(|p| load_base_image(p, &sigma))
        };
        let warm_start = loaded.is_some();
        // A warm start's image was made durable when the file was last
        // written, not now: seed the checkpoint clock with the file's age
        // so `/healthz` reports real staleness across restarts.
        let initial_checkpoint = loaded.as_ref().map(|_| {
            let file_age = snapshot_path
                .as_deref()
                .and_then(|p| std::fs::metadata(p).ok())
                .and_then(|m| m.modified().ok())
                .and_then(|mtime| mtime.elapsed().ok())
                .unwrap_or(Duration::ZERO);
            (Instant::now(), file_age)
        });
        let (snapshot, base) = match loaded {
            Some((bytes, decoded)) => (Some(bytes), Some(Arc::new(decoded))),
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            sigma,
            dfa: machine.clone(),
            config,
            draining: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            cancels: Mutex::new(HashMap::new()),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            snapshot_path,
            snapshot: Mutex::new(snapshot),
            base: Mutex::new(base),
            metrics,
            effective_sink,
            admin_addr,
            next_req: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            started: Instant::now(),
            warm_start,
            last_checkpoint: Mutex::new(initial_checkpoint),
        });
        Ok(Server {
            listener,
            admin_listener,
            addr,
            shared,
            pool,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping and inspecting the server from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Runs the accept loop on the calling thread until a shutdown is
    /// initiated (via [`ServerHandle`] or the in-band `shutdown` admin
    /// command), then drains: stops accepting, finishes in-flight
    /// requests, closes connections, joins the workers, and wakes every
    /// [`ServerHandle::shutdown`] waiter.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server {
            listener,
            admin_listener,
            addr: _,
            shared,
            pool,
        } = self;
        let _sink_guard = ScopedSink::install(Arc::clone(&shared.effective_sink));
        listener.set_nonblocking(true)?;
        let poll = Duration::from_millis(shared.config.poll_millis.max(1));
        // The admin plane answers scrapes from the registry on its own
        // thread; it stops once the drain begins.
        let admin_thread = admin_listener.map(|l| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let drain_check = Arc::clone(&shared);
                let route_shared = Arc::clone(&shared);
                run_admin(
                    l,
                    poll,
                    move || drain_check.is_draining(),
                    move |path| route_shared.admin_route(path),
                );
            })
        });
        while !shared.is_draining() {
            match listener.accept() {
                Ok((stream, _peer)) => admit(&shared, &pool, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not kill the server.
                Err(_) => std::thread::sleep(poll),
            }
        }
        // Stop accepting, then drain. A watchdog fires every in-flight
        // connection's CancelToken if the drain outlives its deadline.
        drop(listener);
        let watchdog = shared.config.drain_cancel_millis.map(|ms| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let deadline = Duration::from_millis(ms);
                let started = Instant::now();
                let mut done = lock(&shared.done);
                while !*done {
                    let Some(left) = deadline.checked_sub(started.elapsed()) else {
                        drop(done);
                        for token in lock(&shared.cancels).values() {
                            token.cancel();
                        }
                        return;
                    };
                    let (guard, _timeout) = shared
                        .done_cv
                        .wait_timeout(done, left)
                        .unwrap_or_else(PoisonError::into_inner);
                    done = guard;
                }
            })
        });
        pool.drain();
        // Checkpoint the latest base image before declaring the drain
        // complete, so the next `rasc serve --snapshot-dir` warm-starts
        // from the state the in-band `snapshot` commands last captured.
        if let (Some(path), Some(bytes)) = (&shared.snapshot_path, lock(&shared.snapshot).clone()) {
            match write_atomic(path, &bytes) {
                Ok(()) => {
                    obs::counter("serve.checkpoints", 1);
                    *lock(&shared.last_checkpoint) = Some((Instant::now(), Duration::ZERO));
                }
                Err(_) => obs::counter("serve.checkpoint_failures", 1),
            }
        }
        *lock(&shared.done) = true;
        shared.done_cv.notify_all();
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        if let Some(a) = admin_thread {
            let _ = a.join();
        }
        Ok(ServeReport {
            connections: shared.connections.load(Ordering::SeqCst),
            requests: shared.requests.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
        })
    }

    /// Runs the server on a background thread, returning its handle and
    /// the join handle yielding the final [`ServeReport`].
    pub fn spawn(self) -> (ServerHandle, JoinHandle<io::Result<ServeReport>>) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        (handle, join)
    }
}

/// Reads, validates, and fully decodes a warm-restart base image into a
/// shared fork base. Every failure degrades to a cold start, but the
/// three failure modes are kept distinct — an operator must be able to
/// tell "first boot" from "my disk is broken" from "my snapshot is torn":
///
/// * a genuinely **absent** file is the expected first boot and stays
///   silent;
/// * any other **IO failure** (permissions, `EISDIR`, transient read
///   errors) bumps `serve.base.io_errors` and logs one stderr line;
/// * **corrupt or mismatched** contents bump `snap.corrupt_rejected`
///   (inside [`EngineBase::decode`]) and log one stderr line.
fn load_base_image(path: &std::path::Path, sigma: &Alphabet) -> Option<(Arc<Vec<u8>>, EngineBase)> {
    let bytes = match read_snapshot_file(path) {
        Ok(b) => b,
        Err(SnapshotError::Io(e)) if e.kind() == ErrorKind::NotFound => return None,
        Err(e) => {
            obs::counter("serve.base.io_errors", 1);
            eprintln!(
                "rasc-serve: cannot read warm-restart image {}: {e}; starting cold",
                path.display()
            );
            return None;
        }
    };
    match EngineBase::decode(&bytes, sigma) {
        Ok(base) => Some((Arc::new(bytes), base)),
        Err(e) => {
            // decode() already counted `snap.corrupt_rejected` for torn
            // contents; mismatched-configuration (State) rejections ride
            // the warm-start-failure counter instead.
            if matches!(e, SnapshotError::State { .. }) {
                obs::counter("serve.warm_start_failures", 1);
            }
            eprintln!(
                "rasc-serve: rejecting warm-restart image {}: {e}; starting cold",
                path.display()
            );
            None
        }
    }
}

/// Decrements the active-connection count when the connection finishes —
/// or when an admitted job is dropped unrun during shutdown.
#[derive(Debug)]
struct ConnTicket(Arc<Shared>);

impl Drop for ConnTicket {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn admit(shared: &Arc<Shared>, pool: &ThreadPool, stream: TcpStream) {
    if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        obs::counter("serve.rejected.overload", 1);
        // Shed load still shows up in the latency aggregates (tagged by
        // outcome), not just the overload counter — otherwise a p99 read
        // from /metrics silently excludes exactly the requests that were
        // turned away.
        let started = Instant::now();
        reject_overloaded(stream);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        obs::histogram("serve.request.micros", micros);
        obs::histogram("serve.request.micros.overload", micros);
        return;
    }
    shared.active.fetch_add(1, Ordering::SeqCst);
    let ticket = ConnTicket(Arc::clone(shared));
    let shared_job = Arc::clone(shared);
    let enqueued = pool.try_execute(move || {
        let _ticket = ticket; // released when the connection finishes
        handle_connection(&shared_job, stream);
    });
    // Admission passed, so the only way the pool refuses is a drain that
    // began concurrently; the dropped job's ticket releases its slot and
    // the stream simply closes.
    if enqueued.is_err() {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
    }
}

/// Answers an un-admitted connection with a typed in-band error before
/// closing it, so clients can tell overload from a network failure.
fn reject_overloaded(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut stream = stream;
    let line = obj([(
        "error",
        obj([
            ("code", Json::from("overloaded")),
            (
                "message",
                Json::from("connection limit reached; retry later"),
            ),
        ]),
    )])
    .render();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Whether `line` is the in-band `{"cmd":"shutdown"}` admin command (the
/// substring test is just a cheap pre-filter before parsing).
fn is_shutdown_command(line: &str) -> bool {
    line.contains("shutdown")
        && Json::parse(line.trim())
            .ok()
            .and_then(|j| j.get("cmd").and_then(Json::as_str).map(str::to_owned))
            .is_some_and(|cmd| cmd == "shutdown")
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _sink_guard = ScopedSink::install(Arc::clone(&shared.effective_sink));
    let _span = obs::span("serve.connection");
    obs::counter("serve.connections.opened", 1);
    shared.connections.fetch_add(1, Ordering::SeqCst);

    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_nodelay(true);
    let poll = Duration::from_millis(shared.config.poll_millis.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    let Ok(read_half) = stream.try_clone() else {
        obs::counter("serve.connections.closed", 1);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // Warm connections fork from the shared decoded base — a handful of
    // `Arc` bumps over the frozen solved form instead of re-parsing the
    // snapshot image per connection. The fork is private copy-on-write:
    // nothing this connection adds is visible to any other.
    let base = lock(&shared.base).clone();
    let mut engine = match &base {
        Some(b) => {
            obs::counter("serve.warm_starts", 1);
            BatchEngine::fork_from(b)
        }
        None => BatchEngine::new(shared.sigma.clone(), &shared.dfa),
    };
    engine.set_caps(shared.config.caps);
    engine.set_solve_threads(shared.config.solve_threads);
    if let Some(clock) = &shared.config.clock {
        engine.set_clock(Arc::clone(clock));
    }
    let cancel = CancelToken::new();
    engine.set_cancel(cancel.clone());
    lock(&shared.cancels).insert(conn_id, cancel);

    if let Some(path) = &shared.snapshot_path {
        // Persistence: snapshot/restore target the server's file only
        // (remote clients must not choose filesystem paths), and in-band
        // snapshots refresh both the durable image bytes and the decoded
        // fork base for subsequent connections. A refresh that fails
        // deep validation keeps the previous base — never half-swapped.
        engine.set_snapshot_path(path.clone());
        engine.set_client_snapshot_paths(false);
        let base_image = Arc::clone(shared);
        engine.set_snapshot_hook(move |bytes| {
            match EngineBase::decode(bytes, &base_image.sigma) {
                Ok(decoded) => *lock(&base_image.base) = Some(Arc::new(decoded)),
                Err(_) => obs::counter("serve.base.refresh_failures", 1),
            }
            *lock(&base_image.snapshot) = Some(Arc::new(bytes.to_vec()));
            *lock(&base_image.last_checkpoint) = Some((Instant::now(), Duration::ZERO));
        });
    }

    // One request line at a time. The buffer persists across read
    // timeouts (a timed-out `read_line` keeps what it already consumed),
    // so slow senders frame correctly while idle connections still
    // notice a drain within one poll interval.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                let request = std::mem::take(&mut line);
                if !serve_request(shared, &mut engine, conn_id, &request, &mut writer) {
                    break;
                }
                // Finish the request just answered, then close: a drain
                // never truncates an in-flight response.
                if shared.is_draining() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.is_draining() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    lock(&shared.cancels).remove(&conn_id);
    obs::counter("serve.connections.closed", 1);
}

/// Captures the first bytes of the response flowing through it, so the
/// serving loop can classify the outcome (ok vs typed error) and quote
/// the error code in the slow-query log without re-parsing or buffering
/// the whole response.
struct ResponseTee<'a, W: Write> {
    inner: &'a mut W,
    prefix: Vec<u8>,
    cap: usize,
}

impl<W: Write> Write for ResponseTee<'_, W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(data)?;
        let room = self.cap.saturating_sub(self.prefix.len());
        self.prefix.extend_from_slice(&data[..n.min(room)]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Pulls `"code":"…"` out of a captured error-response prefix.
fn error_code_from_prefix(prefix: &str) -> &str {
    let Some(rest) = prefix.split_once("\"code\":\"").map(|(_, r)| r) else {
        return "unknown";
    };
    rest.split('"').next().unwrap_or("unknown")
}

/// Decrements the in-flight gauge when a request finishes (also on
/// unwind, so `/healthz` never reports phantom in-flight work).
struct InflightGuard<'a>(&'a Shared);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let now = self
            .0
            .inflight
            .fetch_sub(1, Ordering::SeqCst)
            .saturating_sub(1);
        obs::gauge("serve.inflight", u64::try_from(now).unwrap_or(u64::MAX));
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (client gone, or a shutdown command was honored).
fn serve_request<W: Write>(
    shared: &Arc<Shared>,
    engine: &mut BatchEngine,
    conn_id: u64,
    request: &str,
    writer: &mut W,
) -> bool {
    if shared.config.allow_shutdown_command && is_shutdown_command(request) {
        let response = obj([
            ("ok", Json::from("shutdown")),
            ("draining", Json::from(true)),
        ])
        .render();
        let _ = writer.write_all(response.as_bytes());
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
        obs::counter("serve.shutdown_commands", 1);
        shared.draining.store(true, Ordering::SeqCst);
        return false;
    }
    let req_id = shared.next_req.fetch_add(1, Ordering::SeqCst) + 1;
    engine.begin_request(Some(req_id));
    let before = engine.request_stats();
    let inflight = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    obs::gauge(
        "serve.inflight",
        u64::try_from(inflight).unwrap_or(u64::MAX),
    );
    let _inflight = InflightGuard(shared);
    let _span = obs::span("serve.request");
    // The id gauge rides inside the span, correlating trace events with
    // slow-log lines and the `"req"` field on error responses.
    obs::gauge("serve.request.id", req_id);
    let started = Instant::now();
    let mut tee = ResponseTee {
        inner: writer,
        prefix: Vec::new(),
        cap: 256,
    };
    let handled = engine.handle_framed_line(request, &mut tee);
    let prefix = String::from_utf8_lossy(&tee.prefix).into_owned();
    match handled {
        Ok(true) => {
            shared.requests.fetch_add(1, Ordering::SeqCst);
            obs::counter("serve.requests", 1);
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            obs::histogram("serve.request.micros", micros);
            let errored = prefix.starts_with("{\"error\"");
            if errored {
                obs::counter("serve.requests.errors", 1);
                obs::histogram("serve.request.micros.error", micros);
            } else {
                obs::histogram("serve.request.micros.ok", micros);
            }
            if let (Some(threshold), Some(log)) =
                (shared.config.slow_millis, &shared.config.slow_log)
            {
                if micros >= threshold.saturating_mul(1000) {
                    obs::counter("serve.slow_requests", 1);
                    let after = engine.request_stats();
                    let delta = after.delta_since(&before);
                    let cmd = Json::parse(request.trim())
                        .ok()
                        .and_then(|j| j.get("cmd").and_then(Json::as_str).map(str::to_owned))
                        .unwrap_or_else(|| "<malformed>".to_owned());
                    let outcome = if errored {
                        format!("error:{}", error_code_from_prefix(&prefix))
                    } else {
                        "ok".to_owned()
                    };
                    log.record(
                        &obj([
                            ("slow", Json::from(true)),
                            ("req", Json::from(req_id)),
                            ("conn", Json::from(conn_id)),
                            ("cmd", Json::Str(cmd)),
                            ("micros", Json::from(micros)),
                            ("fuel", Json::from(delta.fuel_spent)),
                            ("epoch_depth", Json::from(after.epoch_depth)),
                            ("outcome", Json::Str(outcome)),
                        ])
                        .render(),
                    );
                }
            }
            true
        }
        Ok(false) => true, // blank/comment line
        Err(_) => false,   // write failed: client is gone
    }
}
