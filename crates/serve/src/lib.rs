//! Concurrent constraint-solving server (`rasc-serve`).
//!
//! Serves the JSON-lines batch protocol of [`rasc_inc::BatchEngine`]
//! over TCP — the online-analysis story of Kodumal & Aiken's engine
//! (demand-driven queries against a persistent solved form) behind a
//! stable service boundary, zero-dependency (std only) like the rest of
//! the workspace:
//!
//! * **Session pools** — one incremental [`rasc_inc::Session`] per
//!   connection, served by a bounded [`ThreadPool`] with a graceful
//!   drain; connections are isolated (names, epochs, caches, budgets).
//! * **Admission control** — a hard cap on concurrent connections and a
//!   bounded worker queue; overload answers
//!   `{"error":{"code":"overloaded",…}}` in-band and closes, instead of
//!   queuing unboundedly.
//! * **Resource governance** — server-wide per-request caps
//!   ([`rasc_inc::EngineCaps`]) wired into every engine, plus a
//!   [`rasc_core::CancelToken`] per connection so a stalled drain can
//!   interrupt in-flight solves, which roll back transactionally.
//! * **Graceful shutdown** — via [`ServerHandle::shutdown`], the in-band
//!   `{"cmd":"shutdown"}` admin command, or an external shutdown flag
//!   ([`ServeConfig::shutdown_flag`], wired to SIGINT/SIGTERM by the
//!   CLI): the accept loop stops, in-flight requests finish and their
//!   responses flush, then connections close and workers join.
//! * **Persistence & warm restart** — with [`ServeConfig::snapshot_dir`]
//!   set, the server loads `<dir>/current.snap` as the base image every
//!   connection's session restores from, routes in-band
//!   `{"cmd":"snapshot"}` commands there (client-chosen paths are
//!   disabled), and checkpoints the latest base again on graceful
//!   shutdown. Corrupt snapshots are detected (checksums) and rejected
//!   — the server starts cold instead of serving a torn solved form.
//! * **Observability** — `rasc-obs` counters
//!   (`serve.connections.opened/closed`, `serve.requests`,
//!   `serve.rejected.overload`), `serve.request.micros` latency
//!   histograms (also recorded for shed load, tagged by outcome), and
//!   per-connection/per-request spans, delivered to an internal
//!   [`rasc_obs::MetricsRegistry`] and fanned out to any additional
//!   [`rasc_obs::EventSink`] given in [`ServeConfig::sink`].
//! * **Telemetry plane** — with [`ServeConfig::admin_addr`] set, a
//!   std-only HTTP listener on its own thread answers `GET /metrics`
//!   (Prometheus text exposition), `GET /stats` (JSON with p50/p90/p99
//!   estimates from log₂-bucket histograms), and `GET /healthz`
//!   (warm/cold start, uptime, in-flight requests, snapshot checkpoint
//!   age). With [`ServeConfig::slow_millis`] set, every request at or
//!   over the threshold is appended to a [`SlowLog`] as one JSON line —
//!   request id, command, latency, fuel spent, epoch depth, outcome —
//!   and request ids are correlated across spans, slow-log lines, and
//!   the `"req"` field on in-band error responses.
//!
//! The protocol itself — commands, structured error codes, the guarantee
//! that no input line ever kills a session — is exactly `rasc batch`'s;
//! see [`rasc_inc::BatchEngine`]. A malformed or hostile line gets an
//! in-band error on the same connection, which stays usable.
//!
//! ```no_run
//! use rasc_automata::Alphabet;
//! use rasc_automata::Dfa;
//! use rasc_serve::{ServeConfig, Server};
//!
//! let mut sigma = Alphabet::new();
//! let (g, k) = (sigma.intern("g"), sigma.intern("k"));
//! let machine = Dfa::one_bit(&sigma, g, k);
//! let server = Server::bind("127.0.0.1:0", sigma, &machine, ServeConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let report = server.run()?; // until a shutdown is initiated
//! println!("served {} requests", report.requests);
//! # std::io::Result::Ok(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admin;
mod pool;
mod server;

pub use admin::SlowLog;
pub use pool::{Overloaded, ThreadPool};
pub use server::{ServeConfig, ServeReport, Server, ServerHandle};
