//! The admin plane: a std-only HTTP/1.1 listener for telemetry scrapes
//! and the slow-query log sink.
//!
//! The listener is deliberately minimal — `GET`-only, one request per
//! connection, `Connection: close` — because its clients are curl,
//! Prometheus scrapers, and `rasc stats`, not browsers. It runs on its
//! own thread, never touches the solver, and answers from the server's
//! [`rasc_obs::MetricsRegistry`] snapshot, so a scrape can never block or
//! slow a solve.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Body format of an admin response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ContentType {
    /// Prometheus text exposition format, version 0.0.4.
    PromText,
    /// `application/json`.
    Json,
}

impl ContentType {
    fn header_value(self) -> &'static str {
        match self {
            ContentType::PromText => "text/plain; version=0.0.4; charset=utf-8",
            ContentType::Json => "application/json",
        }
    }
}

/// Runs the admin accept loop until `draining` reports true. `route`
/// maps a request path to a response body; unknown paths 404.
pub(crate) fn run_admin(
    listener: TcpListener,
    poll: Duration,
    draining: impl Fn() -> bool,
    route: impl Fn(&str) -> Option<(ContentType, String)>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !draining() {
        match listener.accept() {
            Ok((stream, _peer)) => answer_one(stream, poll, &route),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Serves exactly one HTTP exchange on `stream` (best effort: a hostile
/// or slow client is simply dropped — the admin plane must never wedge).
fn answer_one(
    stream: TcpStream,
    poll: Duration,
    route: &impl Fn(&str) -> Option<(ContentType, String)>,
) {
    // Bounded patience: an admin client that stalls mid-request is cut
    // off rather than pinning the admin thread.
    let _ = stream.set_read_timeout(Some(poll.max(Duration::from_millis(50)).saturating_mul(20)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) if header.len() > 8192 => return, // hostile header
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = stream;
    if method != "GET" {
        let _ = write_response(
            &mut stream,
            "405 Method Not Allowed",
            ContentType::Json,
            "{\"error\":\"method not allowed\"}\n",
        );
        return;
    }
    // Ignore any query string: `/metrics?x=y` scrapes `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match route(path) {
        Some((ctype, body)) => {
            let _ = write_response(&mut stream, "200 OK", ctype, &body);
        }
        None => {
            let _ = write_response(
                &mut stream,
                "404 Not Found",
                ContentType::Json,
                "{\"error\":\"not found\"}\n",
            );
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    ctype: ContentType,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        ctype.header_value(),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Destination of the slow-query log: one JSON line per request whose
/// latency crossed the configured `--slow-millis` threshold.
///
/// Writes are serialized through a mutex and flushed per line, so lines
/// from concurrent workers never interleave mid-record. A failed write
/// is dropped — the log is diagnostic, the serving path must not care.
pub struct SlowLog {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SlowLog(..)")
    }
}

impl SlowLog {
    /// A slow-query log writing to the process's stderr (the CLI default).
    pub fn stderr() -> SlowLog {
        SlowLog::to_writer(Box::new(io::stderr()))
    }

    /// A slow-query log writing to an arbitrary sink (tests pass a shared
    /// buffer; an embedder might pass a file).
    pub fn to_writer(out: Box<dyn Write + Send>) -> SlowLog {
        SlowLog {
            out: Mutex::new(out),
        }
    }

    /// Appends one pre-rendered JSON line (the newline is added here).
    pub(crate) fn record(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
            let _ = out.flush();
        }
    }
}
