//! Scoped sink installation and the free emission functions.
//!
//! Dispatch is two-level:
//!
//! 1. a process-global `AtomicUsize` counts installed sinks across all
//!    threads — when zero (the default), every emission returns after one
//!    relaxed load, so uninstrumented callers pay essentially nothing;
//! 2. a thread-local stack holds this thread's installed sinks — events
//!    go to the innermost one, so parallel tests (each on its own
//!    thread) never observe one another's events.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sink::EventSink;

/// Number of sinks installed anywhere in the process (the fast gate).
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STACK: RefCell<Vec<Arc<dyn EventSink>>> = const { RefCell::new(Vec::new()) };
}

/// Whether a sink is installed *on this thread* (events would be
/// delivered). Cheap; usable to skip expensive event-payload
/// construction.
pub fn is_active() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    STACK.with(|s| s.try_borrow().map(|v| !v.is_empty()).unwrap_or(false))
}

/// Installs `sink` for the current thread until the returned guard is
/// dropped. Installations nest; the innermost sink receives the events.
///
/// Prefer [`scoped`] where a closure fits; the guard form suits
/// straight-line code like the CLI main loop.
#[must_use = "the sink is uninstalled when the guard drops"]
#[derive(Debug)]
pub struct ScopedSink {
    _priv: (),
}

impl ScopedSink {
    /// Installs `sink` on this thread and returns the RAII guard.
    pub fn install(sink: Arc<dyn EventSink>) -> ScopedSink {
        STACK.with(|s| {
            if let Ok(mut v) = s.try_borrow_mut() {
                v.push(sink);
                ACTIVE.fetch_add(1, Ordering::Relaxed);
            }
        });
        ScopedSink { _priv: () }
    }
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        STACK.with(|s| {
            if let Ok(mut v) = s.try_borrow_mut() {
                if v.pop().is_some() {
                    ACTIVE.fetch_sub(1, Ordering::Relaxed);
                }
            }
        });
    }
}

/// Runs `f` with `sink` installed on the current thread, uninstalling it
/// afterwards (also on panic, via the guard's destructor).
pub fn scoped<R>(sink: Arc<dyn EventSink>, f: impl FnOnce() -> R) -> R {
    let _guard = ScopedSink::install(sink);
    f()
}

/// Delivers one event to this thread's innermost sink, if any.
#[inline]
fn dispatch(f: impl FnOnce(&dyn EventSink)) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    STACK.with(|s| {
        // `try_borrow` (not `borrow`) so a sink that itself emits events
        // silently drops the re-entrant emission instead of panicking.
        let Ok(stack) = s.try_borrow() else { return };
        if let Some(sink) = stack.last() {
            let sink = Arc::clone(sink);
            drop(stack);
            f(&*sink);
        }
    });
}

/// Increments counter `name` by `delta` on the installed sink.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    dispatch(|s| s.counter(name, delta));
}

/// Records one `value` sample in histogram `name` on the installed sink.
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    dispatch(|s| s.histogram(name, value));
}

/// Sets gauge `name` to `value` on the installed sink (last write wins).
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    dispatch(|s| s.gauge(name, value));
}

/// Opens a span: emits `span_begin(name)` now and `span_end(name)` when
/// the returned guard drops. When no sink is active at open time the
/// guard is inert (no end event is emitted even if a sink appears
/// mid-span, keeping B/E pairs balanced).
#[inline]
pub fn span(name: &'static str) -> Span {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Span { name: None };
    }
    let mut opened = false;
    dispatch(|s| {
        s.span_begin(name);
        opened = true;
    });
    Span {
        name: opened.then_some(name),
    }
}

/// RAII guard for a [`span`]: ends the span on drop.
#[must_use = "the span ends when the guard drops"]
#[derive(Debug)]
pub struct Span {
    name: Option<&'static str>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            dispatch(|s| s.span_end(name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn events_outside_a_scope_are_dropped() {
        counter("dropped", 1);
        histogram("dropped", 1);
        let s = span("dropped");
        drop(s);
        // Nothing to assert beyond "did not panic"; the recorder test
        // below shows scoped delivery works.
    }

    #[test]
    fn innermost_sink_wins_and_uninstall_restores() {
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        scoped(outer.clone(), || {
            counter("c", 1);
            scoped(inner.clone(), || counter("c", 10));
            counter("c", 2);
        });
        assert_eq!(outer.counter_value("c"), 3);
        assert_eq!(inner.counter_value("c"), 10);
    }

    #[test]
    fn guard_form_uninstalls_on_drop() {
        let rec = Arc::new(Recorder::new());
        {
            let _g = ScopedSink::install(rec.clone());
            assert!(is_active());
            counter("g", 5);
        }
        counter("g", 7);
        assert_eq!(rec.counter_value("g"), 5);
    }

    #[test]
    fn spans_balance_even_across_panics() {
        let rec = Arc::new(Recorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped(rec.clone(), || {
                let _s = span("outer");
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        assert_eq!(rec.span_count("outer"), 1);
        assert_eq!(rec.open_span_depth(), 0, "end emitted during unwind");
        assert!(!is_active(), "sink uninstalled during unwind");
    }
}
