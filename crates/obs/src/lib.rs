//! Structured tracing and metrics for the `rasc` workspace (`rasc-obs`).
//!
//! Every layer of the solver pipeline — the bidirectional worklist, the
//! automata constructions, the incremental session cache — emits *events*
//! through this crate: hierarchical **spans** (begin/end pairs), monotone
//! **counters**, and **histograms** of sampled values. The crate is
//! deliberately zero-dependency (std only) and designed so that the
//! default state costs one relaxed atomic load per emission site:
//!
//! * When no sink is installed anywhere in the process, every emission
//!   function returns after a single `AtomicUsize` load on a predictable
//!   branch — effectively free on the solver's hot path (the
//!   `observability` bench bin enforces a ≤ 5 % overhead ratio).
//! * Sinks are installed **scoped and per-thread** with [`scoped`] /
//!   [`ScopedSink`], so parallel test binaries never observe one
//!   another's events.
//!
//! Concrete sinks:
//!
//! * [`Recorder`] — in-memory counters/histograms/span tallies, queryable
//!   afterwards (used by the stats-reconciliation property tests);
//! * [`MetricsRegistry`] — lock-free aggregation (atomic counters,
//!   gauges, log₂-bucket histograms with p50/p90/p99 estimates) with
//!   Prometheus-text and JSON exposition, the backing store of the
//!   `rasc serve --admin-addr` telemetry endpoint;
//! * [`JsonLinesSink`] — one JSON object per event, streamed to any
//!   `io::Write`;
//! * [`ChromeTraceSink`] — Chrome trace-event JSON loadable in Perfetto /
//!   `about:tracing` (`rasc batch --trace out.json`);
//! * [`NoopSink`] — discards everything (the bench guard's subject);
//! * [`Fanout`] — broadcasts to several sinks (`--trace` + `--profile`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rasc_obs::{self as obs, Recorder};
//!
//! let rec = Arc::new(Recorder::new());
//! obs::scoped(rec.clone(), || {
//!     let _span = obs::span("work");
//!     obs::counter("items", 3);
//!     obs::histogram("size", 17);
//! });
//! assert_eq!(rec.counter_value("items"), 3);
//! assert_eq!(rec.span_count("work"), 1);
//! // Outside the scope, emissions are dropped.
//! obs::counter("items", 100);
//! assert_eq!(rec.counter_value("items"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod jsonl;
mod metrics;
mod recorder;
mod scope;
mod sink;

pub use chrome::{ChromeTraceSink, TickClock, TimeSource, WallClock};
pub use jsonl::JsonLinesSink;
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{HistogramSummary, Recorder};
pub use scope::{counter, gauge, histogram, is_active, scoped, span, ScopedSink, Span};
pub use sink::{EventSink, Fanout, NoopSink};
