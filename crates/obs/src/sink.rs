//! The [`EventSink`] trait and the trivial sinks.

use std::fmt;
use std::sync::Arc;

/// A consumer of observability events.
///
/// Names are `&'static str` by design: emission sites pass string
/// literals, sinks never allocate to key a counter, and the hot path
/// carries only a pointer-sized payload.
///
/// Implementations must be internally synchronized (`&self` methods,
/// `Send + Sync`) so one sink can be shared by reference across scopes.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// A span named `name` opened (paired with a later [`EventSink::span_end`]).
    fn span_begin(&self, name: &'static str);
    /// The innermost open span named `name` closed.
    fn span_end(&self, name: &'static str);
    /// Counter `name` increased by `delta` (counters are monotone).
    fn counter(&self, name: &'static str, delta: u64);
    /// One sampled value for histogram `name`.
    fn histogram(&self, name: &'static str, value: u64);
    /// Gauge `name` set to `value` (last write wins; not monotone).
    ///
    /// Default-implemented as a no-op so pre-existing sinks that have no
    /// use for point-in-time levels keep compiling unchanged.
    fn gauge(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// A sink that discards every event.
///
/// Installing it exercises the full dispatch path (gate + thread-local +
/// dynamic call) without any recording work — the subject of the
/// `BENCH_observability.json` overhead guard.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn span_begin(&self, _name: &'static str) {}
    fn span_end(&self, _name: &'static str) {}
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn histogram(&self, _name: &'static str, _value: u64) {}
}

/// Broadcasts every event to several sinks (e.g. a [`crate::Recorder`]
/// for `--profile` plus a [`crate::ChromeTraceSink`] for `--trace`).
#[derive(Debug, Default)]
pub struct Fanout {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl Fanout {
    /// A fanout over the given sinks (events are delivered in order).
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> Fanout {
        Fanout { sinks }
    }
}

impl EventSink for Fanout {
    fn span_begin(&self, name: &'static str) {
        for s in &self.sinks {
            s.span_begin(name);
        }
    }

    fn span_end(&self, name: &'static str) {
        for s in &self.sinks {
            s.span_end(name);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }

    fn histogram(&self, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.histogram(name, value);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }
}
