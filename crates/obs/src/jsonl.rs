//! Streaming JSON-lines export ([`JsonLinesSink`]).
//!
//! One JSON object per event, written as it happens — suitable for
//! tailing a long solve or piping into `jq`. Unlike the
//! [`crate::ChromeTraceSink`] nothing is buffered beyond the writer's
//! own buffering, so a crash mid-solve still leaves a usable prefix.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sink::EventSink;

/// A sink writing one JSON object per event to an `io::Write`.
///
/// Each line carries a monotone sequence number (`"seq"`) instead of a
/// wall-clock timestamp, so output is deterministic for a fixed event
/// stream.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// A sink writing to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(out),
            seq: AtomicU64::new(0),
        }
    }

    fn emit(&self, kind: &str, name: &'static str, value: Option<u64>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut out) = self.out.lock() {
            let res = match value {
                Some(v) => writeln!(
                    out,
                    "{{\"seq\":{seq},\"event\":\"{kind}\",\"name\":\"{name}\",\"value\":{v}}}"
                ),
                None => writeln!(
                    out,
                    "{{\"seq\":{seq},\"event\":\"{kind}\",\"name\":\"{name}\"}}"
                ),
            };
            // An unwritable sink must never fail the solve it observes.
            let _ = res;
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        self.flush();
    }
}

impl EventSink for JsonLinesSink {
    fn span_begin(&self, name: &'static str) {
        self.emit("span_begin", name, None);
    }

    fn span_end(&self, name: &'static str) {
        self.emit("span_end", name, None);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.emit("counter", name, Some(delta));
    }

    fn histogram(&self, name: &'static str, value: u64) {
        self.emit("histogram", name, Some(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` that appends into a shared buffer, so the test can read
    /// back what the sink (which owns its writer) produced.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if let Ok(mut v) = self.0.lock() {
                v.extend_from_slice(buf);
            }
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn one_json_object_per_event_with_sequence_numbers() {
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(Box::new(buf.clone()));
        sink.span_begin("phase");
        sink.counter("edges", 4);
        sink.histogram("depth", 2);
        sink.span_end("phase");
        drop(sink);
        let bytes = buf.0.lock().map(|v| v.clone()).unwrap_or_default();
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"event\":\"span_begin\",\"name\":\"phase\"}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"event\":\"counter\",\"name\":\"edges\",\"value\":4}"
        );
        assert!(lines[3].contains("span_end"), "{text}");
    }
}
